"""The Table 4 stand-in registry."""

import pytest

from repro.core.config import JobConfig
from repro.datasets.registry import (
    DATASETS,
    LARGE_DATASETS,
    SMALL_DATASETS,
    dataset_names,
    get_dataset,
)


class TestRegistry:
    def test_six_datasets_like_table4(self):
        assert dataset_names() == ["livej", "wiki", "orkut", "twi", "fri",
                                   "uk"]

    def test_small_and_large_partition(self):
        assert set(SMALL_DATASETS) | set(LARGE_DATASETS) == set(DATASETS)
        assert not set(SMALL_DATASETS) & set(LARGE_DATASETS)

    def test_worker_defaults_follow_paper(self):
        for name in SMALL_DATASETS:
            assert DATASETS[name].workers == 5
        for name in LARGE_DATASETS:
            assert DATASETS[name].workers == 30

    def test_get_dataset_builds_and_caches(self):
        a = get_dataset("livej")
        b = get_dataset("livej")
        assert a is b
        assert a.num_vertices == DATASETS["livej"].num_vertices

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            get_dataset("facebook")

    @pytest.mark.parametrize("name", dataset_names())
    def test_average_degree_tracks_paper(self, name):
        spec = DATASETS[name]
        g = get_dataset(name)
        assert g.average_degree == pytest.approx(spec.avg_degree, rel=0.35)

    def test_job_config_carries_spec_defaults(self):
        spec = DATASETS["uk"]
        cfg = spec.job_config("bpull")
        assert isinstance(cfg, JobConfig)
        assert cfg.num_workers == 30
        assert cfg.message_buffer_per_worker == spec.buffer_per_worker
        assert cfg.vblocks_per_worker == spec.vblocks_per_worker

    def test_job_config_overrides(self):
        cfg = DATASETS["wiki"].job_config("push", num_workers=2)
        assert cfg.num_workers == 2
        assert cfg.mode == "push"

    def test_twi_is_the_skewed_low_locality_one(self):
        assert DATASETS["twi"].skew < DATASETS["livej"].skew
        assert DATASETS["twi"].locality < DATASETS["livej"].locality

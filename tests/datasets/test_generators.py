"""Generator determinism and structural properties."""

import pytest

from repro.datasets.generators import (
    random_graph,
    ring_graph,
    social_graph,
    web_graph,
)


class TestDeterminism:
    @pytest.mark.parametrize("factory", [
        lambda: social_graph(200, 8, seed=42),
        lambda: web_graph(200, 8, seed=42),
        lambda: random_graph(200, 8, seed=42),
    ])
    def test_same_seed_same_graph(self, factory):
        a, b = factory(), factory()
        assert list(a.edges()) == list(b.edges())

    def test_different_seed_different_graph(self):
        a = social_graph(200, 8, seed=1)
        b = social_graph(200, 8, seed=2)
        assert list(a.edges()) != list(b.edges())


class TestSocialGraph:
    def test_average_degree_close_to_target(self):
        g = social_graph(1000, 10, seed=7)
        assert g.average_degree == pytest.approx(10, rel=0.3)

    def test_degree_skew_increases_max_degree(self):
        mild = social_graph(800, 10, seed=7, skew=3.0, tail_fraction=0.0)
        harsh = social_graph(800, 10, seed=7, skew=1.6, tail_fraction=0.0)
        max_mild = max(mild.out_degree(v) for v in mild.vertices())
        max_harsh = max(harsh.out_degree(v) for v in harsh.vertices())
        assert max_harsh > max_mild

    def test_no_self_loops(self):
        g = social_graph(300, 6, seed=3)
        assert all(s != d for s, d, _w in g.edges())

    def test_whisker_chains_attached(self):
        g = social_graph(300, 6, seed=3, tail_fraction=0.3, tail_chain=10)
        core_n = 300 - 90
        # every tail vertex has an in-edge (reachable from the core/chain)
        in_degs = g.in_degrees()
        assert all(in_degs[v] > 0 for v in range(core_n, 300))

    def test_locality_reduces_long_edges(self):
        local = social_graph(600, 8, seed=5, locality=0.9,
                             tail_fraction=0.0)
        scattered = social_graph(600, 8, seed=5, locality=0.0,
                                 tail_fraction=0.0)

        def long_edges(g):
            return sum(
                1 for s, d, _w in g.edges() if abs(s - d) > 60
            ) / g.num_edges

        assert long_edges(local) < long_edges(scattered)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            social_graph(1, 5)
        with pytest.raises(ValueError):
            social_graph(10, 5, tail_fraction=1.5)
        with pytest.raises(ValueError):
            social_graph(10, 5, locality=2.0)


class TestWebGraph:
    def test_average_degree_close_to_target(self):
        g = web_graph(1000, 12, seed=7)
        assert g.average_degree == pytest.approx(12, rel=0.3)

    def test_mostly_local_edges(self):
        g = web_graph(1000, 10, seed=7)
        window = 1000 // 150
        local = sum(
            1 for s, d, _w in g.edges()
            if min(abs(s - d), 1000 - abs(s - d)) <= window
        )
        assert local / g.num_edges > 0.8

    def test_long_jumps_are_expensive(self):
        g = web_graph(1000, 10, seed=7)
        window = 1000 // 150
        for s, d, w in g.edges():
            ring_dist = min(abs(s - d), 1000 - abs(s - d))
            if ring_dist > window:
                assert w > 100.0

    def test_no_self_loops(self):
        g = web_graph(300, 6, seed=3)
        assert all(s != d for s, d, _w in g.edges())


class TestRingAndRandom:
    def test_ring_structure(self):
        g = ring_graph(5)
        assert g.num_edges == 5
        assert all(g.out_degree(v) == 1 for v in g.vertices())
        assert g.out_edges(4) == [(0, 1.0)]

    def test_random_graph_edge_count(self):
        g = random_graph(100, 5, seed=1)
        # self-loops are skipped, so slightly fewer than n * degree
        assert 400 <= g.num_edges <= 500

"""Structural fidelity of the stand-ins the experiments rely on."""

import heapq
import math

import pytest

from repro.datasets.registry import DATASETS, get_dataset


def sssp_tree_depth(graph, source=0):
    """Hop-depth of the shortest-weighted-path tree = SSSP supersteps."""
    dist = [math.inf] * graph.num_vertices
    hops = [0] * graph.num_vertices
    dist[source] = 0.0
    heap = [(0.0, 0, source)]
    while heap:
        d, h, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v, w in graph.out_edges(u):
            nd = d + w
            if nd < dist[v] - 1e-12:
                dist[v] = nd
                hops[v] = h + 1
                heapq.heappush(heap, (nd, h + 1, v))
    reached = [h for h, d in zip(hops, dist) if not math.isinf(d)]
    coverage = sum(1 for d in dist if not math.isinf(d))
    return max(reached), coverage


class TestConvergenceTails:
    def test_wiki_has_long_sssp_tail(self):
        # the paper's SSSP/wiki runs 284 supersteps; the stand-in must
        # keep a long convergence stage (Fig. 2b, Fig. 8b).
        g = get_dataset("wiki")
        depth, coverage = sssp_tree_depth(g)
        assert depth > 60
        assert coverage > 0.95 * g.num_vertices

    def test_twi_depth_matches_fig14_scale(self):
        # Fig. 14 traces SSSP/twi for ~30 supersteps.
        g = get_dataset("twi")
        depth, coverage = sssp_tree_depth(g)
        assert 15 <= depth <= 60
        assert coverage > 0.9 * g.num_vertices

    def test_twi_more_skewed_than_livej(self):
        degrees = {}
        for name in ("livej", "twi"):
            g = get_dataset(name)
            mx = max(g.out_degree(v) for v in g.vertices())
            degrees[name] = mx / g.average_degree
        assert degrees["twi"] > degrees["livej"]

    def test_fragment_hostility_of_twi(self):
        """b-pull's twi weakness comes from fragments ~ edges; the
        friendlier graphs stay well below (Section 6.1)."""
        from repro.algorithms.pagerank import PageRank
        from repro.core.runtime import Runtime

        ratios = {}
        for name in ("wiki", "twi", "uk"):
            g = get_dataset(name)
            rt = Runtime(g, PageRank(), DATASETS[name].job_config("bpull"))
            rt.setup()
            ratios[name] = rt.total_fragments() / g.num_edges
        assert ratios["twi"] > 0.8
        assert ratios["wiki"] < 0.4
        assert ratios["uk"] < 0.4

"""Edge-list file round-trip."""

import pytest

from repro.core.graph import Graph
from repro.datasets.generators import random_graph
from repro.datasets.io import read_edge_list, write_edge_list


class TestEdgeListIO:
    def test_round_trip(self, tmp_path):
        g = random_graph(50, 4, seed=9, name="roundtrip")
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        back = read_edge_list(path, num_vertices=50, name="roundtrip")
        assert sorted(back.edges()) == sorted(g.edges())
        assert back.num_vertices == 50

    def test_unit_weights_written_compactly(self, tmp_path):
        g = Graph(2, [(0, 1)])
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        lines = [
            line for line in path.read_text().splitlines()
            if not line.startswith("#")
        ]
        assert lines == ["0 1"]

    def test_num_vertices_inferred(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 5\n2 3\n")
        g = read_edge_list(path)
        assert g.num_vertices == 6
        assert g.num_edges == 2

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n0 1 2.5\n")
        g = read_edge_list(path)
        assert list(g.edges()) == [(0, 1, 2.5)]

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "mygraph.txt"
        path.write_text("0 1\n")
        assert read_edge_list(path).name == "mygraph"

    def test_float_weights_preserved_exactly(self, tmp_path):
        g = Graph(3, [(0, 1, 1.2345678901234), (1, 2, 99.5)])
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert sorted(back.edges()) == sorted(g.edges())

"""Property-based invariants of the hybrid controller and engine."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.core.config import JobConfig
from repro.core.engine import run_job
from repro.core.graph import Graph

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs(draw, max_vertices=35, max_degree=5):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    num_edges = draw(st.integers(min_value=0, max_value=n * max_degree))
    g = Graph(n, name="hypo")
    for _ in range(num_edges):
        src = draw(st.integers(min_value=0, max_value=n - 1))
        dst = draw(st.integers(min_value=0, max_value=n - 1))
        if src != dst:
            g.add_edge(src, dst,
                       draw(st.floats(0.1, 10, allow_nan=False)))
    return g


def hybrid_cfg(draw_args=None, **kwargs):
    kwargs.setdefault("num_workers", 2)
    kwargs.setdefault("message_buffer_per_worker", 8)
    return JobConfig(mode="hybrid", **kwargs)


class TestHybridInvariants:
    @SLOW
    @given(graphs(), st.integers(min_value=1, max_value=4))
    def test_switch_labels_chain(self, g, interval):
        result = run_job(g, SSSP(source=0),
                         hybrid_cfg(switching_interval=interval))
        trace = result.metrics.mode_trace
        for prev, cur in zip(trace, trace[1:]):
            prev_base = prev.split("->")[-1]
            if "->" in cur:
                assert cur.split("->")[0] == prev_base
            else:
                assert cur == prev_base or prev_base in ("push", "bpull")

    @SLOW
    @given(graphs())
    def test_q_trace_matches_superstep_count(self, g):
        result = run_job(g, PageRank(supersteps=5), hybrid_cfg())
        assert len(result.metrics.q_trace) == (
            result.metrics.num_supersteps
        )

    @SLOW
    @given(graphs(), st.floats(min_value=0.0, max_value=0.2,
                               allow_nan=False))
    def test_deadband_never_changes_results(self, g, deadband):
        pure = run_job(g, SSSP(source=0), hybrid_cfg())
        damped = run_job(g, SSSP(source=0),
                         hybrid_cfg(switching_deadband=deadband))
        assert damped.values == pure.values

    @SLOW
    @given(graphs())
    def test_message_volume_relationship_between_transports(self, g):
        """push generates messages in its *last* superstep that nobody
        consumes; b-pull, pulling on demand, never produces them.  Apart
        from that trailing superstep the two transports move exactly the
        same messages, and hybrid stays within their envelope."""
        runs = {}
        for mode in ("push", "bpull", "hybrid"):
            runs[mode] = run_job(g, PageRank(supersteps=4),
                                 JobConfig(mode=mode, num_workers=2,
                                           message_buffer_per_worker=8))
        push_total = runs["push"].metrics.total_messages
        push_tail = runs["push"].metrics.supersteps[-1].raw_messages
        bpull_total = runs["bpull"].metrics.total_messages
        assert push_total - push_tail == bpull_total
        assert runs["hybrid"].metrics.total_messages <= push_total

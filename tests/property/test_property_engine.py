"""Property-based tests: engine invariants over random graphs/configs."""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.algorithms.wcc import WCC
from repro.core.config import JobConfig
from repro.core.engine import run_job
from repro.core.graph import Graph

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs(draw, max_vertices=40, max_degree=5):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    num_edges = draw(st.integers(min_value=0, max_value=n * max_degree))
    edges = []
    for _ in range(num_edges):
        src = draw(st.integers(min_value=0, max_value=n - 1))
        dst = draw(st.integers(min_value=0, max_value=n - 1))
        if src != dst:
            weight = draw(
                st.floats(min_value=0.1, max_value=50.0,
                          allow_nan=False, allow_infinity=False)
            )
            edges.append((src, dst, weight))
    return Graph(n, edges, name="hypo")


def cfg(mode, workers=2, buffer=8, **kwargs):
    return JobConfig(mode=mode, num_workers=workers,
                     message_buffer_per_worker=buffer, **kwargs)


class TestModeEquivalenceProperties:
    @SLOW
    @given(graphs(), st.integers(min_value=1, max_value=3))
    def test_pagerank_modes_agree(self, g, workers):
        reference = None
        for mode in ("push", "pushm", "bpull", "hybrid"):
            result = run_job(g, PageRank(supersteps=4),
                             cfg(mode, workers=workers))
            if reference is None:
                reference = result.values
            else:
                assert all(
                    math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)
                    for a, b in zip(reference, result.values)
                ), mode

    @SLOW
    @given(graphs(), st.integers(min_value=0, max_value=10))
    def test_sssp_modes_agree_and_match_dijkstra(self, g, source_seed):
        source = source_seed % g.num_vertices
        import heapq

        dist = [math.inf] * g.num_vertices
        dist[source] = 0.0
        heap = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            for v, w in g.out_edges(u):
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        for mode in ("push", "bpull", "hybrid", "pull"):
            result = run_job(g, SSSP(source=source), cfg(mode))
            assert all(
                (math.isinf(a) and math.isinf(b))
                or math.isclose(a, b, rel_tol=1e-9)
                for a, b in zip(result.values, dist)
            ), mode

    @SLOW
    @given(graphs(), st.integers(min_value=1, max_value=20))
    def test_buffer_size_never_changes_wcc(self, g, buffer):
        small = run_job(g, WCC(), cfg("push", buffer=buffer))
        unlimited = run_job(g, WCC(), cfg("push", buffer=None))
        assert small.values == unlimited.values


class TestAccountingProperties:
    @SLOW
    @given(graphs())
    def test_bpull_never_spills_messages(self, g):
        result = run_job(g, PageRank(supersteps=3), cfg("bpull", buffer=2))
        for step in result.metrics.supersteps:
            assert step.spilled_messages == 0
            assert step.io.random_write == 0

    @SLOW
    @given(graphs(), st.integers(min_value=1, max_value=30))
    def test_push_units_equal_messages(self, g, buffer):
        result = run_job(g, PageRank(supersteps=3),
                         cfg("push", buffer=buffer))
        for step in result.metrics.supersteps:
            assert step.net_transfer_units == step.raw_messages
            assert 0 <= step.spilled_messages <= step.raw_messages

    @SLOW
    @given(graphs())
    def test_mco_bounded_by_messages(self, g):
        result = run_job(g, PageRank(supersteps=3), cfg("bpull"))
        for step in result.metrics.supersteps:
            assert 0 <= step.mco <= step.raw_messages

    @SLOW
    @given(graphs())
    def test_metrics_are_non_negative_and_elapsed_consistent(self, g):
        result = run_job(g, SSSP(source=0), cfg("hybrid"))
        for step in result.metrics.supersteps:
            assert step.elapsed_seconds >= 0
            assert step.cpu_seconds >= 0
            assert step.io.total >= 0
            assert step.net_bytes >= 0
            if step.worker_seconds:
                assert step.elapsed_seconds == max(
                    step.worker_seconds.values()
                )

    @SLOW
    @given(graphs())
    def test_superstep_numbering_dense(self, g):
        result = run_job(g, SSSP(source=0), cfg("push"))
        numbers = [s.superstep for s in result.metrics.supersteps]
        assert numbers == list(range(1, len(numbers) + 1))

"""Property-based tests: recovery and async never change results."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.core.config import FaultPlan, JobConfig
from repro.core.engine import run_job
from repro.core.graph import Graph

SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs(draw, max_vertices=30, max_degree=4):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    num_edges = draw(st.integers(min_value=1, max_value=n * max_degree))
    g = Graph(n, name="hypo")
    for _ in range(num_edges):
        src = draw(st.integers(min_value=0, max_value=n - 1))
        dst = draw(st.integers(min_value=0, max_value=n - 1))
        if src != dst:
            g.add_edge(src, dst,
                       draw(st.floats(0.1, 20, allow_nan=False)))
    return g


class TestRecoveryProperties:
    @SLOW
    @given(graphs(), st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=4))
    def test_checkpointed_recovery_transparent(self, g, fault_step,
                                               interval):
        cfg = JobConfig(mode="push", num_workers=2,
                        message_buffer_per_worker=10)
        clean = run_job(g, PageRank(supersteps=7), cfg)
        faulty = run_job(
            g, PageRank(supersteps=7),
            cfg.but(checkpoint_interval=interval,
                    fault=FaultPlan(worker=0, superstep=fault_step)),
        )
        assert faulty.values == clean.values
        assert faulty.metrics.num_supersteps == clean.metrics.num_supersteps

    @SLOW
    @given(graphs(), st.integers(min_value=1, max_value=6))
    def test_scratch_recovery_transparent(self, g, fault_step):
        cfg = JobConfig(mode="hybrid", num_workers=2,
                        message_buffer_per_worker=5)
        clean = run_job(g, SSSP(source=0), cfg)
        faulty = run_job(
            g, SSSP(source=0),
            cfg.but(fault=FaultPlan(worker=1, superstep=fault_step)),
        )
        assert faulty.values == clean.values


class TestAsyncProperties:
    @SLOW
    @given(graphs(), st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=5))
    def test_async_sssp_fixed_point(self, g, workers, source_seed):
        source = source_seed % g.num_vertices
        cfg = JobConfig(mode="push", num_workers=workers,
                        message_buffer_per_worker=10)
        sync = run_job(g, SSSP(source=source), cfg)
        asynchronous = run_job(g, SSSP(source=source),
                               cfg.but(asynchronous=True))
        assert asynchronous.values == sync.values
        assert (asynchronous.metrics.num_supersteps
                <= sync.metrics.num_supersteps)

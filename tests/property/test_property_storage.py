"""Property-based tests for the storage structures."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.graph import Graph, range_partition
from repro.storage.disk import SimulatedDisk
from repro.storage.messages import SpillingMessageStore
from repro.storage.records import DEFAULT_SIZES
from repro.storage.veblock import BlockLayout, VEBlockStore
from repro.storage.vertex_cache import LRUVertexCache

FAST = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graph_and_layout(draw):
    n = draw(st.integers(min_value=2, max_value=30))
    num_edges = draw(st.integers(min_value=0, max_value=90))
    g = Graph(n)
    for _ in range(num_edges):
        src = draw(st.integers(min_value=0, max_value=n - 1))
        dst = draw(st.integers(min_value=0, max_value=n - 1))
        if src != dst:
            g.add_edge(src, dst)
    workers = draw(st.integers(min_value=1, max_value=3))
    blocks = draw(st.integers(min_value=1, max_value=5))
    partition = range_partition(n, workers)
    layout = BlockLayout.build(partition, [blocks] * workers)
    return g, partition, layout


class TestVEBlockProperties:
    @FAST
    @given(graph_and_layout())
    def test_every_edge_in_exactly_one_fragment(self, data):
        g, partition, layout = data
        seen = []
        for w in range(partition.num_workers):
            store = VEBlockStore(g, partition, w, layout, SimulatedDisk(),
                                 DEFAULT_SIZES)
            for src_block in store.local_blocks:
                for dst_block in range(layout.num_blocks):
                    eblock = store.eblock(src_block, dst_block)
                    if eblock is None:
                        continue
                    for svertex, edges in eblock.fragments:
                        seen.extend(
                            (svertex, dst) for dst, _w in edges
                        )
        assert sorted(seen) == sorted(
            (s, d) for s, d, _w in g.edges()
        )

    @FAST
    @given(graph_and_layout())
    def test_fragment_counts_consistent(self, data):
        g, partition, layout = data
        for w in range(partition.num_workers):
            store = VEBlockStore(g, partition, w, layout, SimulatedDisk(),
                                 DEFAULT_SIZES)
            per_vertex = sum(
                store.fragments_of_vertex(v)
                for v in partition.vertices_of(w)
            )
            assert per_vertex == store.total_fragments()

    @FAST
    @given(graph_and_layout(), st.sets(st.integers(0, 29)))
    def test_scan_yields_exactly_responding_edges(self, data, responders):
        g, partition, layout = data
        flags = [v in responders for v in range(g.num_vertices)]
        produced = []
        for w in range(partition.num_workers):
            store = VEBlockStore(g, partition, w, layout, SimulatedDisk(),
                                 DEFAULT_SIZES)
            store.begin_superstep_stats()
            store.refresh_res(flags)
            for dst_block in range(layout.num_blocks):
                for svertex, edges in store.scan_for_request(
                    dst_block, flags
                ):
                    produced.extend((svertex, d) for d, _w in edges)
        expected = sorted(
            (s, d) for s, d, _w in g.edges() if flags[s]
        )
        assert sorted(produced) == expected

    @FAST
    @given(graph_and_layout(), st.sets(st.integers(0, 29)))
    def test_estimate_equals_actual_scan_cost(self, data, responders):
        g, partition, layout = data
        flags = [v in responders for v in range(g.num_vertices)]
        for w in range(partition.num_workers):
            store = VEBlockStore(g, partition, w, layout, SimulatedDisk(),
                                 DEFAULT_SIZES)
            store.begin_superstep_stats()
            store.refresh_res(flags)
            for dst_block in range(layout.num_blocks):
                for _ in store.scan_for_request(dst_block, flags):
                    pass
            _e, aux, edge_bytes, vrr = store.scan_stats
            assert store.estimate_bpull_scan(flags) == (
                edge_bytes, aux, vrr
            )


class TestMessageStoreProperties:
    @FAST
    @given(
        st.lists(
            st.tuples(st.integers(0, 9), st.floats(0, 100,
                                                   allow_nan=False)),
            max_size=60,
        ),
        st.one_of(st.none(), st.integers(min_value=0, max_value=30)),
    )
    def test_no_message_lost_or_duplicated(self, deposits, capacity):
        store = SpillingMessageStore(capacity, DEFAULT_SIZES,
                                     SimulatedDisk())
        for dst, value in deposits:
            store.deposit(dst, value)
        result = store.load()
        flat = sorted(
            (dst, v) for dst, values in result.messages.items()
            for v in values
        )
        assert flat == sorted(deposits)

    @FAST
    @given(
        st.lists(st.integers(0, 9), max_size=60),
        st.integers(min_value=0, max_value=20),
    )
    def test_spill_complements_capacity(self, destinations, capacity):
        store = SpillingMessageStore(capacity, DEFAULT_SIZES,
                                     SimulatedDisk())
        for dst in destinations:
            store.deposit(dst, 1.0)
        expected_spill = max(0, len(destinations) - capacity)
        assert store.total_spilled == expected_spill


class TestLRUProperties:
    @FAST
    @given(
        st.lists(st.integers(0, 15), max_size=80),
        st.integers(min_value=1, max_value=8),
    )
    def test_capacity_respected_and_hits_subset(self, accesses, capacity):
        cache = LRUVertexCache(capacity, DEFAULT_SIZES, SimulatedDisk())
        for vid in accesses:
            cache.access(vid)
            assert cache.resident <= capacity
        assert cache.hits + cache.misses == len(accesses)

    @FAST
    @given(st.lists(st.integers(0, 5), min_size=1, max_size=40))
    def test_repeat_access_within_capacity_always_hits(self, accesses):
        cache = LRUVertexCache(10, DEFAULT_SIZES, SimulatedDisk())
        for vid in accesses:
            cache.access(vid)
        assert cache.misses == len(set(accesses))

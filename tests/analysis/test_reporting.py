"""Formatting helpers used by the benchmark harness."""

from repro.analysis.reporting import fmt_bytes, fmt_seconds, format_table


class TestFmtBytes:
    def test_bytes(self):
        assert fmt_bytes(512) == "512B"

    def test_kilobytes(self):
        assert fmt_bytes(2048) == "2.0KB"

    def test_megabytes(self):
        assert fmt_bytes(3 * 1024 * 1024) == "3.0MB"

    def test_terabytes_cap(self):
        assert fmt_bytes(5 * 1024 ** 4).endswith("TB")


class TestFmtSeconds:
    def test_milliseconds(self):
        assert fmt_seconds(0.0123) == "12.30ms"

    def test_seconds(self):
        assert fmt_seconds(2.5) == "2.50s"

    def test_large(self):
        assert fmt_seconds(1234.5) == "1,234s"


class TestFormatTable:
    def test_alignment_and_title(self):
        table = format_table(
            ["name", "value"],
            [["a", 1], ["long-name", 22]],
            title="T",
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        # all rows same width
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1

    def test_empty_rows(self):
        table = format_table(["a"], [])
        assert "a" in table

    def test_cells_stringified(self):
        table = format_table(["x"], [[3.14159]])
        assert "3.14159" in table

"""Eqs. 7/8 evaluated on live runs across the dataset registry."""

import pytest

from repro.algorithms.pagerank import PageRank
from repro.analysis.costmodel import cio_bpull_of, cio_push_of
from repro.core.engine import run_job
from repro.datasets.registry import DATASETS, SMALL_DATASETS, get_dataset


@pytest.mark.parametrize("name", SMALL_DATASETS)
class TestLiveCostFormulas:
    def test_push_counters_decompose_into_eq7(self, name):
        graph = get_dataset(name)
        result = run_job(graph, PageRank(supersteps=3),
                         DATASETS[name].job_config("push"))
        for step in result.metrics.supersteps:
            # every byte the simulated disks saw is one of Eq. 7's terms
            # (plus the spilled-read leg, which Eq. 7 folds into the
            # factor 2 on IO(M_disk))
            assert step.io.total == (
                step.io_vertex + step.io_edges_push
                + step.io_message_spill + step.io_message_read
            )
            assert cio_push_of(step) >= step.io_vertex

    def test_bpull_counters_decompose_into_eq8(self, name):
        graph = get_dataset(name)
        result = run_job(graph, PageRank(supersteps=3),
                         DATASETS[name].job_config("bpull"))
        for step in result.metrics.supersteps:
            assert step.io.total == cio_bpull_of(step)

    def test_spill_read_balances_spill_write_across_run(self, name):
        """Every spilled message written this superstep is read back in
        the next; over a fixed-round run the books differ by at most the
        final superstep's spill."""
        graph = get_dataset(name)
        result = run_job(graph, PageRank(supersteps=4),
                         DATASETS[name].job_config("push"))
        steps = result.metrics.supersteps
        written = sum(s.io_message_spill for s in steps)
        read = sum(s.io_message_read for s in steps)
        assert written - read == steps[-1].io_message_spill

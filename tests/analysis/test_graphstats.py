"""Graph statistics utility."""

import pytest

from repro.analysis.graphstats import compute_stats
from repro.core.graph import Graph
from repro.datasets.generators import ring_graph, social_graph, web_graph


class TestComputeStats:
    def test_basic_counts(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)], name="chain")
        stats = compute_stats(g, num_blocks=2)
        assert stats.num_vertices == 4
        assert stats.num_edges == 3
        assert stats.avg_degree == pytest.approx(0.75)
        assert stats.max_out_degree == 1

    def test_ring_locality_is_total(self):
        stats = compute_stats(ring_graph(200))
        assert stats.locality_index == 1.0

    def test_web_more_local_than_scattered_social(self):
        web = compute_stats(web_graph(800, 8, seed=5))
        scattered = compute_stats(
            social_graph(800, 8, seed=5, locality=0.0, tail_fraction=0.0)
        )
        assert web.locality_index > scattered.locality_index

    def test_skew_ratio(self):
        mild = compute_stats(
            social_graph(500, 8, seed=6, skew=3.0, tail_fraction=0.0)
        )
        harsh = compute_stats(
            social_graph(500, 8, seed=6, skew=1.6, tail_fraction=0.0)
        )
        assert harsh.skew_ratio > mild.skew_ratio

    def test_expected_fragments_grow_with_blocks(self):
        g = social_graph(400, 8, seed=7)
        few = compute_stats(g, num_blocks=4)
        many = compute_stats(g, num_blocks=400)
        assert many.expected_fragments > few.expected_fragments
        assert many.b_lower_bound < few.b_lower_bound

    def test_percentiles_ordered(self):
        g = social_graph(400, 8, seed=7)
        stats = compute_stats(g)
        assert (stats.out_degree_p50 <= stats.out_degree_p99
                <= stats.max_out_degree)

    def test_summary_renders(self):
        g = ring_graph(10)
        text = compute_stats(g).summary()
        assert "|V|=10" in text
        assert "B_perp" in text

    def test_invalid_blocks_rejected(self):
        with pytest.raises(ValueError):
            compute_stats(ring_graph(5), num_blocks=0)

    def test_empty_graph(self):
        stats = compute_stats(Graph(3), num_blocks=2)
        assert stats.num_edges == 0
        assert stats.locality_index == 0.0
        assert stats.avg_degree == 0.0


class TestMetricsExport:
    def test_json_round_trip(self):
        import json

        from repro import JobConfig, SSSP, run_job
        from repro.datasets.generators import random_graph

        g = random_graph(60, 4, seed=8)
        result = run_job(g, SSSP(source=0),
                         JobConfig(mode="hybrid", num_workers=2,
                                   message_buffer_per_worker=10))
        payload = json.loads(result.metrics.to_json())
        assert payload["mode"] == "hybrid"
        assert len(payload["supersteps"]) == (
            result.metrics.num_supersteps
        )
        assert payload["supersteps"][0]["superstep"] == 1
        total_io = sum(s["io_bytes"] for s in payload["supersteps"])
        assert total_io == result.metrics.compute_io_bytes

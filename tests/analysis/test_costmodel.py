"""Closed-form cost model: Theorem 1's g(V), Eqs. 7-8, Theorem 2 premise."""

import pytest

from repro.analysis.costmodel import (
    cio_bpull,
    cio_push,
    expected_fragments,
    theorem2_premise,
)


class TestExpectedFragments:
    def test_single_block_single_fragment(self):
        assert expected_fragments(1, 10) == pytest.approx(1.0)

    def test_zero_degree_zero_fragments(self):
        assert expected_fragments(8, 0) == pytest.approx(0.0)

    def test_degree_one_one_fragment(self):
        assert expected_fragments(8, 1) == pytest.approx(1.0)

    def test_monotone_in_blocks(self):
        # Theorem 1: E[fragments] grows with the number of Vblocks.
        values = [expected_fragments(v, 12) for v in range(1, 60)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_bounded_by_degree_and_blocks(self):
        for v in (2, 5, 20):
            for d in (1, 7, 30):
                g = expected_fragments(v, d)
                assert g <= min(v, d) + 1e-9

    def test_limit_many_blocks_is_degree(self):
        assert expected_fragments(10**6, 15) == pytest.approx(15.0, rel=1e-4)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            expected_fragments(0, 3)
        with pytest.raises(ValueError):
            expected_fragments(4, -1)


class TestCioFormulas:
    def test_eq7(self):
        assert cio_push(10, 20, 5) == 10 + 20 + 10

    def test_eq8(self):
        assert cio_bpull(10, 20, 3, 4) == 37

    def test_theorem2_inequality_with_formulas(self):
        # broadcast case: every edge carries a message; sizes from the
        # proof (S_m=12 >= S_e=8 >= S_f=8 = S_v=8).
        num_edges, fragments = 1000, 100
        buffer_msgs = 300  # <= |E|/2 - f = 400
        assert theorem2_premise(buffer_msgs, num_edges, fragments)
        mdisk = (num_edges - buffer_msgs) * 12
        push = cio_push(0, num_edges * 8, mdisk)
        bpull = cio_bpull(0, 2 * num_edges * 8, fragments * 8,
                          fragments * 8)
        assert push >= bpull

    def test_premise_boundary(self):
        assert theorem2_premise(400, 1000, 100)
        assert not theorem2_premise(401, 1000, 100)

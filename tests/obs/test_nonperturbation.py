"""Observation must not perturb the model.

The acceptance bar for the tracing subsystem: ``JobMetrics.to_dict()``
of a traced run is byte-identical to the untraced run, for every
transport and both executors.
"""

import json

import pytest

from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.core.config import FaultPlan, JobConfig
from repro.core.engine import run_job
from repro.datasets.generators import social_graph


def dumps(result):
    return json.dumps(result.metrics.to_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def graph():
    return social_graph(num_vertices=200, avg_degree=5, seed=17)


class TestMetricsByteIdentity:
    @pytest.mark.parametrize("mode", ["push", "pushm", "pull", "bpull",
                                      "hybrid"])
    def test_every_mode(self, graph, mode):
        cfg = JobConfig(mode=mode, num_workers=3,
                        message_buffer_per_worker=60, max_supersteps=6)
        plain = run_job(graph, PageRank(supersteps=6), cfg)
        traced = run_job(graph, PageRank(supersteps=6),
                         cfg.but(trace=True))
        assert dumps(plain) == dumps(traced)
        assert plain.trace is None
        assert traced.trace is not None and traced.trace.events

    def test_reference_executor(self, graph):
        cfg = JobConfig(mode="hybrid", num_workers=3,
                        message_buffer_per_worker=60, max_supersteps=6,
                        executor="reference")
        plain = run_job(graph, PageRank(supersteps=6), cfg)
        traced = run_job(graph, PageRank(supersteps=6),
                         cfg.but(trace=True))
        assert dumps(plain) == dumps(traced)

    def test_recovery_run(self, graph):
        cfg = JobConfig(mode="push", num_workers=3,
                        message_buffer_per_worker=60,
                        checkpoint_interval=2,
                        fault=FaultPlan(worker=1, superstep=4))
        plain = run_job(graph, SSSP(source=0), cfg)
        traced = run_job(graph, SSSP(source=0), cfg.but(trace=True))
        assert dumps(plain) == dumps(traced)
        names = {e.name for e in traced.trace.events}
        assert {"fault", "restart", "restore", "checkpoint"} <= names

    def test_values_identical_too(self, graph):
        cfg = JobConfig(mode="hybrid", num_workers=3,
                        message_buffer_per_worker=60)
        plain = run_job(graph, SSSP(source=0), cfg)
        traced = run_job(graph, SSSP(source=0), cfg.but(trace=True))
        assert plain.values == traced.values

"""Span-structure equivalence and the traced-run acceptance shape.

The batched executor and the per-vertex reference executor must emit
the same trace — not just the same metrics.  Both derive their spans
from the (byte-identical) superstep metrics through the same
attribution, so the full event stream matches, and the suite pins the
structural view (event names and counts per superstep) explicitly on
top of the exact comparison.
"""

import json

import pytest

from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.core.config import JobConfig
from repro.core.engine import run_job
from repro.datasets.generators import social_graph
from repro.obs import CAT_PHASE, CAT_WORKER, SPAN


@pytest.fixture(scope="module")
def graph():
    return social_graph(num_vertices=250, avg_degree=5, seed=23)


def traced(graph, program, **kwargs):
    kwargs.setdefault("num_workers", 3)
    kwargs.setdefault("message_buffer_per_worker", 60)
    return run_job(graph, program, JobConfig(trace=True, **kwargs))


def structure(events):
    """(superstep, name, kind, worker) histogram — the span skeleton."""
    shape = {}
    for e in events:
        key = (e.superstep, e.name, e.kind, e.worker)
        shape[key] = shape.get(key, 0) + 1
    return shape


class TestExecutorSpanEquivalence:
    @pytest.mark.parametrize("mode", ["push", "bpull", "hybrid"])
    def test_identical_structure_per_superstep(self, graph, mode):
        batched = traced(graph, PageRank(supersteps=6), mode=mode)
        reference = traced(graph, PageRank(supersteps=6), mode=mode,
                           executor="reference")
        assert structure(batched.trace.events) == structure(
            reference.trace.events
        )

    def test_identical_events_exactly(self, graph):
        batched = traced(graph, SSSP(source=0), mode="hybrid")
        reference = traced(graph, SSSP(source=0), mode="hybrid",
                           executor="reference")
        a = [e.to_dict() for e in batched.trace.events]
        b = [e.to_dict() for e in reference.trace.events]
        assert a == b


class TestTracedHybridShape:
    """The ISSUE acceptance criterion: a traced hybrid PageRank run."""

    @pytest.fixture(scope="class")
    def result(self, graph):
        return traced(graph, PageRank(supersteps=8), mode="hybrid")

    def test_every_superstep_has_phase_and_worker_children(self, result):
        events = result.trace.events
        executed = {e.superstep for e in events if e.name == "superstep"}
        assert executed == set(
            range(1, result.metrics.num_supersteps + 1)
        )
        workers = set(range(result.metrics.num_workers))
        for step in executed:
            step_events = [e for e in events if e.superstep == step]
            phases = [e for e in step_events if e.cat == CAT_PHASE]
            assert phases, f"superstep {step} has no phase children"
            per_worker = {
                e.worker for e in step_events
                if e.cat == CAT_WORKER and e.kind == SPAN
            }
            assert per_worker == workers

    def test_phase_children_tile_the_superstep_span(self, result):
        events = result.trace.events
        for parent in (e for e in events if e.name == "superstep"):
            children = [
                e for e in events
                if e.cat == CAT_PHASE and e.superstep == parent.superstep
            ]
            for child in children:
                assert child.ts >= parent.ts - 1e-9
                assert child.end <= parent.end + 1e-9
            total = sum(c.dur for c in children)
            assert total <= parent.dur + 1e-9

    def test_switch_decisions_carry_q_inputs(self, result):
        decisions = [
            e for e in result.trace.events if e.name == "switch_decision"
        ]
        assert decisions
        for d in decisions:
            assert {"q", "mco", "bytem", "io_mdisk", "io_edges_push",
                    "io_edges_bpull", "io_fragments",
                    "io_vrr"} <= set(d.args)

    def test_chrome_export_covers_all_tracks(self, result, tmp_path):
        path = result.trace.export_chrome(tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        records = doc["traceEvents"]
        names = {
            r["args"]["name"] for r in records
            if r["name"] == "thread_name"
        }
        expected = {"engine"} | {
            f"worker {w}" for w in range(result.metrics.num_workers)
        }
        assert names == expected
        spans = [r for r in records if r["ph"] == "X"]
        assert {r["name"] for r in spans} >= {"superstep", "update",
                                              "worker", "barrier"}

    def test_summary_covers_every_superstep(self, result):
        summary = result.trace.summary()
        assert [s.superstep for s in summary.supersteps] == list(
            range(1, result.metrics.num_supersteps + 1)
        )
        for row, step in zip(summary.supersteps,
                             result.metrics.supersteps):
            assert row.mode == step.mode
            assert row.elapsed_seconds == pytest.approx(
                step.elapsed_seconds
            )
            assert sum(row.phase_seconds.values()) <= (
                row.elapsed_seconds + 1e-9
            )
        assert "mode" in summary.table()


class TestPullBaselineTrace:
    def test_pull_mode_emits_gather_and_apply(self, graph):
        result = traced(graph, PageRank(supersteps=4), mode="pull")
        events = result.trace.events
        phase_names = {e.name for e in events if e.cat == CAT_PHASE}
        assert phase_names == {"pullRes", "update"}

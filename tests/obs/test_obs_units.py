"""Unit tests for the obs building blocks: events, sinks, tracer, chrome."""

import json

import pytest

from repro.obs import (
    CAT_ENGINE,
    CAT_PHASE,
    ChromeTraceSink,
    JsonlSink,
    NULL_TRACER,
    RingBufferSink,
    TraceConfig,
    TraceEvent,
    Tracer,
    chrome_trace_json,
    resolve_tracer,
    summarize,
)


def span(name, ts, dur, **kwargs):
    return TraceEvent(name=name, kind="span", cat=kwargs.pop("cat", "engine"),
                      ts=ts, dur=dur, **kwargs)


class TestTraceEvent:
    def test_roundtrip(self):
        event = span("superstep", 1.5, 0.25, superstep=3,
                     args={"mode": "push"})
        back = TraceEvent.from_dict(
            json.loads(json.dumps(event.to_dict()))
        )
        assert back == event

    def test_instant_dict_omits_dur(self):
        event = TraceEvent(name="net", kind="instant", cat="net", ts=1.0)
        assert "dur" not in event.to_dict()

    def test_end(self):
        assert span("x", 2.0, 0.5).end == 2.5


class TestSinks:
    def test_ring_buffer_caps(self):
        sink = RingBufferSink(capacity=3)
        for i in range(5):
            sink.emit(span("e", float(i), 0.0))
        assert len(sink) == 3
        assert [e.ts for e in sink.events] == [2.0, 3.0, 4.0]

    def test_ring_buffer_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_jsonl_sink_streams(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        assert not path.exists()  # lazy open
        sink.emit(span("a", 0.0, 1.0))
        sink.emit(span("b", 1.0, 1.0))
        sink.close()
        lines = path.read_text().splitlines()
        assert [json.loads(l)["name"] for l in lines] == ["a", "b"]

    def test_chrome_sink_writes_on_close(self, tmp_path):
        path = tmp_path / "t.json"
        sink = ChromeTraceSink(path)
        sink.emit(span("a", 0.0, 1.0, worker=1))
        assert not path.exists()
        sink.close()
        doc = json.loads(path.read_text())
        assert any(r["ph"] == "X" for r in doc["traceEvents"])


class TestTracer:
    def test_default_ring_and_clock(self):
        tracer = Tracer()
        tracer.span("s", cat=CAT_ENGINE, start=tracer.clock, dur=2.0)
        tracer.advance(2.0)
        tracer.instant("i", cat=CAT_ENGINE)
        assert tracer.clock == 2.0
        assert [e.name for e in tracer.events] == ["s", "i"]
        assert tracer.events[1].ts == 2.0  # instant stamped at the clock

    def test_null_tracer_is_inert(self):
        NULL_TRACER.span("s", cat=CAT_ENGINE, start=0.0, dur=1.0)
        NULL_TRACER.instant("i", cat=CAT_ENGINE)
        NULL_TRACER.advance(5.0)
        NULL_TRACER.close()
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.clock == 0.0
        assert NULL_TRACER.events == []

    def test_resolve_variants(self, tmp_path):
        assert resolve_tracer(None) is NULL_TRACER
        assert resolve_tracer(False) is NULL_TRACER
        assert resolve_tracer(True).enabled
        ready = Tracer()
        assert resolve_tracer(ready) is ready
        path_based = resolve_tracer(str(tmp_path / "x.jsonl"))
        assert any(isinstance(s, JsonlSink) for s in path_based.sinks)
        with pytest.raises(TypeError):
            resolve_tracer(42)

    def test_trace_config_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(format="xml")

    def test_trace_config_chrome_build(self, tmp_path):
        tracer = TraceConfig(out=str(tmp_path / "t.json"),
                             format="chrome", buffer=10).build()
        kinds = {type(s) for s in tracer.sinks}
        assert kinds == {RingBufferSink, ChromeTraceSink}


class TestChromeExport:
    def test_tracks_and_units(self):
        events = [
            span("superstep", 1.0, 0.5, superstep=1),
            span("worker", 1.0, 0.4, superstep=1, worker=0),
            TraceEvent(name="net", kind="instant", cat="net", ts=1.2,
                       superstep=1, worker=2),
        ]
        doc = json.loads(chrome_trace_json(events))
        records = doc["traceEvents"]
        names = {r["args"]["name"] for r in records
                 if r["name"] == "thread_name"}
        assert names == {"engine", "worker 0", "worker 2"}
        x = next(r for r in records if r["ph"] == "X"
                 and r["name"] == "superstep")
        assert x["ts"] == pytest.approx(1.0e6)  # seconds -> microseconds
        assert x["dur"] == pytest.approx(0.5e6)
        assert x["tid"] == 0
        i = next(r for r in records if r["ph"] == "i")
        assert i["tid"] == 3  # worker w maps to track w + 1


class TestSummarize:
    def test_pre_span_net_instants_are_attached(self):
        # the network flushes its instants before the superstep span.
        events = [
            TraceEvent(name="net", kind="instant", cat="net", ts=0.0,
                       superstep=1, worker=0),
            span("superstep", 0.0, 1.0, superstep=1,
                 args={"mode": "push"}),
            span("update", 0.2, 0.5, cat=CAT_PHASE, superstep=1),
            span("worker", 0.0, 0.8, cat="worker", superstep=1, worker=0),
            span("barrier", 0.8, 0.2, cat="worker", superstep=1, worker=0),
        ]
        summary = summarize(events)
        (row,) = summary.supersteps
        assert row.instants == {"net": 1}
        assert row.mode == "push"
        assert row.phase_seconds["update"] == pytest.approx(0.5)
        assert row.worker_seconds[0] == (
            pytest.approx(0.8), pytest.approx(0.2)
        )

    def test_reexecution_overwrites_discarded_attempt(self):
        events = [
            span("superstep", 0.0, 1.0, superstep=1,
                 args={"mode": "push"}),
            TraceEvent(name="fault", kind="instant", cat="engine", ts=1.0,
                       superstep=2),
            TraceEvent(name="restart", kind="instant", cat="engine",
                       ts=1.0),
            span("superstep", 1.0, 2.0, superstep=1,
                 args={"mode": "push"}),
        ]
        summary = summarize(events)
        (row,) = summary.supersteps
        assert row.elapsed_seconds == 2.0  # the attempt that stuck
        assert ("fault", 2) in summary.incidents
        assert ("restart", None) in summary.incidents

    def test_recovery_rollup_from_restart_instants(self):
        def fault(ts, superstep):
            return TraceEvent(name="fault", kind="instant", cat="engine",
                              ts=ts, superstep=superstep)

        def restart(ts, downtime, rework):
            return TraceEvent(name="restart", kind="instant",
                              cat="engine", ts=ts,
                              args={"downtime_seconds": downtime,
                                    "rework_seconds": rework})

        events = [
            span("superstep", 0.0, 1.0, superstep=1,
                 args={"mode": "push"}),
            fault(1.0, 2), restart(1.0, 10.0, 1.5),
            span("superstep", 11.0, 1.0, superstep=1,
                 args={"mode": "push"}),
            fault(12.0, 2), restart(12.0, 20.0, 2.5),
            span("superstep", 32.0, 1.0, superstep=1,
                 args={"mode": "push"}),
        ]
        summary = summarize(events)
        assert summary.recovery == {
            "restarts": 2,
            "faults": 2,
            "downtime_seconds": pytest.approx(30.0),
            "rework_seconds": pytest.approx(4.0),
            "mttr_seconds": pytest.approx(17.0),
        }
        assert "2 restarts, MTTR 17.000s" in summary.table()
        assert summary.to_dict()["recovery"]["restarts"] == 2

    def test_no_restarts_no_recovery_rollup(self):
        events = [
            span("superstep", 0.0, 1.0, superstep=1,
                 args={"mode": "push"}),
        ]
        summary = summarize(events)
        assert summary.recovery is None
        assert summary.to_dict()["recovery"] is None

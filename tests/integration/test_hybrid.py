"""Hybrid behaviour: initial mode, switching, ablations (Section 5)."""

from collections import Counter

import pytest

from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.core.config import JobConfig
from repro.core.engine import run_job
from repro.datasets.generators import random_graph, social_graph


def base_modes(trace):
    """Strip switch labels: 'bpull->push' counts as the target mode."""
    return [label.split("->")[-1] for label in trace]


class TestInitialMode:
    def test_tiny_buffer_dense_graph_starts_bpull(self):
        g = random_graph(100, 10, seed=60)
        result = run_job(g, PageRank(supersteps=4),
                         JobConfig(mode="hybrid", num_workers=2,
                                   vblocks_per_worker=1,
                                   message_buffer_per_worker=5))
        assert result.metrics.mode_trace[0] == "bpull"

    def test_unlimited_buffer_starts_push(self):
        g = random_graph(100, 10, seed=60)
        result = run_job(g, PageRank(supersteps=4),
                         JobConfig(mode="hybrid", num_workers=2,
                                   vblocks_per_worker=1,
                                   message_buffer_per_worker=None))
        assert result.metrics.mode_trace[0] == "push"


class TestSwitching:
    def test_sufficient_memory_converges_to_bpull(self):
        # Section 6.1: with everything in memory, communication dominates
        # Q_t and hybrid ends up running b-pull.
        g = random_graph(150, 8, seed=61)
        result = run_job(g, PageRank(supersteps=10),
                         JobConfig(mode="hybrid", num_workers=3,
                                   vblocks_per_worker=1,
                                   message_buffer_per_worker=None,
                                   graph_on_disk=False))
        assert base_modes(result.metrics.mode_trace)[-1] == "bpull"

    def test_limited_memory_broadcast_stays_bpull(self):
        g = random_graph(150, 8, seed=61)
        result = run_job(g, PageRank(supersteps=8),
                         JobConfig(mode="hybrid", num_workers=3,
                                   vblocks_per_worker=1,
                                   message_buffer_per_worker=5))
        counts = Counter(base_modes(result.metrics.mode_trace))
        assert counts["bpull"] >= counts.get("push", 0)

    def test_traversal_tail_switches_to_push(self):
        # big whisker tail: long final phase with a tiny frontier, where
        # push is cheaper (few messages, but b-pull still scans blocks).
        g = social_graph(300, 8, seed=62, tail_fraction=0.5, tail_chain=40)
        result = run_job(g, SSSP(source=0),
                         JobConfig(mode="hybrid", num_workers=3,
                                   vblocks_per_worker=6,
                                   message_buffer_per_worker=5))
        trace = base_modes(result.metrics.mode_trace)
        assert trace[-1] == "push"
        assert "bpull" in trace  # it did start profitable

    def test_interval_respected(self):
        # a mode planned at superstep t applies at t + interval; with the
        # default interval of 2, two consecutive supersteps never differ
        # in a way the controller didn't plan (switch labels chain).
        g = social_graph(300, 8, seed=62, tail_fraction=0.5, tail_chain=40)
        result = run_job(g, SSSP(source=0),
                         JobConfig(mode="hybrid", num_workers=3,
                                   vblocks_per_worker=6,
                                   message_buffer_per_worker=5))
        trace = result.metrics.mode_trace
        for prev, cur in zip(trace, trace[1:]):
            if "->" in cur:
                assert cur.split("->")[0] == prev.split("->")[-1]

    def test_q_trace_signs_match_mode_choices(self):
        g = social_graph(300, 8, seed=62, tail_fraction=0.5, tail_chain=40)
        cfg = JobConfig(mode="hybrid", num_workers=3, vblocks_per_worker=6,
                        message_buffer_per_worker=5,
                        switching_interval=2)
        result = run_job(g, SSSP(source=0), cfg)
        trace = base_modes(result.metrics.mode_trace)
        q_trace = result.metrics.q_trace
        for idx, q in enumerate(q_trace):
            target = idx + cfg.switching_interval  # 0-based: superstep t+2
            if q is None or target >= len(trace):
                continue
            expected = "bpull" if q >= 0 else "push"
            assert trace[target] == expected


class TestAblations:
    def test_switching_gain_on_traversal_workload(self):
        """hybrid must beat the worse of push/b-pull, and switching must
        not lose much versus the best fixed mode (the paper's Fig. 8/14
        story: it should usually *match or beat* it)."""
        g = social_graph(400, 8, seed=63, tail_fraction=0.5, tail_chain=50)
        cfg = dict(num_workers=3, vblocks_per_worker=8,
                   message_buffer_per_worker=5)
        runtimes = {}
        for mode in ("push", "bpull", "hybrid"):
            result = run_job(g, SSSP(source=0),
                             JobConfig(mode=mode, **cfg))
            runtimes[mode] = result.metrics.compute_seconds
        best_fixed = min(runtimes["push"], runtimes["bpull"])
        worst_fixed = max(runtimes["push"], runtimes["bpull"])
        assert runtimes["hybrid"] < worst_fixed
        assert runtimes["hybrid"] <= best_fixed * 1.35

    def test_disabled_switching_is_pure_initial_mode(self):
        g = social_graph(300, 8, seed=62, tail_fraction=0.5, tail_chain=40)
        result = run_job(g, SSSP(source=0),
                         JobConfig(mode="hybrid", num_workers=3,
                                   vblocks_per_worker=6,
                                   message_buffer_per_worker=5,
                                   switching_enabled=False))
        assert len(set(result.metrics.mode_trace)) == 1

    def test_interval_one_switches_faster_than_interval_four(self):
        g = social_graph(300, 8, seed=62, tail_fraction=0.5, tail_chain=40)
        first_switch = {}
        for interval in (1, 4):
            result = run_job(g, SSSP(source=0),
                             JobConfig(mode="hybrid", num_workers=3,
                                       vblocks_per_worker=6,
                                       message_buffer_per_worker=5,
                                       switching_interval=interval))
            trace = result.metrics.mode_trace
            switches = [i for i, m in enumerate(trace) if "->" in m]
            first_switch[interval] = switches[0] if switches else len(trace)
        assert first_switch[1] <= first_switch[4]


class TestDeadband:
    def test_deadband_suppresses_flip_flops(self):
        """Near-zero Q_t values in the first supersteps of a traversal
        can flip the plan back and forth; the (extension) deadband keeps
        the transport put until the predicted gain is material."""
        g = social_graph(300, 8, seed=62, tail_fraction=0.5, tail_chain=40)
        base = dict(num_workers=3, vblocks_per_worker=6,
                    message_buffer_per_worker=5)
        pure = run_job(g, SSSP(source=0),
                       JobConfig(mode="hybrid", **base))
        damped = run_job(g, SSSP(source=0),
                         JobConfig(mode="hybrid", switching_deadband=0.05,
                                   **base))
        switches = lambda r: sum(
            1 for m in r.metrics.mode_trace if "->" in m
        )
        assert switches(damped) <= switches(pure)
        # damping must not break correctness
        assert damped.values == pure.values

    def test_zero_deadband_is_default(self):
        assert JobConfig().switching_deadband == 0.0

"""Fast regression pins on the paper's headline shapes.

The benchmark harness asserts every figure in full; these are the
cheapest cells re-checked inside the unit suite so an engine change that
silently breaks the reproduction fails `pytest tests/` too.
"""

import pytest

from repro.algorithms.pagerank import PageRank
from repro.core.engine import run_job
from repro.datasets.registry import DATASETS, get_dataset


@pytest.fixture(scope="module")
def wiki_runs():
    graph = get_dataset("wiki")
    spec = DATASETS["wiki"]
    return {
        mode: run_job(graph, PageRank(supersteps=3),
                      spec.job_config(mode))
        for mode in ("push", "pushm", "pull", "bpull", "hybrid")
    }


class TestHeadlineShapes:
    def test_limited_memory_ordering(self, wiki_runs):
        runtime = {
            mode: run.metrics.compute_seconds
            for mode, run in wiki_runs.items()
        }
        # Fig. 8's ordering: pull >> push > pushm > bpull ~= hybrid
        assert runtime["pull"] > runtime["push"] > runtime["pushm"]
        assert runtime["pushm"] > runtime["bpull"]
        assert runtime["hybrid"] == pytest.approx(runtime["bpull"],
                                                  rel=0.25)

    def test_bpull_factor_over_push_is_large(self, wiki_runs):
        ratio = (wiki_runs["push"].metrics.compute_seconds
                 / wiki_runs["bpull"].metrics.compute_seconds)
        assert ratio > 5.0

    def test_pull_io_dwarfs_everything(self, wiki_runs):
        io = {
            mode: run.metrics.compute_io_bytes
            for mode, run in wiki_runs.items()
        }
        assert io["pull"] > 3 * io["push"]
        assert io["bpull"] < io["push"]

    def test_bpull_never_spills(self, wiki_runs):
        assert all(
            s.spilled_messages == 0
            for s in wiki_runs["bpull"].metrics.supersteps
        )
        assert any(
            s.spilled_messages > 0
            for s in wiki_runs["push"].metrics.supersteps
        )

    def test_results_identical_across_transports(self, wiki_runs):
        reference = wiki_runs["push"].values
        for mode, run in wiki_runs.items():
            assert run.values == pytest.approx(reference), mode

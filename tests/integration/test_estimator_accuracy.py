"""Cross-validation of the switcher's other-side cost estimators.

While running push, hybrid estimates what b-pull *would* cost (and vice
versa) from metadata rather than by running it (Section 5.3).  These
tests run both pure transports over the same graph and compare each
superstep's estimate against the other mode's measured bytes.
"""

import pytest

from repro.algorithms.pagerank import PageRank
from repro.analysis.costmodel import cio_bpull_of, cio_push_of
from repro.core.config import JobConfig
from repro.core.engine import run_job
from repro.core.runtime import Runtime
from repro.datasets.generators import random_graph, social_graph


def paired_runs(graph, **cfg_kwargs):
    cfg_kwargs.setdefault("num_workers", 3)
    cfg_kwargs.setdefault("message_buffer_per_worker", 20)
    cfg_kwargs.setdefault("vblocks_per_worker", 4)
    push = run_job(graph, PageRank(supersteps=5),
                   JobConfig(mode="push", **cfg_kwargs))
    bpull = run_job(graph, PageRank(supersteps=5),
                    JobConfig(mode="bpull", **cfg_kwargs))
    hybrid_rt = Runtime(graph, PageRank(supersteps=5),
                        JobConfig(mode="hybrid", **cfg_kwargs))
    hybrid_rt.setup()
    return push, bpull, hybrid_rt


class TestBpullEstimateWhilePushing:
    def test_estimate_matches_measured_bpull_bytes(self):
        """With PageRank every vertex responds every superstep, so the
        VE-BLOCK estimate over the full flag vector must equal what a
        real b-pull superstep scans."""
        g = social_graph(400, 8, seed=141, tail_fraction=0.0)
        push, bpull, hybrid_rt = paired_runs(g)
        flags = [True] * g.num_vertices
        edge_bytes = aux_bytes = vrr_bytes = 0
        for worker in hybrid_rt.workers:
            e_b, a_b, v_b = worker.veblock.estimate_bpull_scan(flags)
            edge_bytes += e_b
            aux_bytes += a_b
            vrr_bytes += v_b
        # steady-state b-pull supersteps (skip ss1: no pull yet)
        step = bpull.metrics.supersteps[2]
        assert step.io_edges_bpull == edge_bytes
        assert step.io_fragments == aux_bytes
        assert step.io_vrr == vrr_bytes


class TestSpillEstimateWhilePulling:
    def test_global_spill_estimate_tracks_push(self):
        g = random_graph(300, 8, seed=142)
        buffer = 30
        push, bpull, _rt = paired_runs(
            g, message_buffer_per_worker=buffer
        )
        sizes_msg = 12
        for push_step, bpull_step in zip(
            push.metrics.supersteps[1:], bpull.metrics.supersteps[1:]
        ):
            # both transports move the same messages each superstep
            assert push_step.raw_messages == bpull_step.raw_messages
            estimate = max(
                0, bpull_step.raw_messages - 3 * buffer
            ) * sizes_msg
            # global-buffer estimate is a (tight-ish) lower bound on the
            # per-worker reality
            assert push_step.io_message_spill >= estimate
            assert push_step.io_message_spill <= estimate * 1.25 + (
                3 * buffer * sizes_msg
            )


class TestEqSevenEightConsistency:
    def test_cio_values_reasonable_magnitudes(self):
        g = social_graph(400, 8, seed=141, tail_fraction=0.0)
        push, bpull, _rt = paired_runs(g, message_buffer_per_worker=10)
        for p_step, b_step in zip(push.metrics.supersteps[1:],
                                  bpull.metrics.supersteps[1:]):
            # both formulas count the identical IO(V_t) term
            assert p_step.io_vertex == b_step.io_vertex
            assert cio_push_of(p_step) > 0
            assert cio_bpull_of(b_step) > 0

    def test_theorem2_direction_at_tiny_buffer(self):
        g = social_graph(400, 8, seed=141, tail_fraction=0.0)
        push, bpull, hybrid_rt = paired_runs(
            g, message_buffer_per_worker=5, vblocks_per_worker=2
        )
        fragments = hybrid_rt.total_fragments()
        if 15 <= g.num_edges / 2 - fragments:
            for p_step, b_step in zip(push.metrics.supersteps[1:],
                                      bpull.metrics.supersteps[1:]):
                assert cio_push_of(p_step) >= cio_bpull_of(b_step)

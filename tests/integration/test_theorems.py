"""Empirical validation of Theorems 1 and 2."""

import pytest

from repro.algorithms.pagerank import PageRank
from repro.analysis.costmodel import (
    cio_bpull_of,
    cio_push_of,
    expected_fragments,
    theorem2_premise,
)
from repro.core.config import JobConfig
from repro.core.engine import run_job
from repro.core.graph import range_partition
from repro.core.runtime import Runtime
from repro.datasets.generators import random_graph
from repro.storage.disk import SimulatedDisk
from repro.storage.records import DEFAULT_SIZES
from repro.storage.veblock import BlockLayout, VEBlockStore


def fragments_for(graph, num_blocks):
    """Total fragments when the graph is cut into *num_blocks* Vblocks."""
    partition = range_partition(graph.num_vertices, 1)
    layout = BlockLayout.build(partition, [num_blocks])
    store = VEBlockStore(graph, partition, 0, layout, SimulatedDisk(),
                         DEFAULT_SIZES)
    return store.total_fragments()


class TestTheorem1:
    def test_fragments_increase_with_vblocks(self):
        g = random_graph(400, 8, seed=50)
        counts = [fragments_for(g, v) for v in (1, 2, 4, 8, 16, 32)]
        assert counts == sorted(counts)
        assert counts[0] < counts[-1]

    def test_expected_formula_tracks_measured_on_random_graph(self):
        # random destinations match the uniform-placement assumption of
        # the theorem, so g(V) should predict the measured total within
        # a few percent.
        g = random_graph(600, 10, seed=51)
        for num_blocks in (4, 10, 25):
            measured = fragments_for(g, num_blocks)
            expected = sum(
                expected_fragments(num_blocks, g.out_degree(v))
                for v in g.vertices()
            )
            assert measured == pytest.approx(expected, rel=0.08)

    def test_fragments_bounded_by_edges(self):
        g = random_graph(300, 6, seed=52)
        for num_blocks in (2, 8, 64):
            assert fragments_for(g, num_blocks) <= g.num_edges


class TestTheorem2:
    def run_modes(self, graph, buffer_per_worker, vblocks):
        cfgs = {
            mode: JobConfig(mode=mode, num_workers=2,
                            message_buffer_per_worker=buffer_per_worker,
                            vblocks_per_worker=vblocks)
            for mode in ("push", "bpull")
        }
        return {
            mode: run_job(graph, PageRank(supersteps=4), cfg)
            for mode, cfg in cfgs.items()
        }

    def test_premise_implies_bpull_io_no_worse(self):
        # broadcast workload (PageRank), tiny buffer -> premise holds.
        g = random_graph(200, 10, seed=53)
        vblocks = 2
        rt = Runtime(g, PageRank(), JobConfig(
            mode="bpull", num_workers=2, vblocks_per_worker=vblocks,
            message_buffer_per_worker=5))
        rt.setup()
        fragments = rt.total_fragments()
        assert theorem2_premise(10, g.num_edges, fragments)
        results = self.run_modes(g, buffer_per_worker=5, vblocks=vblocks)
        # compare full supersteps (skip superstep 1: no messages yet)
        for push_step, bpull_step in zip(
            results["push"].metrics.supersteps[1:],
            results["bpull"].metrics.supersteps[1:],
        ):
            assert cio_push_of(push_step) >= cio_bpull_of(bpull_step)

    def test_big_buffer_can_reverse_the_inequality(self):
        g = random_graph(200, 10, seed=53)
        results = self.run_modes(g, buffer_per_worker=None, vblocks=2)
        push_steps = results["push"].metrics.supersteps[1:]
        bpull_steps = results["bpull"].metrics.supersteps[1:]
        # with no spill at all, push's I/O is strictly the smaller one
        assert any(
            cio_push_of(p) < cio_bpull_of(b)
            for p, b in zip(push_steps, bpull_steps)
        )

    def test_measured_eq7_matches_io_counters_for_push(self):
        g = random_graph(200, 10, seed=54)
        result = run_job(g, PageRank(supersteps=3),
                         JobConfig(mode="push", num_workers=2,
                                   message_buffer_per_worker=5))
        for step in result.metrics.supersteps:
            # Eq. 7's components are exactly what hit the simulated disk.
            assert step.io.total == (
                step.io_vertex
                + step.io_edges_push
                + step.io_message_spill
                + step.io_message_read
            )

    def test_measured_eq8_matches_io_counters_for_bpull(self):
        g = random_graph(200, 10, seed=54)
        result = run_job(g, PageRank(supersteps=3),
                         JobConfig(mode="bpull", num_workers=2,
                                   message_buffer_per_worker=5))
        for step in result.metrics.supersteps:
            assert step.io.total == (
                step.io_vertex
                + step.io_edges_bpull
                + step.io_fragments
                + step.io_vrr
            )

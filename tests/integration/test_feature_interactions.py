"""Interactions between features: combining x spilling, async x pushm,
checkpoints x aggregators — places where orthogonal knobs could clash."""

import pytest

from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.algorithms.wcc import WCC
from repro.core.config import FaultPlan, JobConfig
from repro.core.engine import run_job
from repro.datasets.generators import random_graph


class TestCombineSpillInterplay:
    def test_receiver_combine_reduces_spill_but_not_results(self):
        g = random_graph(150, 6, seed=131)
        base = JobConfig(mode="push", num_workers=3,
                         message_buffer_per_worker=10)
        plain = run_job(g, PageRank(supersteps=4), base)
        combined = run_job(g, PageRank(supersteps=4),
                           base.but(receiver_combine=True))
        assert combined.values == pytest.approx(plain.values)
        spilled = lambda r: sum(
            s.spilled_messages for s in r.metrics.supersteps
        )
        # combining frees buffer slots, so strictly less hits disk
        assert spilled(combined) < spilled(plain)

    def test_receiver_combine_ignored_for_noncombinable(self):
        from repro.algorithms.lpa import LPA

        g = random_graph(100, 5, seed=132)
        result = run_job(g, LPA(supersteps=3),
                         JobConfig(mode="push", num_workers=2,
                                   message_buffer_per_worker=10,
                                   receiver_combine=True))
        # LPA needs the full label multiset; combining must be a no-op
        reference = run_job(g, LPA(supersteps=3),
                            JobConfig(mode="push", num_workers=2,
                                      message_buffer_per_worker=10))
        assert result.values == reference.values


class TestAsyncPushm:
    def test_async_pushm_sssp(self):
        g = random_graph(150, 6, seed=133)
        sync = run_job(g, SSSP(source=0),
                       JobConfig(mode="pushm", num_workers=3,
                                 message_buffer_per_worker=20))
        asynchronous = run_job(
            g, SSSP(source=0),
            JobConfig(mode="pushm", num_workers=3,
                      message_buffer_per_worker=20, asynchronous=True),
        )
        assert asynchronous.values == sync.values

    def test_async_with_checkpoint_recovery(self):
        g = random_graph(150, 6, seed=134)
        clean = run_job(g, WCC(),
                        JobConfig(mode="push", num_workers=3,
                                  message_buffer_per_worker=20,
                                  asynchronous=True))
        faulty = run_job(
            g, WCC(),
            JobConfig(mode="push", num_workers=3,
                      message_buffer_per_worker=20, asynchronous=True,
                      checkpoint_interval=2,
                      fault=FaultPlan(worker=1, superstep=4)),
        )
        assert faulty.values == clean.values


class TestCheckpointAggregators:
    def test_aggregates_consistent_across_recovery(self):
        g = random_graph(120, 5, seed=135)
        cfg = JobConfig(mode="push", num_workers=3,
                        message_buffer_per_worker=30)
        clean = run_job(g, PageRank(tolerance=1e-6), cfg)
        faulty = run_job(
            g, PageRank(tolerance=1e-6),
            cfg.but(checkpoint_interval=3,
                    fault=FaultPlan(worker=2, superstep=7)),
        )
        assert faulty.values == pytest.approx(clean.values)
        assert (faulty.metrics.num_supersteps
                == clean.metrics.num_supersteps)
        # the replayed aggregates must match the clean trajectory
        for a, b in zip(clean.metrics.supersteps,
                        faulty.metrics.supersteps):
            assert a.aggregates == pytest.approx(b.aggregates)


class TestCheckpointBpull:
    def test_bpull_checkpoints_carry_no_messages(self):
        """b-pull consumes messages on arrival, so its snapshots are just
        values + flags — strictly smaller than push's."""
        g = random_graph(150, 6, seed=136)
        push = run_job(g, PageRank(supersteps=6),
                       JobConfig(mode="push", num_workers=3,
                                 message_buffer_per_worker=None,
                                 checkpoint_interval=2))
        bpull = run_job(g, PageRank(supersteps=6),
                        JobConfig(mode="bpull", num_workers=3,
                                  message_buffer_per_worker=None,
                                  checkpoint_interval=2))
        push_bytes = [b for _t, b, _s in push.metrics.checkpoints]
        bpull_bytes = [b for _t, b, _s in bpull.metrics.checkpoints]
        assert len(push_bytes) == len(bpull_bytes) == 2
        assert all(p > b for p, b in zip(push_bytes, bpull_bytes))

    def test_bpull_checkpoint_recovery(self):
        g = random_graph(150, 6, seed=136)
        clean = run_job(g, SSSP(source=0),
                        JobConfig(mode="bpull", num_workers=3,
                                  message_buffer_per_worker=20))
        faulty = run_job(
            g, SSSP(source=0),
            JobConfig(mode="bpull", num_workers=3,
                      message_buffer_per_worker=20,
                      checkpoint_interval=2,
                      fault=FaultPlan(worker=0, superstep=5)),
        )
        assert faulty.values == clean.values
        assert faulty.metrics.recovered_from == 4

"""Appendix B's worked example, executed verbatim.

The paper walks SSSP over a 5-vertex graph with VE-BLOCK split into
three Vblocks (b1 = {v1, v2}, b2 = {v3, v4}, b3 = {v5}) on two
computational nodes (T1 holds b1 and b2, T2 holds b3), with v3 the
source.  Figs. 20-22 spell out the metadata, the message data-flow of
superstep 2, and the push-vs-b-pull superstep timelines; this test
reproduces each detail.

Vertex ids are shifted down by one (the paper's v1..v5 are our 0..4).
The edges and the 0.8-weight edge (v3, v2) come from Fig. 20/22.
"""

import pytest

from repro.algorithms.sssp import SSSP
from repro.core.config import JobConfig
from repro.core.engine import run_job
from repro.core.graph import Graph, range_partition
from repro.storage.disk import SimulatedDisk
from repro.storage.records import DEFAULT_SIZES
from repro.storage.veblock import BlockLayout, VEBlockStore


def example_graph():
    """Appendix B's example graph (paper ids v1..v5 -> 0..4)."""
    g = Graph(5, name="appendix-b")
    g.add_edge(0, 1, 1.0)   # v1 -> v2
    g.add_edge(1, 0, 1.0)   # v2 -> v1
    g.add_edge(2, 1, 0.8)   # v3 -> v2 (the 0.8 edge of Fig. 22)
    g.add_edge(2, 3, 1.0)   # v3 -> v4
    g.add_edge(2, 4, 1.0)   # v3 -> v5
    g.add_edge(3, 4, 1.0)   # v4 -> v5
    g.add_edge(4, 2, 1.0)   # v5 -> v3
    return g


def build_layout():
    """b1 = {v1, v2}, b2 = {v3, v4} on T1; b3 = {v5} on T2."""
    partition = range_partition(5, 2)  # T1: 0-2? need custom split
    # range_partition(5, 2) gives T1 = {0,1,2}, T2 = {3,4}; the paper
    # puts v1..v4 on T1 and v5 on T2 — emulate with explicit blocks by
    # re-partitioning 4/1:
    from repro.core.graph import Partition

    partition = Partition(num_workers=2, kind="range", starts=(0, 4),
                          num_vertices=5)
    layout = BlockLayout.build(partition, [2, 1])
    return partition, layout


class TestAppendixBStructure:
    def test_blocks_match_paper(self):
        _partition, layout = build_layout()
        assert layout.block_vertices == ((0, 1), (2, 3), (4,))
        assert layout.block_owner == (0, 0, 1)

    def test_metadata_bitmaps(self):
        partition, layout = build_layout()
        g = example_graph()
        t1 = VEBlockStore(g, partition, 0, layout, SimulatedDisk(),
                          DEFAULT_SIZES)
        t2 = VEBlockStore(g, partition, 1, layout, SimulatedDisk(),
                          DEFAULT_SIZES)
        # "the bitmap in X1 (100) indicates that the vertices in b1 only
        # have out-neighbors in Eblock g11"
        assert t1.meta[0].bitmap == {0}
        # b2 (v3, v4) has edges into b1 (v3->v2), b2 (nothing? v3->v4 is
        # within b2) and b3 (v3->v5, v4->v5)
        assert t1.meta[1].bitmap == {0, 1, 2}
        # b3 = {v5} has the single edge v5->v3 into b2
        assert t2.meta[2].bitmap == {1}

    def test_fragments_of_the_example(self):
        partition, layout = build_layout()
        g = example_graph()
        t1 = VEBlockStore(g, partition, 0, layout, SimulatedDisk(),
                          DEFAULT_SIZES)
        # g21 holds exactly the fragment (v3, [(v2, 0.8)])
        eblock = t1.eblock(1, 0)
        assert eblock is not None
        assert eblock.fragments == [(2, [(1, 0.8)])]

    def test_superstep2_dataflow(self):
        """Fig. 22: requesting b1 at superstep 2 yields exactly the
        message (v2, 0.8) generated from v3's fragment in g21."""
        partition, layout = build_layout()
        g = example_graph()
        t1 = VEBlockStore(g, partition, 0, layout, SimulatedDisk(),
                          DEFAULT_SIZES)
        t2 = VEBlockStore(g, partition, 1, layout, SimulatedDisk(),
                          DEFAULT_SIZES)
        # after superstep 1 only the source v3 responds
        flags = [False, False, True, False, False]
        for store in (t1, t2):
            store.begin_superstep_stats()
            store.refresh_res(flags)
        produced = []
        for store in (t1, t2):
            for svertex, edges in store.scan_for_request(0, flags):
                produced.extend((svertex, dst, w) for dst, w in edges)
        assert produced == [(2, 1, 0.8)]


class TestAppendixBExecution:
    def test_sssp_distances(self):
        g = example_graph()
        for mode in ("push", "bpull", "hybrid"):
            result = run_job(g, SSSP(source=2),
                             JobConfig(mode=mode, num_workers=2,
                                       message_buffer_per_worker=4))
            # v3=0; v2=0.8; v4=1; v5=1; v1 via v2: 1.8
            assert result.values == pytest.approx(
                [1.8, 0.8, 0.0, 1.0, 1.0]
            ), mode

    def test_push_timeline_matches_fig21(self):
        """Fig. 21: push — ss1 source sends 3 msgs; ss2 v2/v4/v5 update
        and forward; the computation quiesces by superstep 4-5."""
        g = example_graph()
        result = run_job(g, SSSP(source=2),
                         JobConfig(mode="push", num_workers=2,
                                   message_buffer_per_worker=4))
        steps = result.metrics.supersteps
        assert steps[0].raw_messages == 3      # to v2, v4, v5
        assert steps[1].updated_vertices == 3  # v2, v4, v5
        assert result.metrics.num_supersteps <= 5

    def test_bpull_ss1_moves_no_messages(self):
        """Fig. 21: in b-pull superstep 1 the source only updates; no
        messages are transferred until superstep 2's pull."""
        g = example_graph()
        result = run_job(g, SSSP(source=2),
                         JobConfig(mode="bpull", num_workers=2,
                                   message_buffer_per_worker=4))
        steps = result.metrics.supersteps
        assert steps[0].raw_messages == 0
        assert steps[1].raw_messages == 3
        assert steps[1].updated_vertices == 3

"""Cross-mode equivalence: all five engines compute identical results.

This is the load-bearing correctness property behind the paper's
switching design (Section 5.2): push, pushM, pull, b-pull, and hybrid are
different *message transports* over the same decoupled compute functions,
so vertex trajectories must match exactly.
"""

import math

import pytest

from repro.algorithms.lpa import LPA
from repro.algorithms.pagerank import PageRank
from repro.algorithms.sa import SA
from repro.algorithms.sssp import SSSP
from repro.algorithms.wcc import WCC
from repro.core.config import JobConfig
from repro.core.engine import run_job
from repro.datasets.generators import random_graph, social_graph, web_graph

ALL_MODES = ("push", "pushm", "pull", "bpull", "hybrid")
NONCOMBINABLE_MODES = ("push", "pull", "bpull", "hybrid")


def run_all(graph, program_factory, modes, **cfg_kwargs):
    results = {}
    for mode in modes:
        cfg = JobConfig(mode=mode, num_workers=3,
                        message_buffer_per_worker=25, **cfg_kwargs)
        results[mode] = run_job(graph, program_factory(), cfg)
    return results


def assert_values_equal(results, approx=False):
    modes = list(results)
    base = results[modes[0]].values
    for mode in modes[1:]:
        other = results[mode].values
        if approx:
            assert other == pytest.approx(base), mode
        else:
            assert other == base, mode


GRAPHS = {
    "random": lambda: random_graph(90, 5, seed=31),
    "social": lambda: social_graph(90, 5, seed=32, tail_chain=8),
    "web": lambda: web_graph(90, 5, seed=33),
}


@pytest.mark.parametrize("graph_kind", sorted(GRAPHS))
class TestEquivalence:
    def test_pagerank_all_modes(self, graph_kind):
        g = GRAPHS[graph_kind]()
        results = run_all(g, lambda: PageRank(supersteps=6), ALL_MODES)
        assert_values_equal(results, approx=True)

    def test_sssp_all_modes(self, graph_kind):
        g = GRAPHS[graph_kind]()
        results = run_all(g, lambda: SSSP(source=0), ALL_MODES)
        assert_values_equal(results)

    def test_wcc_all_modes(self, graph_kind):
        g = GRAPHS[graph_kind]()
        results = run_all(g, WCC, ALL_MODES)
        assert_values_equal(results)

    def test_lpa_noncombinable_modes(self, graph_kind):
        g = GRAPHS[graph_kind]()
        results = run_all(g, lambda: LPA(supersteps=5),
                          NONCOMBINABLE_MODES)
        assert_values_equal(results)

    def test_sa_noncombinable_modes(self, graph_kind):
        g = GRAPHS[graph_kind]()
        results = run_all(g, lambda: SA(num_sources=3),
                          NONCOMBINABLE_MODES)
        assert_values_equal(results)


class TestEquivalenceAcrossConfigs:
    def test_buffer_size_does_not_change_results(self):
        g = random_graph(90, 5, seed=34)
        baseline = run_job(g, PageRank(supersteps=5),
                           JobConfig(mode="push", num_workers=3,
                                     message_buffer_per_worker=None))
        for buffer in (1, 7, 100):
            result = run_job(g, PageRank(supersteps=5),
                             JobConfig(mode="push", num_workers=3,
                                       message_buffer_per_worker=buffer))
            assert result.values == pytest.approx(baseline.values)

    def test_worker_count_does_not_change_results(self):
        g = random_graph(90, 5, seed=35)
        baseline = run_job(g, SSSP(source=0),
                           JobConfig(mode="bpull", num_workers=1,
                                     message_buffer_per_worker=20))
        for workers in (2, 5, 8):
            result = run_job(g, SSSP(source=0),
                             JobConfig(mode="bpull", num_workers=workers,
                                       message_buffer_per_worker=20))
            assert result.values == baseline.values

    def test_vblock_count_does_not_change_results(self):
        g = random_graph(90, 5, seed=36)
        baseline = None
        for vblocks in (1, 3, 10):
            result = run_job(g, SSSP(source=0),
                             JobConfig(mode="bpull", num_workers=3,
                                       vblocks_per_worker=vblocks,
                                       message_buffer_per_worker=20))
            if baseline is None:
                baseline = result.values
            else:
                assert result.values == baseline

    def test_partitioning_does_not_change_results(self):
        g = random_graph(90, 5, seed=37)
        by_range = run_job(g, PageRank(supersteps=4),
                           JobConfig(mode="bpull", num_workers=3,
                                     partition="range",
                                     message_buffer_per_worker=20))
        by_hash = run_job(g, PageRank(supersteps=4),
                          JobConfig(mode="bpull", num_workers=3,
                                    partition="hash",
                                    message_buffer_per_worker=20))
        assert by_hash.values == pytest.approx(by_range.values)

    def test_sender_combining_does_not_change_results(self):
        g = random_graph(90, 5, seed=38)
        plain = run_job(g, PageRank(supersteps=4),
                        JobConfig(mode="pushm", num_workers=3,
                                  message_buffer_per_worker=20))
        combined = run_job(g, PageRank(supersteps=4),
                           JobConfig(mode="pushm", num_workers=3,
                                     message_buffer_per_worker=20,
                                     sender_combine=True))
        assert combined.values == pytest.approx(plain.values)

    def test_receiver_combining_does_not_change_results(self):
        g = random_graph(90, 5, seed=39)
        plain = run_job(g, SSSP(source=0),
                        JobConfig(mode="push", num_workers=3,
                                  message_buffer_per_worker=20))
        combined = run_job(g, SSSP(source=0),
                           JobConfig(mode="push", num_workers=3,
                                     message_buffer_per_worker=20,
                                     receiver_combine=True))
        assert combined.values == plain.values

    def test_fragment_clustering_ablation_same_results(self):
        g = random_graph(90, 5, seed=40)
        clustered = run_job(g, SSSP(source=0),
                            JobConfig(mode="bpull", num_workers=3,
                                      message_buffer_per_worker=20))
        flat = run_job(g, SSSP(source=0),
                       JobConfig(mode="bpull", num_workers=3,
                                 message_buffer_per_worker=20,
                                 fragment_clustering=False))
        assert flat.values == clustered.values

    def test_disk_profile_does_not_change_results(self):
        from repro.core.config import AMAZON_CLUSTER

        g = random_graph(90, 5, seed=41)
        hdd = run_job(g, SSSP(source=0),
                      JobConfig(mode="hybrid", num_workers=3,
                                message_buffer_per_worker=10))
        ssd = run_job(g, SSSP(source=0),
                      JobConfig(mode="hybrid", num_workers=3,
                                message_buffer_per_worker=10,
                                cluster=AMAZON_CLUSTER))
        assert ssd.values == hdd.values

"""PhasedBFS — the Multi-Phase-Style workload (Appendix G)."""

import pytest

from repro.algorithms.phased_bfs import PhasedBFS
from repro.core.config import JobConfig
from repro.core.engine import run_job
from repro.core.graph import Graph
from repro.datasets.generators import random_graph


def cfg(mode="push", **kwargs):
    kwargs.setdefault("num_workers", 3)
    kwargs.setdefault("message_buffer_per_worker", 20)
    return JobConfig(mode=mode, **kwargs)


def reachable_from(graph, source):
    seen = {source}
    stack = [source]
    while stack:
        u = stack.pop()
        for v, _w in graph.out_edges(u):
            if v not in seen:
                seen.add(v)
                stack.append(v)
    return seen


class TestPhasedBFS:
    def test_requires_sources(self):
        with pytest.raises(ValueError):
            PhasedBFS(sources=())

    def test_reachability_matches_dfs_per_source(self):
        g = random_graph(120, 4, seed=41)
        sources = (0, 11, 37)
        result = run_job(g, PhasedBFS(sources=sources), cfg())
        for k, src in enumerate(sources):
            expected = reachable_from(g, src)
            got = {
                vid for vid, (_p, reached, _f) in enumerate(result.values)
                if reached[k]
            }
            assert got == expected, k

    @pytest.mark.parametrize("mode", ["pushm", "bpull", "hybrid", "pull"])
    def test_equivalent_across_modes(self, mode):
        g = random_graph(120, 4, seed=41)
        reference = run_job(g, PhasedBFS(sources=(0, 11)), cfg("push"))
        if mode == "pushm":
            pytest.skip("PhasedBFS messages are not combinable")
        other = run_job(g, PhasedBFS(sources=(0, 11)), cfg(mode))
        assert other.values == reference.values
        assert (other.metrics.num_supersteps
                == reference.metrics.num_supersteps)

    def test_phases_run_sequentially(self):
        """Each wave only starts after the previous one has died out:
        at every superstep, only one phase's messages are in flight."""
        g = random_graph(120, 4, seed=41)
        result = run_job(g, PhasedBFS(sources=(0, 11, 37)), cfg())
        trace = [s.responding_vertices for s in result.metrics.supersteps]
        # count the quiet boundaries: one between consecutive phases
        boundaries = sum(
            1 for a, b in zip(trace, trace[1:]) if a == 0 and b > 0
        )
        assert boundaries == 2  # three phases, two restarts

    def test_active_volume_oscillates(self):
        g = random_graph(120, 4, seed=41)
        result = run_job(g, PhasedBFS(sources=(0, 11, 37)), cfg())
        trace = [s.responding_vertices for s in result.metrics.supersteps]
        peaks = sum(
            1
            for i in range(1, len(trace) - 1)
            if trace[i] > trace[i - 1] and trace[i] >= trace[i + 1]
            and trace[i] > 5
        )
        assert peaks >= 3  # one swell per phase

    def test_unreachable_phase_terminates(self):
        # source 3 is isolated: its wave covers only itself
        g = Graph(5, [(0, 1), (1, 2), (2, 0)])
        result = run_job(g, PhasedBFS(sources=(0, 3)), cfg(num_workers=2))
        _p, reached, _f = result.values[4]
        assert reached == (False, False)
        _p, reached3, _f = result.values[3]
        assert reached3 == (False, True)

    def test_final_phase_counter(self):
        g = random_graph(60, 4, seed=42)
        result = run_job(g, PhasedBFS(sources=(0, 1)), cfg())
        assert all(p == 2 for p, _r, _f in result.values)

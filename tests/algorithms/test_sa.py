"""SA (simulated advertisements) semantics and determinism."""

import pytest

from repro.algorithms.sa import SA, _interested
from repro.core.api import ProgramContext
from repro.core.config import JobConfig
from repro.core.engine import run_job
from repro.datasets.generators import random_graph


CFG = JobConfig(mode="push", num_workers=3, graph_on_disk=False)


def ctx(superstep=2, n=50):
    return ProgramContext(num_vertices=n, superstep=superstep,
                          out_degree=lambda v: 2, max_supersteps=0)


class TestInterest:
    def test_deterministic(self):
        assert _interested(5, 2, 55) == _interested(5, 2, 55)

    def test_extremes(self):
        assert _interested(1, 1, 100) is True
        assert _interested(1, 1, 0) is False

    def test_varies_by_vertex_and_ad(self):
        outcomes = {
            _interested(v, ad, 50) for v in range(20) for ad in range(5)
        }
        assert outcomes == {True, False}


class TestSAUpdate:
    def test_source_injects_own_ad_in_superstep_one(self):
        prog = SA(num_sources=2)
        result = prog.update(1, ((), ()), [], ctx(superstep=1))
        assert result.value == ((1,), (1,))
        assert result.respond is True

    def test_non_source_idle_in_superstep_one(self):
        prog = SA(num_sources=2)
        result = prog.update(9, ((), ()), [], ctx(superstep=1))
        assert result.value == ((), ())
        assert result.respond is False

    def test_accepts_only_interesting_fresh_ads(self):
        prog = SA(num_sources=1, interest_percent=100)
        result = prog.update(9, ((), ()), [(0,), (3,)], ctx())
        assert result.value[0] == (0, 3)
        assert result.respond is True

    def test_already_accepted_ad_not_fresh(self):
        prog = SA(num_sources=1, interest_percent=100)
        result = prog.update(9, ((3,), ()), [(3,)], ctx())
        assert result.value == ((3,), ())
        assert result.respond is False

    def test_zero_interest_never_accepts(self):
        prog = SA(num_sources=1, interest_percent=0)
        result = prog.update(9, ((), ()), [(0,), (1,)], ctx())
        assert result.value == ((), ())
        assert result.respond is False

    def test_message_carries_only_fresh_ads(self):
        prog = SA()
        assert prog.message_value(1, ((1, 2), (2,)), 5, 1.0, ctx()) == (2,)
        assert prog.message_value(1, ((1, 2), ()), 5, 1.0, ctx()) is None

    def test_invalid_percent_rejected(self):
        with pytest.raises(ValueError):
            SA(interest_percent=101)


class TestSAJobs:
    def test_accepted_sets_monotone_and_sources_seeded(self):
        g = random_graph(80, 5, seed=12)
        result = run_job(g, SA(num_sources=3, interest_percent=70), CFG)
        for vid in range(3):
            accepted, _fresh = result.values[vid]
            assert vid in accepted
        for accepted, fresh in result.values:
            assert set(fresh) <= set(accepted)

    def test_higher_interest_spreads_further(self):
        g = random_graph(80, 5, seed=12)
        low = run_job(g, SA(num_sources=3, interest_percent=20), CFG)
        high = run_job(g, SA(num_sources=3, interest_percent=90), CFG)

        def reach(result):
            return sum(1 for acc, _f in result.values if acc)

        assert reach(high) >= reach(low)

    def test_deterministic_across_runs(self):
        g = random_graph(80, 5, seed=12)
        a = run_job(g, SA(), CFG)
        b = run_job(g, SA(), CFG)
        assert a.values == b.values

    def test_converges(self):
        g = random_graph(60, 4, seed=3)
        result = run_job(g, SA(num_sources=2), CFG)
        last = result.metrics.supersteps[-1]
        assert last.responding_vertices == 0 or last.updated_vertices == 0

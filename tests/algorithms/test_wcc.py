"""WCC (min-label propagation) on symmetrised graphs."""

from repro.algorithms.wcc import WCC
from repro.core.config import JobConfig
from repro.core.engine import run_job
from repro.core.graph import Graph
from repro.datasets.generators import random_graph


CFG = JobConfig(mode="push", num_workers=2, graph_on_disk=False)


def symmetrise(graph):
    g = Graph(graph.num_vertices, name=graph.name)
    for src, dst, w in graph.edges():
        g.add_edge(src, dst, w)
        g.add_edge(dst, src, w)
    return g


def reference_components(graph):
    """Union-find over the undirected version."""
    parent = list(range(graph.num_vertices))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for src, dst, _w in graph.edges():
        ra, rb = find(src), find(dst)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)
    return [find(v) for v in range(graph.num_vertices)]


class TestWCC:
    def test_two_components(self):
        g = symmetrise(Graph(5, [(0, 1), (1, 2), (3, 4)]))
        result = run_job(g, WCC(), CFG)
        assert result.values == [0, 0, 0, 3, 3]

    def test_matches_union_find(self):
        g = symmetrise(random_graph(120, 2, seed=21))
        result = run_job(g, WCC(), CFG)
        assert result.values == reference_components(g)

    def test_single_component_min_id(self):
        g = symmetrise(Graph(4, [(3, 2), (2, 1), (1, 0)]))
        result = run_job(g, WCC(), CFG)
        assert result.values == [0, 0, 0, 0]

    def test_isolated_vertices_keep_own_labels(self):
        g = Graph(3, [])
        result = run_job(g, WCC(), CFG)
        assert result.values == [0, 1, 2]

    def test_combiner_is_min(self):
        assert WCC().combine(5, 3) == 3
        assert WCC().combine_all([9, 4, 7]) == 4

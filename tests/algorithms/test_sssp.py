"""SSSP correctness against Dijkstra."""

import heapq
import math

import pytest

from repro.algorithms.sssp import SSSP
from repro.core.config import JobConfig
from repro.core.engine import run_job
from repro.core.graph import Graph
from repro.datasets.generators import random_graph, social_graph, web_graph


def dijkstra(graph, source):
    dist = [math.inf] * graph.num_vertices
    dist[source] = 0.0
    heap = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v, w in graph.out_edges(u):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


CFG = JobConfig(mode="push", num_workers=3, graph_on_disk=False)


class TestSSSP:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_dijkstra_random(self, seed):
        g = random_graph(100, 5, seed=seed)
        result = run_job(g, SSSP(source=0), CFG)
        assert result.values == pytest.approx(dijkstra(g, 0))

    def test_matches_dijkstra_social(self):
        g = social_graph(150, 6, seed=4)
        result = run_job(g, SSSP(source=3), CFG)
        assert result.values == pytest.approx(dijkstra(g, 3))

    def test_matches_dijkstra_web(self):
        g = web_graph(150, 6, seed=4)
        result = run_job(g, SSSP(source=7), CFG)
        assert result.values == pytest.approx(dijkstra(g, 7))

    def test_source_distance_zero(self):
        g = random_graph(30, 3, seed=5)
        result = run_job(g, SSSP(source=11), CFG)
        assert result.values[11] == 0.0

    def test_weighted_shortcut_preferred(self):
        # direct edge weight 10 vs two-hop path of weight 2+2
        g = Graph(3, [(0, 2, 10.0), (0, 1, 2.0), (1, 2, 2.0)])
        result = run_job(g, SSSP(source=0), CFG)
        assert result.values[2] == pytest.approx(4.0)

    def test_combiner_is_min(self):
        prog = SSSP()
        assert prog.combine(3.0, 1.0) == 1.0
        assert prog.combine_all([5.0, 2.0, 9.0]) == 2.0

    def test_infinite_value_sends_no_message(self):
        prog = SSSP()
        from repro.core.api import ProgramContext

        ctx = ProgramContext(num_vertices=3, superstep=2,
                             out_degree=lambda v: 1, max_supersteps=0)
        assert prog.message_value(0, math.inf, 1, 1.0, ctx) is None
        assert prog.message_value(0, 4.0, 1, 1.5, ctx) == 5.5

    def test_only_source_initially_active(self):
        prog = SSSP(source=2)
        from repro.core.api import ProgramContext

        ctx = ProgramContext(num_vertices=5, superstep=1,
                             out_degree=lambda v: 1, max_supersteps=0)
        assert prog.initially_active(2, ctx)
        assert not prog.initially_active(0, ctx)

"""LPA semantics: synchronous majority labels with small-label ties."""

import pytest

from repro.algorithms.lpa import LPA
from repro.core.api import ProgramContext
from repro.core.config import JobConfig
from repro.core.engine import run_job
from repro.core.graph import Graph
from repro.datasets.generators import random_graph


CFG = JobConfig(mode="push", num_workers=2, graph_on_disk=False)


def ctx(superstep=2, n=10):
    return ProgramContext(num_vertices=n, superstep=superstep,
                          out_degree=lambda v: 1, max_supersteps=5)


class TestLPAUpdate:
    def test_majority_wins(self):
        prog = LPA()
        result = prog.update(0, 0, [7, 7, 3], ctx())
        assert result.value == 7

    def test_tie_prefers_smaller_label(self):
        prog = LPA()
        result = prog.update(0, 0, [7, 3, 7, 3], ctx())
        assert result.value == 3

    def test_no_messages_keeps_label(self):
        prog = LPA()
        result = prog.update(4, 42, [], ctx())
        assert result.value == 42

    def test_always_responds(self):
        prog = LPA()
        assert prog.update(0, 0, [1], ctx()).respond is True
        assert prog.update(0, 0, [], ctx()).respond is True

    def test_not_combinable(self):
        assert LPA.combinable is False
        with pytest.raises(NotImplementedError):
            LPA().combine(1, 2)


class TestLPAJobs:
    def test_two_cliques_converge_to_two_communities(self):
        # two directed 3-cliques joined by a single weak edge
        edges = []
        for group in ((0, 1, 2), (3, 4, 5)):
            for a in group:
                for b in group:
                    if a != b:
                        edges.append((a, b))
        edges.append((2, 3))
        g = Graph(6, edges)
        result = run_job(g, LPA(supersteps=6), CFG)
        left = {result.values[v] for v in (0, 1, 2)}
        right = {result.values[v] for v in (3, 4, 5)}
        assert len(left) == 1
        assert len(right) == 1

    def test_fixed_supersteps(self):
        g = random_graph(40, 4, seed=8)
        result = run_job(g, LPA(supersteps=4), CFG)
        assert result.metrics.num_supersteps == 4

    def test_labels_are_vertex_ids(self):
        g = random_graph(40, 4, seed=8)
        result = run_job(g, LPA(supersteps=3), CFG)
        assert all(0 <= label < 40 for label in result.values)

    def test_isolated_vertex_keeps_own_label(self):
        g = Graph(3, [(0, 1), (1, 0)])
        result = run_job(g, LPA(supersteps=4), CFG)
        assert result.values[2] == 2

"""PageRank correctness against a dense reference power iteration."""

import math

import pytest

from repro.algorithms.pagerank import PageRank
from repro.core.config import JobConfig
from repro.core.engine import run_job
from repro.core.graph import Graph
from repro.datasets.generators import random_graph


def reference_pagerank(graph, damping, supersteps):
    """Dense power iteration with the same Pregel semantics.

    Superstep 1 sets every rank to 1/N; each later superstep computes
    (1-d)/N + d * sum of in-messages (no dangling redistribution,
    matching Fig. 3 of the paper).
    """
    n = graph.num_vertices
    ranks = [1.0 / n] * n
    for _ in range(supersteps - 1):
        incoming = [0.0] * n
        for src in range(n):
            degree = graph.out_degree(src)
            if degree == 0:
                continue
            share = ranks[src] / degree
            for dst, _w in graph.out_edges(src):
                incoming[dst] += share
        ranks = [(1.0 - damping) / n + damping * m for m in incoming]
    return ranks


CFG = JobConfig(mode="push", num_workers=3, graph_on_disk=False)


class TestPageRank:
    def test_matches_reference_on_random_graph(self):
        g = random_graph(120, 5, seed=9)
        result = run_job(g, PageRank(supersteps=8), CFG)
        expected = reference_pagerank(g, 0.85, 8)
        for got, want in zip(result.values, expected):
            assert got == pytest.approx(want, rel=1e-9)

    def test_cycle_uniform_rank(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        result = run_job(g, PageRank(supersteps=10), CFG)
        for value in result.values:
            assert value == pytest.approx(0.25)

    def test_sink_attracts_rank(self):
        # two vertices point at vertex 2
        g = Graph(3, [(0, 2), (1, 2)])
        result = run_job(g, PageRank(supersteps=5), CFG)
        assert result.values[2] > result.values[0]
        assert result.values[0] == pytest.approx(result.values[1])

    def test_rank_mass_bounded_by_one(self):
        g = random_graph(100, 4, seed=1)
        result = run_job(g, PageRank(supersteps=6), CFG)
        assert 0.0 < sum(result.values) <= 1.0 + 1e-9

    def test_invalid_damping_rejected(self):
        with pytest.raises(ValueError):
            PageRank(damping=1.5)
        with pytest.raises(ValueError):
            PageRank(damping=0.0)

    def test_custom_superstep_count(self):
        g = random_graph(50, 4, seed=2)
        result = run_job(g, PageRank(supersteps=3), CFG)
        assert result.metrics.num_supersteps == 3

    def test_combine_is_addition(self):
        pr = PageRank()
        assert pr.combine(0.25, 0.5) == 0.75
        assert pr.combine_all([1.0, 2.0, 3.0]) == 6.0

    def test_no_message_for_dangling_vertex(self):
        pr = PageRank()
        from repro.core.api import ProgramContext

        ctx = ProgramContext(num_vertices=2, superstep=2,
                             out_degree=lambda v: 0, max_supersteps=5)
        assert pr.message_value(0, 0.5, 1, 1.0, ctx) is None

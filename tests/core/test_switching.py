"""Unit tests for Q_t (Eq. 11), Theorem 2's bound, and the hybrid switcher."""

import pytest

from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.core.config import JobConfig
from repro.core.engine import run_job
from repro.core.runtime import Runtime
from repro.core.switching import (
    HybridController,
    QInputs,
    b_lower_bound,
    initial_mode,
    q_metric,
)
from repro.datasets.generators import random_graph
from repro.storage.disk import HDD_PROFILE


class TestQMetric:
    def test_heavy_spill_favours_bpull(self):
        inputs = QInputs(mco=0, bytem=12, io_mdisk=10**7, io_edges_push=0,
                         io_edges_bpull=0, io_fragments=0, io_vrr=0)
        assert q_metric(inputs, HDD_PROFILE) > 0

    def test_heavy_vrr_favours_push(self):
        inputs = QInputs(mco=0, bytem=12, io_mdisk=0, io_edges_push=0,
                         io_edges_bpull=0, io_fragments=0, io_vrr=10**7)
        assert q_metric(inputs, HDD_PROFILE) < 0

    def test_communication_savings_favour_bpull(self):
        inputs = QInputs(mco=10**6, bytem=12, io_mdisk=0, io_edges_push=0,
                         io_edges_bpull=0, io_fragments=0, io_vrr=0)
        assert q_metric(inputs, HDD_PROFILE) > 0

    def test_zero_everything_is_zero(self):
        inputs = QInputs(mco=0, bytem=4, io_mdisk=0, io_edges_push=0,
                         io_edges_bpull=0, io_fragments=0, io_vrr=0)
        assert q_metric(inputs, HDD_PROFILE) == 0.0

    def test_spill_counted_twice(self):
        # IO(M_disk) appears in both the random-write and seq-read terms.
        base = QInputs(mco=0, bytem=4, io_mdisk=0, io_edges_push=0,
                       io_edges_bpull=0, io_fragments=0, io_vrr=0)
        spill = QInputs(mco=0, bytem=4, io_mdisk=1024**2, io_edges_push=0,
                        io_edges_bpull=0, io_fragments=0, io_vrr=0)
        delta = q_metric(spill, HDD_PROFILE) - q_metric(base, HDD_PROFILE)
        expected = 1.0 / HDD_PROFILE.random_write_mbps + (
            1.0 / HDD_PROFILE.seq_read_mbps
        )
        assert delta == pytest.approx(expected)


class TestTheorem2Bound:
    def test_b_lower_bound(self):
        assert b_lower_bound(100, 10) == 40.0

    def test_initial_mode_below_bound_is_bpull(self):
        assert initial_mode(30, 100, 10) == "bpull"

    def test_initial_mode_above_bound_is_push(self):
        assert initial_mode(50, 100, 10) == "push"

    def test_initial_mode_unlimited_memory_is_push(self):
        assert initial_mode(None, 100, 10) == "push"

    def test_negative_bound_forces_push(self):
        # f > |E|/2: b-pull degenerate, always start in push.
        assert initial_mode(1, 100, 90) == "push"


class TestHybridController:
    def make_rt(self, buffer=10):
        # dense graph + one block per worker keeps fragments well below
        # |E|/2, so Theorem 2's bound B_perp is comfortably positive and
        # the initial mode depends only on the buffer under test.
        g = random_graph(80, 8, seed=2)
        rt = Runtime(g, PageRank(), JobConfig(
            mode="hybrid", num_workers=2, vblocks_per_worker=1,
            message_buffer_per_worker=buffer))
        rt.setup()
        return rt

    def test_initial_plan_covers_interval(self):
        rt = self.make_rt()
        ctrl = HybridController(rt, interval=2)
        first = ctrl.mode_for(1)
        assert ctrl.mode_for(2) == first

    def test_small_buffer_starts_bpull(self):
        rt = self.make_rt(buffer=1)
        ctrl = HybridController(rt)
        assert ctrl.mode_for(1) == "bpull"

    def test_huge_buffer_starts_push(self):
        rt = self.make_rt(buffer=10**9)
        ctrl = HybridController(rt)
        assert ctrl.mode_for(1) == "push"

    def test_unplanned_superstep_carries_last_mode(self):
        rt = self.make_rt()
        ctrl = HybridController(rt)
        m1 = ctrl.mode_for(1)
        m2 = ctrl.mode_for(2)
        # nothing observed: superstep 3 falls back to the last mode
        assert ctrl.mode_for(3) == m2 == m1

    def test_observe_plans_two_ahead(self):
        rt = self.make_rt(buffer=1)
        ctrl = HybridController(rt, interval=2)
        ctrl.mode_for(1)
        from repro.core.metrics import SuperstepMetrics

        step = SuperstepMetrics(superstep=1, mode="bpull")
        step.raw_messages = 1000
        step.pull_requests = 4
        step.mco = 900
        ctrl.observe(rt, step)
        assert 3 in ctrl._plan

    def test_switch_disabled_never_replans(self):
        g = random_graph(80, 4, seed=2)
        result = run_job(g, SSSP(source=0), JobConfig(
            mode="hybrid", num_workers=2, message_buffer_per_worker=1,
            switching_enabled=False))
        assert set(result.metrics.mode_trace) <= {"bpull", "push"}
        assert len(set(result.metrics.mode_trace)) == 1

    def test_push_to_bpull_switch_superstep_skips_observation(self):
        rt = self.make_rt()
        ctrl = HybridController(rt)
        from repro.core.metrics import SuperstepMetrics

        step = SuperstepMetrics(superstep=4, mode="push->bpull")
        ctrl.observe(rt, step)
        assert ctrl.q_trace[-1] == (4, None)
        assert 6 not in ctrl._plan

    def test_rco_updates_from_bpull_observation(self):
        rt = self.make_rt()
        ctrl = HybridController(rt)
        from repro.core.metrics import SuperstepMetrics

        step = SuperstepMetrics(superstep=2, mode="bpull")
        step.raw_messages = 100
        step.mco = 40
        step.pull_requests = 4
        ctrl.observe(rt, step)
        assert ctrl._rco == pytest.approx(0.4)

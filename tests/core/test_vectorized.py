"""Vectorized executor: fallback matrix, CSR view, array message store.

The byte-identity of the executor itself is covered by
``test_hotpath_equivalence.py``; this module tests the scaffolding
around it — when the runtime may and may not go dense, that the dense
prerequisites (CSR view, flag views, array store) behave, and that the
NumPy-less interpreter degrades transparently.

Tests that *require* dense execution call ``pytest.importorskip`` so the
NumPy-less CI leg still runs the fallback half of this file.
"""

import pytest

from repro.algorithms.lpa import LPA
from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.core.config import JobConfig
from repro.core.engine import run_job
from repro.core.flags import FlagBitset
from repro.core.graph import Graph
from repro.core.modes import vectorized
from repro.core.runtime import Runtime
from repro.datasets.generators import random_graph
from repro.storage.disk import SimulatedDisk
from repro.storage.messages import SpillingMessageStore
from repro.storage.records import DEFAULT_SIZES


def _runtime(program, **cfg_kwargs):
    cfg_kwargs.setdefault("executor", "vectorized")
    cfg_kwargs.setdefault("num_workers", 2)
    graph = random_graph(40, 3, seed=1)
    return Runtime(graph, program, JobConfig(**cfg_kwargs))


class TestFallbackMatrix:
    def test_no_numpy_falls_back(self, monkeypatch):
        monkeypatch.setattr(vectorized, "np", None)
        rt = _runtime(PageRank())
        assert rt.active_executor == "batched"
        assert "NumPy" in rt.executor_fallback

    def test_no_numpy_job_still_runs(self, monkeypatch):
        monkeypatch.setattr(vectorized, "np", None)
        g = random_graph(60, 4, seed=3)
        kwargs = dict(mode="push", num_workers=2, max_supersteps=4)
        fell_back = run_job(
            g, PageRank(),
            JobConfig(executor="vectorized", **kwargs),
        )
        batched = run_job(
            g, PageRank(), JobConfig(executor="batched", **kwargs)
        )
        assert fell_back.values == batched.values

    @pytest.mark.parametrize(
        "kwargs, needle",
        [
            (dict(mode="pushm"), "mode"),
            (dict(asynchronous=True, mode="push"), "asynchronous"),
            (dict(sender_combine=True), "sender_combine"),
            (dict(receiver_combine=True), "receiver_combine"),
            (dict(mode="bpull", bpull_combine=False), "b-pull"),
        ],
    )
    def test_scalar_only_features_fall_back(self, kwargs, needle):
        # without NumPy every reason collapses to "NumPy is not
        # installed", so the per-feature reasons need it present.
        pytest.importorskip("numpy")
        rt = _runtime(SSSP(source=0), **kwargs)
        assert rt.active_executor == "batched"
        assert needle in rt.executor_fallback

    def test_program_without_rules_falls_back(self):
        pytest.importorskip("numpy")
        rt = _runtime(LPA())
        assert rt.active_executor == "batched"
        assert "lpa" in rt.executor_fallback

    def test_vectorizable_job_stays_dense(self):
        pytest.importorskip("numpy")
        for program in (PageRank(), SSSP(source=0)):
            rt = _runtime(program, mode="hybrid")
            assert rt.active_executor == "vectorized"
            assert rt.executor_fallback is None

    def test_batched_request_is_untouched(self):
        rt = _runtime(PageRank(), executor="batched")
        assert rt.active_executor == "batched"
        assert rt.executor_fallback is None


class TestCSRView:
    def _graph(self):
        g = Graph(5)
        g.add_edge(0, 1, 2.0)
        g.add_edge(0, 3, 1.0)
        g.add_edge(2, 4, 5.0)
        g.add_edge(4, 0, 0.5)
        return g

    def test_csr_matches_adjacency(self):
        np = pytest.importorskip("numpy")
        g = self._graph()
        csr = g.csr()
        assert csr.indptr.tolist() == [0, 2, 2, 3, 3, 4]
        for v in range(5):
            lo, hi = csr.indptr[v], csr.indptr[v + 1]
            assert (
                list(zip(csr.indices[lo:hi].tolist(),
                         csr.weights[lo:hi].tolist()))
                == list(g.out_edges(v))
            )
        assert csr.out_degrees.tolist() == [2, 0, 1, 0, 1]
        assert csr.indices.dtype == np.int64

    def test_csr_cached_and_invalidated_by_add_edge(self):
        pytest.importorskip("numpy")
        g = self._graph()
        first = g.csr()
        assert g.csr() is first
        g.add_edge(1, 2, 1.0)
        second = g.csr()
        assert second is not first
        assert second.out_degrees.tolist() == [2, 1, 1, 0, 1]

    def test_row_span_and_gather_rows_agree(self):
        np = pytest.importorskip("numpy")
        g = random_graph(30, 4, seed=5)
        csr = g.csr()
        indptr_a, dst_a, w_a = csr.row_span(10, 20)
        rows = np.arange(10, 20, dtype=np.int64)
        indptr_b, dst_b, w_b = csr.gather_rows(rows)
        assert indptr_a.tolist() == indptr_b.tolist()
        assert dst_a.tolist() == dst_b.tolist()
        assert w_a.tolist() == w_b.tolist()


class TestFlagNumpyView:
    def test_view_is_writable_and_aliases_data(self):
        np = pytest.importorskip("numpy")
        flags = FlagBitset(10)
        view = flags.numpy_view(np)
        view[[2, 7]] = 1
        flags.add_to_count(2)
        assert flags.true_count == 2
        assert flags.to_list() == [
            v in (2, 7) for v in range(10)
        ]


class TestVectorizedMessageStore:
    """The array store must mirror SpillingMessageStore's cost model."""

    def _feed(self, chunks, capacity):
        np = pytest.importorskip("numpy")
        scalar = SpillingMessageStore(
            capacity, DEFAULT_SIZES, SimulatedDisk(), combine=None
        )
        dense = vectorized.VectorizedMessageStore(
            capacity, DEFAULT_SIZES, SimulatedDisk()
        )
        for dsts, payloads in chunks:
            scalar.deposit_many(list(zip(dsts, payloads)))
            dense.deposit_arrays(
                np.asarray(dsts, dtype=np.int64),
                np.asarray(payloads, dtype=np.float64),
            )
        return scalar, dense

    @pytest.mark.parametrize("capacity", [None, 3, 5, 100])
    def test_charges_and_accounting_match(self, capacity):
        chunks = [
            ([0, 2, 2], [1.0, 2.0, 3.0]),
            ([1, 0], [4.0, 5.0]),
            ([2], [6.0]),
        ]
        scalar, dense = self._feed(chunks, capacity)
        assert dense.pending_count == scalar.pending_count
        assert dense.memory_bytes == scalar.memory_bytes
        assert dense.spilled_pending == scalar.spilled_pending
        assert dense.total_spilled == scalar.total_spilled
        assert dense._disk.counters == scalar._disk.counters

    @pytest.mark.parametrize("capacity", [None, 3, 100])
    def test_load_matches_scalar_store(self, capacity):
        chunks = [
            ([0, 2, 2], [1.0, 2.0, 3.0]),
            ([1, 0], [4.0, 5.0]),
        ]
        scalar, dense = self._feed(chunks, capacity)
        expected = scalar.load()
        actual = dense.load()
        assert actual.messages == expected.messages
        assert actual.spilled_read == expected.spilled_read
        assert actual.spilled_count == expected.spilled_count
        assert dense._disk.counters == scalar._disk.counters
        assert dense.pending_count == 0

    def test_load_arrays_preserves_deposit_order(self):
        np = pytest.importorskip("numpy")
        dense = vectorized.VectorizedMessageStore(
            2, DEFAULT_SIZES, SimulatedDisk()
        )
        dense.deposit_arrays(
            np.array([3, 1]), np.array([1.0, 2.0])
        )
        dense.deposit_arrays(np.array([3]), np.array([3.0]))
        dsts, payloads, spilled_read, spilled_count = (
            dense.load_arrays()
        )
        assert dsts.tolist() == [3, 1, 3]
        assert payloads.tolist() == [1.0, 2.0, 3.0]
        assert spilled_count == 1
        assert spilled_read == DEFAULT_SIZES.messages(1)


class TestRecoveryInvalidation:
    def test_reset_for_restart_clears_scratch(self):
        rt = _runtime(PageRank(), executor="batched")
        rt.setup()
        rt.scratch["vectorized"] = object()
        rt.scratch["inbox"] = {}
        rt.reset_for_restart()
        assert rt.scratch == {}

    def test_lazy_push_fanout_builds_once(self):
        rt = _runtime(PageRank(), executor="batched", mode="push")
        assert rt._push_fanout is None
        assert not rt._push_fanout_built
        fanout = rt.push_fanout
        assert fanout is not None
        assert len(fanout) == rt.graph.num_vertices
        assert rt.push_fanout is fanout

    def test_push_fanout_none_when_not_applicable(self):
        rt = _runtime(SSSP(source=0), executor="batched", mode="bpull")
        assert rt.push_fanout is None

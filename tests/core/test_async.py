"""Asynchronous iteration (extension; the paper runs synchronously)."""

import pytest

from repro.algorithms.lpa import LPA
from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.algorithms.wcc import WCC
from repro.core.config import JobConfig
from repro.core.engine import run_job
from repro.core.graph import Graph
from repro.datasets.generators import random_graph, ring_graph


def cfg(asynchronous, **kwargs):
    kwargs.setdefault("num_workers", 3)
    kwargs.setdefault("message_buffer_per_worker", 20)
    return JobConfig(mode="push", asynchronous=asynchronous, **kwargs)


class TestAsyncValidation:
    def test_requires_push_family(self):
        with pytest.raises(ValueError, match="push"):
            JobConfig(mode="bpull", asynchronous=True)
        JobConfig(mode="pushm", asynchronous=True)  # accepted

    def test_rejects_non_monotonic_programs(self):
        g = random_graph(30, 3, seed=1)
        with pytest.raises(ValueError, match="async_safe"):
            run_job(g, PageRank(supersteps=3), cfg(True))
        with pytest.raises(ValueError, match="async_safe"):
            run_job(g, LPA(supersteps=3), cfg(True))


class TestAsyncConvergence:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_sssp_same_fixed_point(self, seed):
        g = random_graph(100, 5, seed=seed)
        sync = run_job(g, SSSP(source=0), cfg(False))
        async_run = run_job(g, SSSP(source=0), cfg(True))
        assert async_run.values == pytest.approx(sync.values)

    def test_wcc_same_fixed_point(self):
        g = random_graph(100, 2, seed=4)
        sync = run_job(g, WCC(), cfg(False))
        async_run = run_job(g, WCC(), cfg(True))
        assert async_run.values == sync.values

    def test_async_converges_in_fewer_supersteps_on_a_chain(self):
        # a forward chain entirely inside worker order: async propagates
        # the whole chain within each worker's pass.
        g = Graph(30, [(i, i + 1) for i in range(29)])
        sync = run_job(g, SSSP(source=0), cfg(False))
        async_run = run_job(g, SSSP(source=0), cfg(True))
        assert async_run.values == sync.values
        assert (async_run.metrics.num_supersteps
                < sync.metrics.num_supersteps)

    def test_async_never_needs_more_supersteps_on_ring(self):
        g = ring_graph(24)
        sync = run_job(g, SSSP(source=0), cfg(False))
        async_run = run_job(g, SSSP(source=0), cfg(True))
        assert async_run.values == sync.values
        assert (async_run.metrics.num_supersteps
                <= sync.metrics.num_supersteps)

    def test_async_moves_fewer_messages(self):
        # same-superstep consumption prunes stale improvements.
        g = random_graph(200, 6, seed=5)
        sync = run_job(g, SSSP(source=0), cfg(False))
        async_run = run_job(g, SSSP(source=0), cfg(True))
        assert (async_run.metrics.total_messages
                <= sync.metrics.total_messages)

"""Round-trip guard for :meth:`JobMetrics.to_dict` / ``to_json``.

Before the fix, ``to_dict()`` silently dropped several per-superstep
counters (``io_edges_push``, ``io_edges_bpull``, ``io_fragments``,
``io_vrr``, ``mco``, ``pull_requests``, ``net_transfer_units``,
``cpu_seconds``, ``blocking_seconds``), so any analysis pipeline fed
from the serialized form lost them.
"""

import json

from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.core.config import FaultPlan, JobConfig
from repro.core.engine import run_job
from repro.datasets.generators import random_graph

PER_SUPERSTEP_FIELDS = [
    "io_vertex",
    "io_edges_push",
    "io_edges_bpull",
    "io_fragments",
    "io_vrr",
    "io_message_spill",
    "io_message_read",
    "net_transfer_units",
    "mco",
    "pull_requests",
    "net_packages",
    "lru_misses",
    "edges_scanned",
    "cpu_seconds",
    "blocking_seconds",
    "worker_seconds",
]


class TestMetricsRoundTrip:
    def _run(self, mode="hybrid", **kwargs):
        g = random_graph(120, 5, seed=3)
        cfg = JobConfig(mode=mode, num_workers=3,
                        message_buffer_per_worker=30, **kwargs)
        return run_job(g, PageRank(supersteps=5), cfg)

    def test_json_round_trip_is_exact(self):
        metrics = self._run().metrics
        assert json.loads(metrics.to_json()) == metrics.to_dict()

    def test_per_superstep_counters_survive_serialization(self):
        d = self._run().metrics.to_dict()
        assert d["supersteps"], "expected at least one superstep record"
        for record in d["supersteps"]:
            for field in PER_SUPERSTEP_FIELDS:
                assert field in record, f"to_dict() dropped {field!r}"

    def test_mode_specific_counters_are_nonzero_where_expected(self):
        push = self._run(mode="push").metrics.to_dict()
        bpull = self._run(mode="bpull").metrics.to_dict()
        assert sum(s["io_edges_push"] for s in push["supersteps"]) > 0
        assert sum(s["io_edges_bpull"] for s in bpull["supersteps"]) > 0
        assert sum(s["io_fragments"] for s in bpull["supersteps"]) > 0
        assert sum(s["pull_requests"] for s in bpull["supersteps"]) > 0

    def test_traffic_timeline_serialized(self):
        metrics = self._run().metrics
        d = metrics.to_dict()
        assert d["traffic_timeline"] == [
            list(t) for t in metrics.traffic_timeline
        ]
        assert json.loads(metrics.to_json())["traffic_timeline"] == \
            d["traffic_timeline"]

    def test_checkpoints_serialized_with_fault(self):
        g = random_graph(80, 5, seed=13)
        cfg = JobConfig(mode="push", num_workers=3,
                        message_buffer_per_worker=20,
                        checkpoint_interval=2,
                        fault=FaultPlan(worker=0, superstep=4))
        metrics = run_job(g, SSSP(source=0), cfg).metrics
        d = metrics.to_dict()
        assert d["checkpoints"], "expected a checkpoint record"
        assert json.loads(metrics.to_json()) == d

"""Unit tests for the FlagBitset backing the responding flags."""

import pytest

from repro.core.flags import FlagBitset


class TestFlagBitset:
    def test_starts_all_false(self):
        flags = FlagBitset(5)
        assert list(flags) == [False] * 5
        assert flags.true_count == 0

    def test_setitem_and_getitem_return_real_bools(self):
        flags = FlagBitset(3)
        flags[1] = True
        assert flags[1] is True
        assert flags[0] is False

    def test_count_maintained(self):
        flags = FlagBitset(6)
        flags[0] = True
        flags[3] = True
        assert flags.true_count == 2
        flags[3] = False
        assert flags.true_count == 1
        # idempotent writes do not corrupt the count
        flags[0] = True
        flags[3] = False
        assert flags.true_count == 1

    def test_truthy_values_accepted(self):
        flags = FlagBitset(3)
        flags[0] = 1
        flags[1] = "yes"
        assert flags.true_count == 2

    def test_clear_resets_in_place(self):
        flags = FlagBitset(4)
        flags[0] = flags[2] = True
        data_before = flags.data
        flags.clear()
        assert flags.true_count == 0
        assert list(flags) == [False] * 4
        assert flags.data is data_before  # allocation-free

    def test_from_iterable(self):
        flags = FlagBitset.from_iterable([True, False, True, True])
        assert flags.true_count == 3
        assert flags[0] is True and flags[1] is False

    def test_to_list(self):
        flags = FlagBitset.from_iterable([False, True])
        assert flags.to_list() == [False, True]

    def test_len_and_iter(self):
        flags = FlagBitset(4)
        assert len(flags) == 4
        flags[2] = True
        assert [b for b in flags] == [False, False, True, False]

    def test_raw_data_writes_with_add_to_count(self):
        # the executor hot-loop contract: write bytes directly, then
        # reconcile the count once per batch.
        flags = FlagBitset(5)
        raw = flags.data
        raw[1] = 1
        raw[4] = 1
        flags.add_to_count(2)
        assert flags.true_count == 2
        assert flags[1] is True and flags[4] is True

    def test_index_error_propagates(self):
        flags = FlagBitset(2)
        with pytest.raises(IndexError):
            flags[2] = True
        with pytest.raises(IndexError):
            _ = flags[5]

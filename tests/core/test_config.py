"""Unit tests for JobConfig and the cluster profiles."""

import pytest

from repro.core.config import (
    AMAZON_CLUSTER,
    CpuModel,
    JobConfig,
    LOCAL_CLUSTER,
    MODES,
)


class TestJobConfig:
    def test_defaults(self):
        cfg = JobConfig()
        assert cfg.mode == "hybrid"
        assert cfg.num_workers == 5
        assert cfg.graph_on_disk is True
        assert cfg.cluster is LOCAL_CLUSTER

    def test_all_modes_accepted(self):
        for mode in MODES:
            assert JobConfig(mode=mode).mode == mode

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            JobConfig(mode="teleport")

    def test_bad_workers_rejected(self):
        with pytest.raises(ValueError):
            JobConfig(num_workers=0)

    def test_bad_partition_rejected(self):
        with pytest.raises(ValueError):
            JobConfig(partition="vertex-cut")

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            JobConfig(switching_interval=0)

    def test_total_message_buffer(self):
        cfg = JobConfig(num_workers=4, message_buffer_per_worker=100)
        assert cfg.total_message_buffer == 400
        assert JobConfig(message_buffer_per_worker=None).total_message_buffer is None

    def test_memory_sufficient(self):
        assert JobConfig(
            message_buffer_per_worker=None, graph_on_disk=False
        ).memory_sufficient
        assert not JobConfig(message_buffer_per_worker=10).memory_sufficient
        assert not JobConfig(graph_on_disk=True).memory_sufficient

    def test_lru_capacity_falls_back_to_buffer(self):
        cfg = JobConfig(message_buffer_per_worker=123)
        assert cfg.lru_capacity() == 123
        cfg = cfg.but(lru_capacity_vertices=7)
        assert cfg.lru_capacity() == 7

    def test_but_replaces_fields(self):
        cfg = JobConfig(mode="push")
        other = cfg.but(mode="bpull", num_workers=2)
        assert other.mode == "bpull"
        assert other.num_workers == 2
        assert cfg.mode == "push"  # original untouched


class TestCpuModel:
    def test_seconds_linear(self):
        cpu = CpuModel(update=1.0, per_message=2.0, per_edge=4.0,
                       sortmerge_per_spilled_message=8.0, per_lru_miss=16.0,
                       speed=1.0)
        assert cpu.seconds(updates=1, messages=1, edges=1, spilled=1,
                           lru_misses=1) == pytest.approx(31.0)

    def test_speed_scales_down(self):
        fast = CpuModel(update=1.0, speed=2.0)
        assert fast.seconds(updates=4) == pytest.approx(2.0)

    def test_amazon_cpu_slower(self):
        assert AMAZON_CLUSTER.cpu.speed < LOCAL_CLUSTER.cpu.speed

    def test_with_cpu_override(self):
        cluster = LOCAL_CLUSTER.with_cpu(speed=0.25)
        assert cluster.cpu.speed == 0.25
        assert LOCAL_CLUSTER.cpu.speed == 1.0

"""Unit tests for the graph model and partitioners."""

import pytest

from repro.core.graph import Graph, hash_partition, range_partition


class TestGraph:
    def test_empty_graph(self):
        g = Graph(0)
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_negative_vertices_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1)

    def test_add_edge_and_degrees(self):
        g = Graph(3, [(0, 1), (0, 2), (1, 2)])
        assert g.num_edges == 3
        assert g.out_degree(0) == 2
        assert g.out_degree(2) == 0

    def test_edge_out_of_range_rejected(self):
        g = Graph(2)
        with pytest.raises(ValueError):
            g.add_edge(0, 5)
        with pytest.raises(ValueError):
            g.add_edge(-1, 0)

    def test_default_weight_is_one(self):
        g = Graph(2, [(0, 1)])
        assert g.out_edges(0) == [(1, 1.0)]

    def test_explicit_weights(self):
        g = Graph(2, [(0, 1, 2.5)])
        assert g.out_edges(0) == [(1, 2.5)]

    def test_edges_iterator(self):
        edges = [(0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0)]
        g = Graph(3, edges)
        assert sorted(g.edges()) == sorted(edges)

    def test_in_degrees(self):
        g = Graph(3, [(0, 1), (2, 1), (1, 0)])
        assert g.in_degrees() == [1, 2, 0]

    def test_reverse_adjacency(self):
        g = Graph(3, [(0, 1, 5.0), (2, 1, 7.0)])
        rev = g.reverse_adjacency()
        assert rev[1] == [(0, 5.0), (2, 7.0)]
        assert rev[0] == []

    def test_average_degree(self):
        g = Graph(4, [(0, 1), (1, 2)])
        assert g.average_degree == pytest.approx(0.5)
        assert Graph(0).average_degree == 0.0


class TestRangePartition:
    def test_covers_all_vertices_disjointly(self):
        p = range_partition(10, 3)
        seen = []
        for w in range(3):
            seen.extend(p.vertices_of(w))
        assert sorted(seen) == list(range(10))

    def test_balanced_sizes(self):
        p = range_partition(10, 3)
        sizes = [p.size_of(w) for w in range(3)]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 10

    def test_owner_consistent_with_ranges(self):
        p = range_partition(17, 4)
        for w in range(4):
            for v in p.vertices_of(w):
                assert p.owner(v) == w

    def test_ranges_contiguous(self):
        p = range_partition(10, 3)
        for w in range(3):
            vs = list(p.vertices_of(w))
            assert vs == list(range(vs[0], vs[-1] + 1))

    def test_single_worker(self):
        p = range_partition(5, 1)
        assert list(p.vertices_of(0)) == list(range(5))

    def test_more_workers_than_vertices(self):
        p = range_partition(2, 5)
        total = sum(p.size_of(w) for w in range(5))
        assert total == 2

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            range_partition(10, 0)


class TestHashPartition:
    def test_owner_is_modulo(self):
        p = hash_partition(10, 3)
        for v in range(10):
            assert p.owner(v) == v % 3

    def test_vertices_of_matches_owner(self):
        p = hash_partition(11, 4)
        for w in range(4):
            for v in p.vertices_of(w):
                assert p.owner(v) == w

    def test_covers_all_vertices(self):
        p = hash_partition(11, 4)
        seen = sorted(v for w in range(4) for v in p.vertices_of(w))
        assert seen == list(range(11))

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            hash_partition(10, 0)

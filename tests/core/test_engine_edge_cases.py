"""Edge cases: self-loops, multi-edges, tiny graphs, estimator bounds."""

import math

import pytest

from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.core.config import JobConfig
from repro.core.engine import run_job
from repro.core.graph import Graph
from repro.datasets.generators import random_graph

MODES = ("push", "bpull", "hybrid", "pull")


class TestIrregularGraphs:
    def loop_graph(self):
        g = Graph(4, name="loops")
        g.add_edge(0, 0)          # self-loop
        g.add_edge(0, 1)
        g.add_edge(0, 1)          # parallel edge
        g.add_edge(1, 2, 5.0)
        g.add_edge(1, 2, 1.0)     # parallel with different weight
        g.add_edge(2, 3)
        return g

    @pytest.mark.parametrize("mode", MODES)
    def test_self_loops_and_multi_edges(self, mode):
        g = self.loop_graph()
        reference = run_job(g, SSSP(source=0),
                            JobConfig(mode="push", num_workers=2,
                                      message_buffer_per_worker=2))
        result = run_job(g, SSSP(source=0),
                         JobConfig(mode=mode, num_workers=2,
                                   message_buffer_per_worker=2))
        assert result.values == reference.values
        # the cheaper parallel edge wins
        assert reference.values[2] == pytest.approx(2.0)

    @pytest.mark.parametrize("mode", MODES)
    def test_single_vertex_graph(self, mode):
        g = Graph(1)
        result = run_job(g, PageRank(supersteps=3),
                         JobConfig(mode=mode, num_workers=1))
        # no in-edges: the rank settles at the teleport share (1-d)/N
        assert result.values == [pytest.approx(0.15)]

    @pytest.mark.parametrize("mode", ("push", "bpull", "hybrid"))
    def test_edgeless_graph(self, mode):
        g = Graph(5)
        result = run_job(g, SSSP(source=2),
                         JobConfig(mode=mode, num_workers=2))
        assert result.values[2] == 0.0
        assert all(
            math.isinf(v) for i, v in enumerate(result.values) if i != 2
        )

    def test_more_workers_than_vertices(self):
        g = Graph(3, [(0, 1), (1, 2)])
        result = run_job(g, SSSP(source=0),
                         JobConfig(mode="hybrid", num_workers=8,
                                   message_buffer_per_worker=2))
        assert result.values == [0.0, 1.0, 2.0]


class TestEstimatorBounds:
    def test_global_spill_estimate_lower_bounds_measured(self):
        """The switcher's IO(M_disk) estimate uses the cluster-total
        buffer; per-worker buffers make actual spill at least that."""
        g = random_graph(150, 6, seed=111)
        buffer = 30
        result = run_job(g, PageRank(supersteps=4),
                         JobConfig(mode="push", num_workers=3,
                                   message_buffer_per_worker=buffer))
        for step in result.metrics.supersteps:
            estimate = max(0, step.raw_messages - 3 * buffer)
            assert step.spilled_messages >= estimate

    def test_switch_supersteps_have_both_cost_kinds(self):
        """A bpull->push switch superstep pulls *and* pushes: both edge
        cost channels are populated (Fig. 14's resource bump)."""
        from repro.datasets.generators import social_graph

        g = social_graph(300, 8, seed=62, tail_fraction=0.5,
                         tail_chain=40)
        result = run_job(g, SSSP(source=0),
                         JobConfig(mode="hybrid", num_workers=3,
                                   vblocks_per_worker=6,
                                   message_buffer_per_worker=5))
        switch_steps = [
            s for s in result.metrics.supersteps
            if s.mode == "bpull->push"
        ]
        assert switch_steps, "expected a bpull->push switch"
        for step in switch_steps:
            assert step.io_edges_bpull > 0  # pulled this superstep
            assert step.io_edges_push > 0   # and pushed new messages

"""Equivalence guard: all executors must agree byte-for-byte.

The batched hot path (aggregated ``SimulatedDisk.charge`` calls, bitset
flags, per-destination-worker staging, fan-out deposits) and the
NumPy-vectorized executor (CSR kernels, dense folds) must both produce
**byte-identical** modeled metrics to the pre-optimization executor in
``repro.core.modes.reference``.  These tests run the same jobs through
all three and compare the full ``JobMetrics.to_dict()`` dumps.

The vectorized executor transparently falls back to batched when NumPy
is unavailable or the job shape is scalar-only (LPA, pushM, combining
variants, ...), so every cell below is valid on a NumPy-less
interpreter too — there it degenerates to the two-executor check.
"""

import json

import pytest

from repro.algorithms.lpa import LPA
from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.algorithms.wcc import WCC
from repro.core.config import JobConfig
from repro.core.engine import run_job
from repro.datasets.generators import random_graph
from repro.storage.disk import SimulatedDisk
from repro.storage.messages import SpillingMessageStore
from repro.storage.records import DEFAULT_SIZES

EXECUTORS = ("batched", "reference", "vectorized")


def run_all(graph, program_factory, **cfg_kwargs):
    results = []
    for executor in EXECUTORS:
        cfg = JobConfig(executor=executor, **cfg_kwargs)
        results.append(run_job(graph, program_factory(), cfg))
    return results


def assert_identical(results):
    # the fallback record names the *requested* tier, which legitimately
    # differs across the compared runs; everything else must match.
    reference = results[0]
    ref_dict = reference.metrics.to_dict()
    ref_dict.pop("fallback", None)
    expected = json.dumps(ref_dict, sort_keys=True)
    for other in results[1:]:
        other_dict = other.metrics.to_dict()
        other_dict.pop("fallback", None)
        actual = json.dumps(other_dict, sort_keys=True)
        assert actual == expected
        assert other.values == reference.values


class TestExecutorEquivalence:
    @pytest.mark.parametrize("mode", ["push", "bpull", "hybrid"])
    @pytest.mark.parametrize(
        "program_factory",
        [PageRank, lambda: SSSP(source=0), LPA, WCC],
        ids=["pagerank", "sssp", "lpa", "wcc"],
    )
    def test_metrics_identical_disk_resident(self, mode, program_factory):
        g = random_graph(300, 6, seed=42)
        assert_identical(run_all(
            g, program_factory, mode=mode, num_workers=4,
            message_buffer_per_worker=100, max_supersteps=6,
        ))

    def test_metrics_identical_hybrid_switch_supersteps(self):
        # Run to convergence so hybrid switches both ways; the executors
        # must agree on the mode trace (structurally identical runs)
        # including the two mixed-mechanism switch supersteps.
        g = random_graph(300, 6, seed=42)
        results = run_all(
            g, lambda: SSSP(source=0), mode="hybrid", num_workers=4,
            message_buffer_per_worker=100,
        )
        assert_identical(results)
        trace = [s.mode for s in results[0].metrics.supersteps]
        assert "push->bpull" in trace
        assert "bpull->push" in trace

    def test_metrics_identical_memory_sufficient(self):
        g = random_graph(200, 5, seed=9)
        assert_identical(run_all(
            g, PageRank, mode="push", num_workers=3,
            graph_on_disk=False, max_supersteps=5,
        ))

    def test_metrics_identical_pushm(self):
        g = random_graph(200, 5, seed=9)
        assert_identical(run_all(
            g, PageRank, mode="pushm", num_workers=3,
            message_buffer_per_worker=60, max_supersteps=5,
        ))

    def test_metrics_identical_with_receiver_combine(self):
        g = random_graph(200, 5, seed=17)
        assert_identical(run_all(
            g, PageRank, mode="push", num_workers=3,
            message_buffer_per_worker=50, receiver_combine=True,
            max_supersteps=5,
        ))

    def test_metrics_identical_with_sender_combine(self):
        g = random_graph(200, 5, seed=17)
        assert_identical(run_all(
            g, PageRank, mode="push", num_workers=3,
            message_buffer_per_worker=50, sender_combine=True,
            max_supersteps=5,
        ))

    def test_metrics_identical_hash_partition(self):
        g = random_graph(250, 5, seed=23)
        assert_identical(run_all(
            g, PageRank, mode="hybrid", num_workers=4,
            partition="hash", message_buffer_per_worker=80,
            max_supersteps=6,
        ))

    def test_metrics_identical_with_tolerance_aggregator(self):
        g = random_graph(250, 5, seed=23)
        assert_identical(run_all(
            g, lambda: PageRank(tolerance=1e-4), mode="hybrid",
            num_workers=4, message_buffer_per_worker=100,
            max_supersteps=20,
        ))

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            JobConfig(executor="turbo")


class TestBulkChargeApi:
    def test_charge_equals_read_write_sequence(self):
        a = SimulatedDisk()
        b = SimulatedDisk()
        for _ in range(10):
            a.read(8, sequential=True)
            a.write(8, sequential=True)
            a.read(3, sequential=False)
            a.write(5, sequential=False)
        b.charge(seq_read=80, seq_write=80, random_read=30,
                 random_write=50)
        assert a.counters == b.counters

    def test_charge_disabled_disk_is_noop(self):
        disk = SimulatedDisk(enabled=False)
        disk.charge(seq_read=100, random_write=100)
        assert disk.counters.total == 0

    def test_charge_ignores_nonpositive(self):
        disk = SimulatedDisk()
        disk.charge(seq_read=0, random_read=-5)
        assert disk.counters.total == 0


class TestBatchedDeposits:
    def _stores(self, capacity, combine=None):
        return (
            SpillingMessageStore(capacity, DEFAULT_SIZES, SimulatedDisk(),
                                 combine=combine),
            SpillingMessageStore(capacity, DEFAULT_SIZES, SimulatedDisk(),
                                 combine=combine),
        )

    def _assert_same(self, one, many):
        assert one._disk.counters == many._disk.counters
        assert one.total_spilled == many.total_spilled
        assert one.pending_count == many.pending_count
        assert one.load().messages == many.load().messages

    def test_deposit_many_matches_per_message(self):
        pairs = [(i % 7, float(i)) for i in range(40)]
        one, many = self._stores(capacity=15)
        for dst, value in pairs:
            one.deposit(dst, value)
        many.deposit_many(list(pairs))
        self._assert_same(one, many)

    def test_deposit_many_with_combiner(self):
        pairs = [(i % 5, float(i)) for i in range(30)]
        one, many = self._stores(capacity=8, combine=lambda a, b: a + b)
        for dst, value in pairs:
            one.deposit(dst, value)
        many.deposit_many(list(pairs))
        self._assert_same(one, many)

    def test_deposit_fanout_matches_per_message(self):
        groups = [((0, 3, 6), 1.5), ((1, 4), 2.5), ((2,), 3.5),
                  ((0, 1, 2, 3, 4), 4.5)]
        count = sum(len(dsts) for dsts, _v in groups)
        one, fan = self._stores(capacity=6)  # boundary straddles a group
        for dsts, value in groups:
            for dst in dsts:
                one.deposit(dst, value)
        fan.deposit_fanout(list(groups), count)
        self._assert_same(one, fan)

    def test_deposit_fanout_unlimited_capacity(self):
        groups = [((0, 1), 1.0), ((2,), 2.0)]
        one, fan = self._stores(capacity=None)
        for dsts, value in groups:
            for dst in dsts:
                one.deposit(dst, value)
        fan.deposit_fanout(list(groups), 3)
        self._assert_same(one, fan)

"""Equivalence guard: batched executor vs per-vertex reference executor.

The batched hot path (aggregated ``SimulatedDisk.charge`` calls, bitset
flags, per-destination-worker staging, fan-out deposits) must produce
**byte-identical** modeled metrics to the pre-optimization executor in
``repro.core.modes.reference``.  These tests run the same jobs through
both and compare the full ``JobMetrics.to_dict()`` dumps.
"""

import json

import pytest

from repro.algorithms.lpa import LPA
from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.core.config import JobConfig
from repro.core.engine import run_job
from repro.datasets.generators import random_graph
from repro.storage.disk import SimulatedDisk
from repro.storage.messages import SpillingMessageStore
from repro.storage.records import DEFAULT_SIZES


def run_both(graph, program_factory, **cfg_kwargs):
    results = {}
    for executor in ("batched", "reference"):
        cfg = JobConfig(executor=executor, **cfg_kwargs)
        results[executor] = run_job(graph, program_factory(), cfg)
    return results["batched"], results["reference"]


def assert_identical(batched, reference):
    a = batched.metrics.to_dict()
    b = reference.metrics.to_dict()
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
    assert batched.values == reference.values


class TestExecutorEquivalence:
    @pytest.mark.parametrize("mode", ["push", "bpull", "hybrid"])
    @pytest.mark.parametrize(
        "program_factory",
        [PageRank, lambda: SSSP(source=0), LPA],
        ids=["pagerank", "sssp", "lpa"],
    )
    def test_metrics_identical_disk_resident(self, mode, program_factory):
        g = random_graph(300, 6, seed=42)
        batched, reference = run_both(
            g, program_factory, mode=mode, num_workers=4,
            message_buffer_per_worker=100, max_supersteps=6,
        )
        assert_identical(batched, reference)

    def test_metrics_identical_memory_sufficient(self):
        g = random_graph(200, 5, seed=9)
        batched, reference = run_both(
            g, PageRank, mode="push", num_workers=3,
            graph_on_disk=False, max_supersteps=5,
        )
        assert_identical(batched, reference)

    def test_metrics_identical_pushm(self):
        g = random_graph(200, 5, seed=9)
        batched, reference = run_both(
            g, PageRank, mode="pushm", num_workers=3,
            message_buffer_per_worker=60, max_supersteps=5,
        )
        assert_identical(batched, reference)

    def test_metrics_identical_with_receiver_combine(self):
        g = random_graph(200, 5, seed=17)
        batched, reference = run_both(
            g, PageRank, mode="push", num_workers=3,
            message_buffer_per_worker=50, receiver_combine=True,
            max_supersteps=5,
        )
        assert_identical(batched, reference)

    def test_metrics_identical_with_sender_combine(self):
        g = random_graph(200, 5, seed=17)
        batched, reference = run_both(
            g, PageRank, mode="push", num_workers=3,
            message_buffer_per_worker=50, sender_combine=True,
            max_supersteps=5,
        )
        assert_identical(batched, reference)

    def test_metrics_identical_hash_partition(self):
        g = random_graph(250, 5, seed=23)
        batched, reference = run_both(
            g, PageRank, mode="hybrid", num_workers=4,
            partition="hash", message_buffer_per_worker=80,
            max_supersteps=6,
        )
        assert_identical(batched, reference)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            JobConfig(executor="turbo")


class TestBulkChargeApi:
    def test_charge_equals_read_write_sequence(self):
        a = SimulatedDisk()
        b = SimulatedDisk()
        for _ in range(10):
            a.read(8, sequential=True)
            a.write(8, sequential=True)
            a.read(3, sequential=False)
            a.write(5, sequential=False)
        b.charge(seq_read=80, seq_write=80, random_read=30,
                 random_write=50)
        assert a.counters == b.counters

    def test_charge_disabled_disk_is_noop(self):
        disk = SimulatedDisk(enabled=False)
        disk.charge(seq_read=100, random_write=100)
        assert disk.counters.total == 0

    def test_charge_ignores_nonpositive(self):
        disk = SimulatedDisk()
        disk.charge(seq_read=0, random_read=-5)
        assert disk.counters.total == 0


class TestBatchedDeposits:
    def _stores(self, capacity, combine=None):
        return (
            SpillingMessageStore(capacity, DEFAULT_SIZES, SimulatedDisk(),
                                 combine=combine),
            SpillingMessageStore(capacity, DEFAULT_SIZES, SimulatedDisk(),
                                 combine=combine),
        )

    def _assert_same(self, one, many):
        assert one._disk.counters == many._disk.counters
        assert one.total_spilled == many.total_spilled
        assert one.pending_count == many.pending_count
        assert one.load().messages == many.load().messages

    def test_deposit_many_matches_per_message(self):
        pairs = [(i % 7, float(i)) for i in range(40)]
        one, many = self._stores(capacity=15)
        for dst, value in pairs:
            one.deposit(dst, value)
        many.deposit_many(list(pairs))
        self._assert_same(one, many)

    def test_deposit_many_with_combiner(self):
        pairs = [(i % 5, float(i)) for i in range(30)]
        one, many = self._stores(capacity=8, combine=lambda a, b: a + b)
        for dst, value in pairs:
            one.deposit(dst, value)
        many.deposit_many(list(pairs))
        self._assert_same(one, many)

    def test_deposit_fanout_matches_per_message(self):
        groups = [((0, 3, 6), 1.5), ((1, 4), 2.5), ((2,), 3.5),
                  ((0, 1, 2, 3, 4), 4.5)]
        count = sum(len(dsts) for dsts, _v in groups)
        one, fan = self._stores(capacity=6)  # boundary straddles a group
        for dsts, value in groups:
            for dst in dsts:
                one.deposit(dst, value)
        fan.deposit_fanout(list(groups), count)
        self._assert_same(one, fan)

    def test_deposit_fanout_unlimited_capacity(self):
        groups = [((0, 1), 1.0), ((2,), 2.0)]
        one, fan = self._stores(capacity=None)
        for dsts, value in groups:
            for dst in dsts:
                one.deposit(dst, value)
        fan.deposit_fanout(list(groups), 3)
        self._assert_same(one, fan)

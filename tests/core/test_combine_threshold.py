"""Boundary cases for sender-side combining within the send threshold.

``_combine_within_threshold`` models pushM+com's limitation (Appendix E):
combining only reaches messages that share a destination *within one
send buffer*, so the threshold size decides how much combining actually
happens.  These tests pin the boundary behaviour: a threshold smaller
than one message record, a flush landing exactly at capacity, and
same-destination messages straddling a flush.
"""

from repro.core.modes.common import _combine_within_threshold

ADD = lambda a, b: a + b  # noqa: E731


def combine(messages, threshold_bytes, message_bytes=10):
    return _combine_within_threshold(
        list(messages), ADD, message_bytes, threshold_bytes
    )


class TestCombineWithinThreshold:
    def test_threshold_smaller_than_one_record(self):
        # capacity clamps to one message: every message flushes alone,
        # so no combining at all — but nothing is lost either.
        messages = [(3, 1.0), (3, 2.0), (1, 4.0), (3, 8.0)]
        assert combine(messages, threshold_bytes=4) == messages

    def test_zero_threshold_clamps_to_one(self):
        assert combine([(0, 1.0), (0, 2.0)], threshold_bytes=0) == [
            (0, 1.0), (0, 2.0),
        ]

    def test_flush_exactly_at_capacity(self):
        # threshold fits exactly two distinct destinations; the second
        # distinct dst triggers the flush immediately, sorted by vertex.
        messages = [(5, 1.0), (2, 2.0), (5, 4.0)]
        assert combine(messages, threshold_bytes=20) == [
            (2, 2.0), (5, 1.0), (5, 4.0),
        ]

    def test_same_destination_straddles_flush(self):
        # dst 7's first two copies combine, the flush intervenes, and
        # the post-flush copy ships uncombined — Appendix E's effect.
        messages = [(7, 1.0), (7, 2.0), (4, 8.0), (7, 16.0)]
        assert combine(messages, threshold_bytes=20) == [
            (4, 8.0), (7, 3.0), (7, 16.0),
        ]

    def test_duplicates_within_buffer_do_not_advance_capacity(self):
        # buffer occupancy counts distinct destinations, not messages:
        # four copies of dst 1 still fit one slot and fully combine.
        messages = [(1, 1.0), (1, 2.0), (1, 4.0), (1, 8.0), (2, 16.0)]
        assert combine(messages, threshold_bytes=20) == [
            (1, 15.0), (2, 16.0),
        ]

    def test_large_threshold_combines_everything(self):
        messages = [(i % 3, float(i)) for i in range(12)]
        assert combine(messages, threshold_bytes=10_000) == [
            (0, 0.0 + 3 + 6 + 9),
            (1, 1.0 + 4 + 7 + 10),
            (2, 2.0 + 5 + 8 + 11),
        ]

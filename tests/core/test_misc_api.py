"""Odds and ends of the public API surface."""

import pytest

from repro import (
    Graph,
    JobConfig,
    PageRank,
    SSSP,
    run_job,
)
from repro.core.graph import range_partition
from repro.storage.disk import SimulatedDisk
from repro.storage.records import DEFAULT_SIZES
from repro.storage.veblock import BlockLayout, VEBlockStore


class TestJobResult:
    def test_value_of(self):
        g = Graph(3, [(0, 1), (1, 2)])
        result = run_job(g, SSSP(source=0),
                         JobConfig(mode="push", num_workers=1,
                                   graph_on_disk=False))
        assert result.value_of(2) == 2.0
        assert result.runtime is not None

    def test_metrics_mode_matches_config(self):
        g = Graph(3, [(0, 1), (1, 2)])
        for mode in ("push", "bpull", "hybrid"):
            result = run_job(g, SSSP(source=0),
                             JobConfig(mode=mode, num_workers=1,
                                       message_buffer_per_worker=5))
            assert result.metrics.mode == mode


class TestBlockLayoutValidation:
    def test_wrong_counts_length_rejected(self):
        partition = range_partition(10, 2)
        with pytest.raises(ValueError):
            BlockLayout.build(partition, [1])


class TestDisabledDiskVEBlock:
    def test_scans_free_when_memory_resident(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        partition = range_partition(4, 1)
        layout = BlockLayout.build(partition, [2])
        disk = SimulatedDisk(enabled=False)
        store = VEBlockStore(g, partition, 0, layout, disk,
                             DEFAULT_SIZES)
        store.begin_superstep_stats()
        store.refresh_res([True] * 4)
        for dst_block in range(layout.num_blocks):
            for _ in store.scan_for_request(dst_block, [True] * 4):
                pass
        assert disk.counters.total == 0
        # the scan stats still describe the logical volume
        assert store.scan_stats[0] == g.num_edges


class TestNetworkConservation:
    def test_bytes_out_equals_bytes_in(self):
        from repro.cluster.network import SimulatedNetwork
        from repro.storage.disk import HDD_PROFILE

        net = SimulatedNetwork(4, HDD_PROFILE, 1000, 8)
        net.begin_superstep(1)
        net.transfer(0, 1, 100, units=1)
        net.transfer(1, 2, 250, units=2)
        net.transfer(3, 0, 50, units=1)
        net.send_request(2, 3)
        stats = net.end_superstep()
        assert sum(stats.bytes_out.values()) == sum(
            stats.bytes_in.values()
        )

    def test_engine_net_conservation(self):
        from repro.datasets.generators import random_graph

        g = random_graph(100, 5, seed=121)
        result = run_job(g, PageRank(supersteps=4),
                         JobConfig(mode="bpull", num_workers=4,
                                   message_buffer_per_worker=20))
        assert result.metrics.total_net_bytes > 0


class TestDeterminism:
    def test_identical_runs_identical_metrics(self):
        from repro.datasets.generators import random_graph

        g = random_graph(100, 5, seed=122)
        cfg = JobConfig(mode="hybrid", num_workers=3,
                        message_buffer_per_worker=10)
        a = run_job(g, SSSP(source=0), cfg)
        b = run_job(g, SSSP(source=0), cfg)
        assert a.values == b.values
        assert a.metrics.mode_trace == b.metrics.mode_trace
        assert a.metrics.compute_seconds == b.metrics.compute_seconds
        assert [s.io.total for s in a.metrics.supersteps] == [
            s.io.total for s in b.metrics.supersteps
        ]

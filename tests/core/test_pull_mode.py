"""Unit tests for the GraphLab-style pull baseline's mechanics."""

import pytest

from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.core.config import JobConfig
from repro.core.engine import run_job
from repro.core.graph import Graph
from repro.datasets.generators import random_graph


def cfg(**kwargs):
    kwargs.setdefault("num_workers", 2)
    return JobConfig(mode="pull", **kwargs)


class TestPullMechanics:
    def test_gather_uses_previous_superstep_values(self):
        # chain 0->1->2: SSSP distances must advance one hop per
        # superstep; same-superstep value leakage would finish earlier.
        g = Graph(3, [(0, 1), (1, 2)])
        result = run_job(g, SSSP(source=0), cfg(graph_on_disk=False))
        assert result.values == [0.0, 1.0, 2.0]
        # 1 (source) + 2 propagation supersteps at least
        assert result.metrics.num_supersteps >= 3

    def test_lru_misses_counted(self):
        g = random_graph(80, 5, seed=81)
        result = run_job(g, PageRank(supersteps=3),
                         cfg(message_buffer_per_worker=5))
        assert any(s.lru_misses > 0 for s in result.metrics.supersteps)

    def test_vertices_in_memory_no_random_reads(self):
        g = random_graph(80, 5, seed=81)
        result = run_job(g, PageRank(supersteps=3),
                         cfg(message_buffer_per_worker=None,
                             vertices_on_disk_for_pull=False))
        for step in result.metrics.supersteps:
            assert step.lru_misses == 0
            assert step.io.random_read == 0
            # edges still charged sequentially
        assert result.metrics.compute_io_bytes > 0

    def test_smaller_cache_more_misses(self):
        g = random_graph(80, 5, seed=81)
        small = run_job(g, PageRank(supersteps=3),
                        cfg(lru_capacity_vertices=5,
                            message_buffer_per_worker=None))
        big = run_job(g, PageRank(supersteps=3),
                      cfg(lru_capacity_vertices=500,
                          message_buffer_per_worker=None))
        misses = lambda r: sum(
            s.lru_misses for s in r.metrics.supersteps
        )
        assert misses(small) > misses(big)

    def test_pull_requests_issued_for_remote_gathers(self):
        g = random_graph(80, 5, seed=81)
        result = run_job(g, PageRank(supersteps=3),
                         cfg(message_buffer_per_worker=10))
        assert any(s.pull_requests > 0 for s in result.metrics.supersteps)

    def test_single_worker_no_network(self):
        g = random_graph(80, 5, seed=81)
        result = run_job(g, PageRank(supersteps=3),
                         cfg(num_workers=1, message_buffer_per_worker=10))
        assert result.metrics.total_net_bytes == 0

    def test_combinable_ships_one_partial_per_machine(self):
        # star into vertex 0 from every other vertex: with 2 workers,
        # the remote partial gather is combined into a single message
        # plus one mirror sync.
        g = Graph(10, [(i, 0) for i in range(1, 10)])
        result = run_job(g, PageRank(supersteps=2),
                         cfg(graph_on_disk=False))
        step2 = result.metrics.supersteps[1]
        # messages produced = 9, but shipped units are far fewer
        assert step2.net_transfer_units < step2.raw_messages

    def test_non_combinable_ships_every_message(self):
        from repro.algorithms.lpa import LPA

        g = Graph(10, [(i, 0) for i in range(1, 10)])
        result = run_job(g, LPA(supersteps=2), cfg(graph_on_disk=False))
        step2 = result.metrics.supersteps[1]
        # all remote label messages cross individually (plus syncs)
        assert step2.net_transfer_units >= step2.raw_messages / 2

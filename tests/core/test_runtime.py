"""Unit tests for runtime setup, Vblock sizing (Eqs. 5-6), loading costs."""

import pytest

from repro.algorithms.lpa import LPA
from repro.algorithms.pagerank import PageRank
from repro.core.config import JobConfig
from repro.core.graph import Graph, range_partition
from repro.core.runtime import Runtime, choose_vblocks_per_worker
from repro.datasets.generators import random_graph


def small_graph():
    return random_graph(60, 4, seed=5)


class TestChooseVblocks:
    def test_eq5_combinable(self):
        g = small_graph()
        p = range_partition(g.num_vertices, 3)
        n_i = p.size_of(0)
        expected = -(-(2 * n_i + n_i * 3) // 100)  # ceil
        assert choose_vblocks_per_worker(g, p, 0, 100, True) == expected

    def test_eq6_concat_only_uses_in_degree(self):
        g = small_graph()
        p = range_partition(g.num_vertices, 3)
        local = set(p.vertices_of(1))
        in_deg = sum(1 for _s, d, _w in g.edges() if d in local)
        expected = max(1, -(-in_deg // 50))
        assert choose_vblocks_per_worker(g, p, 1, 50, False) == expected

    def test_unlimited_buffer_one_block(self):
        g = small_graph()
        p = range_partition(g.num_vertices, 2)
        assert choose_vblocks_per_worker(g, p, 0, None, True) == 1

    def test_smaller_buffer_more_blocks(self):
        g = small_graph()
        p = range_partition(g.num_vertices, 2)
        big = choose_vblocks_per_worker(g, p, 0, 200, True)
        small = choose_vblocks_per_worker(g, p, 0, 20, True)
        assert small > big


class TestRuntimeSetup:
    def test_push_builds_adjacency_and_store(self):
        rt = Runtime(small_graph(), PageRank(), JobConfig(mode="push",
                                                          num_workers=2))
        rt.setup()
        for w in rt.workers:
            assert w.adjacency is not None
            assert w.veblock is None
            assert w.message_store is not None

    def test_bpull_builds_veblock_only(self):
        rt = Runtime(small_graph(), PageRank(), JobConfig(mode="bpull",
                                                          num_workers=2))
        rt.setup()
        for w in rt.workers:
            assert w.adjacency is None
            assert w.veblock is not None
            assert w.message_store is None

    def test_hybrid_builds_both(self):
        rt = Runtime(small_graph(), PageRank(), JobConfig(mode="hybrid",
                                                          num_workers=2))
        rt.setup()
        for w in rt.workers:
            assert w.adjacency is not None
            assert w.veblock is not None
            assert w.message_store is not None
        assert rt.load_metrics.structures == "adj+veblock"

    def test_pull_builds_reverse_and_cache(self):
        rt = Runtime(small_graph(), PageRank(),
                     JobConfig(mode="pull", num_workers=2,
                               message_buffer_per_worker=10))
        rt.setup()
        assert rt.reverse is not None
        for w in rt.workers:
            assert w.vertex_cache is not None

    def test_pushm_requires_combinable(self):
        rt = Runtime(small_graph(), LPA(), JobConfig(mode="pushm",
                                                     num_workers=2))
        with pytest.raises(ValueError, match="combinable"):
            rt.setup()

    def test_pushm_hot_vertices_are_top_in_degree(self):
        g = Graph(6, [(0, 3), (1, 3), (2, 3), (4, 5)])
        rt = Runtime(g, PageRank(), JobConfig(mode="pushm", num_workers=1,
                                              message_buffer_per_worker=1))
        rt.setup()
        store = rt.workers[0].message_store
        assert store._hot == frozenset({3})

    def test_initial_values_and_flags(self):
        g = small_graph()
        rt = Runtime(g, PageRank(), JobConfig(mode="push", num_workers=2))
        assert len(rt.values) == g.num_vertices
        assert not any(rt.resp_prev)
        assert not any(rt.resp_next)

    def test_load_metrics_nonzero_when_on_disk(self):
        rt = Runtime(small_graph(), PageRank(), JobConfig(mode="push",
                                                          num_workers=2))
        rt.setup()
        assert rt.load_metrics.io.seq_write > 0
        assert rt.load_metrics.elapsed_seconds > 0

    def test_load_free_when_memory_resident(self):
        rt = Runtime(small_graph(), PageRank(),
                     JobConfig(mode="push", num_workers=2,
                               graph_on_disk=False))
        rt.setup()
        assert rt.load_metrics.io.total == 0

    def test_veblock_load_costs_more_than_adj(self):
        g = small_graph()
        adj = Runtime(g, PageRank(), JobConfig(mode="push", num_workers=2))
        adj.setup()
        veb = Runtime(g, PageRank(), JobConfig(mode="bpull", num_workers=2))
        veb.setup()
        assert veb.load_metrics.io.total > adj.load_metrics.io.total

    def test_vblocks_override(self):
        rt = Runtime(small_graph(), PageRank(),
                     JobConfig(mode="bpull", num_workers=2,
                               vblocks_per_worker=4))
        rt.setup()
        assert rt.layout.num_blocks == 8

    def test_swap_flags(self):
        rt = Runtime(small_graph(), PageRank(), JobConfig(mode="push",
                                                          num_workers=2))
        rt.setup()
        rt.resp_next[0] = True
        rt.swap_flags()
        assert rt.resp_prev[0] is True
        assert not any(rt.resp_next)

    def test_reset_for_restart_clears_state(self):
        rt = Runtime(small_graph(), PageRank(), JobConfig(mode="push",
                                                          num_workers=2))
        rt.setup()
        rt.values[0] = 123.0
        rt.resp_next[1] = True
        rt.workers[0].message_store.deposit(0, 1.0)
        rt.reset_for_restart()
        assert rt.values[0] == 0.0
        assert not any(rt.resp_next)
        assert rt.pending_messages() == 0

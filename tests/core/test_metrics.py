"""Unit tests for superstep/job metrics aggregation."""

import pytest

from repro.core.metrics import JobMetrics, LoadMetrics, SuperstepMetrics
from repro.storage.disk import IOCounters


def step(superstep, mode="push", **kwargs):
    s = SuperstepMetrics(superstep=superstep, mode=mode)
    for key, value in kwargs.items():
        setattr(s, key, value)
    return s


class TestSuperstepMetrics:
    def test_spill_fraction(self):
        s = step(1, raw_messages=100, spilled_messages=25)
        assert s.spill_fraction == pytest.approx(0.25)

    def test_spill_fraction_no_messages(self):
        assert step(1).spill_fraction == 0.0


class TestJobMetrics:
    def make(self):
        jm = JobMetrics(mode="push", graph_name="g", program_name="p",
                        num_workers=2)
        jm.load = LoadMetrics(structures="adj", elapsed_seconds=1.0)
        jm.load.io.seq_write = 100
        jm.supersteps = [
            step(1, elapsed_seconds=2.0, net_bytes=10, raw_messages=5,
                 memory_bytes=50),
            step(2, elapsed_seconds=3.0, net_bytes=20, raw_messages=7,
                 memory_bytes=40),
        ]
        jm.supersteps[0].io = IOCounters(seq_read=30)
        jm.supersteps[1].io = IOCounters(random_write=70)
        return jm

    def test_runtime_includes_loading(self):
        jm = self.make()
        assert jm.compute_seconds == pytest.approx(5.0)
        assert jm.runtime_seconds == pytest.approx(6.0)

    def test_total_io_includes_loading(self):
        jm = self.make()
        assert jm.total_io.total == 200

    def test_compute_io_excludes_loading(self):
        jm = self.make()
        assert jm.compute_io_bytes == 100

    def test_totals(self):
        jm = self.make()
        assert jm.total_net_bytes == 30
        assert jm.total_messages == 12
        assert jm.peak_memory_bytes == 50
        assert jm.num_supersteps == 2

    def test_mean_superstep_seconds(self):
        jm = self.make()
        assert jm.mean_superstep_seconds() == pytest.approx(2.5)
        empty = JobMetrics(mode="push", graph_name="g", program_name="p",
                           num_workers=1)
        assert empty.mean_superstep_seconds() == 0.0

    def test_summary_keys(self):
        summary = self.make().summary()
        for key in ("mode", "graph", "program", "supersteps", "runtime_s",
                    "io_bytes", "net_bytes", "messages", "peak_memory"):
            assert key in summary

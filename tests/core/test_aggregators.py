"""Pregel-style aggregators and convergence-based termination."""

from typing import Dict, Optional

import pytest

from repro.algorithms.pagerank import PageRank
from repro.core.api import ProgramContext, UpdateResult, VertexProgram
from repro.core.config import JobConfig
from repro.core.engine import run_job
from repro.datasets.generators import random_graph


class CountingProgram(VertexProgram):
    """Broadcasts a constant; aggregates the number of updates."""

    name = "counting"
    combinable = True
    all_active = True
    default_max_supersteps = 4

    def initial_value(self, vid, ctx):
        return 0.0

    def update(self, vid, value, messages, ctx) -> UpdateResult:
        return UpdateResult(value=value + 1.0, respond=True)

    def message_value(self, vid, value, dst, weight, ctx):
        return 1.0

    def combine(self, a, b):
        return a + b

    def aggregate(self, vid, old_value, new_value,
                  ctx) -> Optional[Dict[str, float]]:
        return {"updates": 1.0, "delta": new_value - old_value}


def cfg(mode="push", **kwargs):
    kwargs.setdefault("num_workers", 3)
    kwargs.setdefault("message_buffer_per_worker", 20)
    return JobConfig(mode=mode, **kwargs)


class TestAggregators:
    def test_totals_recorded_per_superstep(self):
        g = random_graph(50, 4, seed=101)
        result = run_job(g, CountingProgram(), cfg())
        for step in result.metrics.supersteps:
            assert step.aggregates["updates"] == 50.0
            assert step.aggregates["delta"] == pytest.approx(50.0)

    @pytest.mark.parametrize("mode", ["push", "bpull", "hybrid", "pull"])
    def test_totals_identical_across_modes(self, mode):
        g = random_graph(50, 4, seed=101)
        reference = run_job(g, CountingProgram(), cfg("push"))
        other = run_job(g, CountingProgram(), cfg(mode))
        for a, b in zip(reference.metrics.supersteps,
                        other.metrics.supersteps):
            assert a.aggregates == pytest.approx(b.aggregates)

    def test_previous_totals_visible_next_superstep(self):
        seen = {}

        class Peek(CountingProgram):
            def update(self, vid, value, messages, ctx):
                if vid == 0:
                    seen[ctx.superstep] = dict(ctx.aggregates)
                return super().update(vid, value, messages, ctx)

        g = random_graph(50, 4, seed=101)
        run_job(g, Peek(), cfg())
        assert seen[1] == {}
        assert seen[2]["updates"] == 50.0

    def test_default_program_contributes_nothing(self):
        g = random_graph(50, 4, seed=101)
        result = run_job(g, PageRank(supersteps=3), cfg())
        assert all(
            s.aggregates == {} for s in result.metrics.supersteps
        )


class TestToleranceTermination:
    def test_pagerank_converges_before_budget(self):
        g = random_graph(100, 5, seed=102)
        result = run_job(g, PageRank(tolerance=1e-4), cfg())
        assert result.metrics.num_supersteps < 200
        last = result.metrics.supersteps[-1]
        assert last.aggregates["delta"] < 1e-4 * 10  # near convergence

    def test_tighter_tolerance_more_supersteps(self):
        g = random_graph(100, 5, seed=102)
        loose = run_job(g, PageRank(tolerance=1e-2), cfg())
        tight = run_job(g, PageRank(tolerance=1e-8), cfg())
        assert (tight.metrics.num_supersteps
                > loose.metrics.num_supersteps)

    @pytest.mark.parametrize("mode", ["push", "pushm", "bpull", "hybrid"])
    def test_converged_result_identical_across_modes(self, mode):
        g = random_graph(100, 5, seed=102)
        reference = run_job(g, PageRank(tolerance=1e-6), cfg("push"))
        other = run_job(g, PageRank(tolerance=1e-6), cfg(mode))
        assert other.values == pytest.approx(reference.values)
        assert (other.metrics.num_supersteps
                == reference.metrics.num_supersteps)

    def test_converged_ranks_are_stationary(self):
        g = random_graph(100, 5, seed=102)
        result = run_job(g, PageRank(tolerance=1e-10), cfg())
        ranks = result.values
        # one more power-iteration step changes almost nothing
        incoming = [0.0] * g.num_vertices
        for src in range(g.num_vertices):
            deg = g.out_degree(src)
            if deg:
                for dst, _w in g.out_edges(src):
                    incoming[dst] += ranks[src] / deg
        for vid in range(g.num_vertices):
            expected = 0.15 / g.num_vertices + 0.85 * incoming[vid]
            assert ranks[vid] == pytest.approx(expected, abs=1e-8)

    def test_invalid_tolerance_rejected(self):
        with pytest.raises(ValueError):
            PageRank(tolerance=0.0)

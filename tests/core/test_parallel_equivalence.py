"""Parallel-runtime guard: ``parallelism=N`` must not change one byte.

The process-pool runtime (:mod:`repro.core.modes.parallel`) executes
each superstep's per-worker halves across N OS processes; the
coordinator folds the shards in fixed worker-id order, which is supposed
to make ``JobMetrics.to_dict()`` byte-identical to the in-process
executors.  These tests run the same jobs at parallelism 1, 2, and 4 —
through both the batched and vectorized tiers, across push/b-pull/
hybrid (including switch supersteps) and the recovery paths — and
compare the full dumps.

The pool needs ``fork`` + ``multiprocessing.shared_memory``; on
platforms without them the runtime falls back to in-process execution
(trivially identical), so the cells stay valid everywhere.
"""

import json
import multiprocessing

import pytest

from repro.algorithms.lpa import LPA
from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.algorithms.wcc import WCC
from repro.core.config import FaultPlan, JobConfig
from repro.core.engine import run_job
from repro.core.runtime import Runtime
from repro.datasets.generators import random_graph

PARALLELISMS = (1, 2, 4)


def _graph():
    return random_graph(300, 6, seed=42)


def _dump(result):
    payload = result.metrics.to_dict()
    # the fallback record names the requested parallelism, which
    # legitimately differs across the compared runs.
    payload.pop("fallback", None)
    return json.dumps(payload, sort_keys=True)


def run_sweep(graph, program_factory, **cfg_kwargs):
    results = []
    for parallelism in PARALLELISMS:
        cfg = JobConfig(parallelism=parallelism, **cfg_kwargs)
        results.append(run_job(graph, program_factory(), cfg))
    return results


def assert_sweep_identical(results):
    reference = results[0]
    expected = _dump(reference)
    for other in results[1:]:
        assert _dump(other) == expected
        assert other.values == reference.values
    # the engine's try/finally must have reaped every pool process.
    assert multiprocessing.active_children() == []


class TestParallelEquivalence:
    @pytest.mark.parametrize("executor", ["batched", "vectorized"])
    @pytest.mark.parametrize("mode", ["push", "bpull", "hybrid"])
    @pytest.mark.parametrize(
        "program_factory",
        [PageRank, lambda: SSSP(source=0), LPA, WCC],
        ids=["pagerank", "sssp", "lpa", "wcc"],
    )
    def test_metrics_identical(self, executor, mode, program_factory):
        assert_sweep_identical(run_sweep(
            _graph(), program_factory, executor=executor, mode=mode,
            num_workers=4, message_buffer_per_worker=100,
            max_supersteps=6,
        ))

    @pytest.mark.parametrize("executor", ["batched", "vectorized"])
    def test_hybrid_switch_supersteps(self, executor):
        # to convergence, so the hybrid controller switches transports
        # and the mixed-mechanism switch supersteps run on the pool.
        results = run_sweep(
            _graph(), lambda: SSSP(source=0), executor=executor,
            mode="hybrid", num_workers=4,
            message_buffer_per_worker=100,
        )
        assert_sweep_identical(results)
        trace = results[0].metrics.mode_trace
        assert any("->" in label for label in trace), trace

    @pytest.mark.parametrize("executor", ["batched", "vectorized"])
    def test_memory_resident_push(self, executor):
        assert_sweep_identical(run_sweep(
            _graph(), PageRank, executor=executor, mode="push",
            num_workers=4, graph_on_disk=False, max_supersteps=5,
        ))

    def test_parallelism_clamped_to_num_workers(self):
        g = _graph()
        cfg = JobConfig(
            mode="push", num_workers=3, parallelism=8,
            max_supersteps=3, message_buffer_per_worker=100,
        )
        result = run_job(g, PageRank(), cfg)
        assert result.runtime.active_parallelism == 3
        expected = _dump(run_job(g, PageRank(), cfg.but(parallelism=1)))
        assert _dump(result) == expected


class TestRecoveryWithPool:
    """Fault injection and checkpoint restore while the pool is live."""

    CELLS = {
        "scratch": dict(fault=FaultPlan(worker=1, superstep=3)),
        "checkpoint": dict(
            fault=FaultPlan(worker=1, superstep=3),
            checkpoint_interval=2,
        ),
    }

    @pytest.mark.parametrize("executor", ["batched", "vectorized"])
    @pytest.mark.parametrize("policy", sorted(CELLS))
    def test_recovery_identical(self, executor, policy):
        results = run_sweep(
            _graph(), PageRank, executor=executor, mode="hybrid",
            num_workers=4, message_buffer_per_worker=100,
            max_supersteps=6, **self.CELLS[policy],
        )
        assert_sweep_identical(results)
        assert results[0].metrics.restarts == 1

    def test_no_orphans_after_recovery(self):
        # the failure fires while pool processes hold pre-failure state;
        # the engine must reap them before the rewind and the job end.
        result = run_job(_graph(), PageRank(), JobConfig(
            mode="push", num_workers=4, parallelism=4,
            message_buffer_per_worker=100, max_supersteps=5,
            fault=FaultPlan(worker=0, superstep=3),
            checkpoint_interval=2,
        ))
        assert result.metrics.restarts == 1
        assert result.metrics.recovered_from == 2
        assert multiprocessing.active_children() == []
        assert result.runtime._pool is None


class TestConfigValidation:
    @pytest.mark.parametrize("bad", [0, -1, 1.5, "2", None])
    def test_rejects_non_positive_or_non_int(self, bad):
        with pytest.raises(ValueError, match="parallelism"):
            JobConfig(parallelism=bad)

    def test_accepts_one_and_above(self):
        assert JobConfig(parallelism=1).parallelism == 1
        assert JobConfig(parallelism=16).parallelism == 16

    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError, match="executor"):
            JobConfig(executor="threaded")


class TestFallbackSurface:
    """Satellite: the requested-vs-active record in metrics and JSON."""

    def _metrics(self, **cfg_kwargs):
        cfg = JobConfig(
            num_workers=4, max_supersteps=3,
            message_buffer_per_worker=100, **cfg_kwargs,
        )
        return run_job(_graph(), PageRank(), cfg).metrics

    def test_absent_without_downgrade(self):
        metrics = self._metrics(mode="push", parallelism=2)
        assert metrics.fallback is None
        assert "fallback" not in metrics.to_dict()

    def test_reference_executor_has_no_parallel_path(self):
        metrics = self._metrics(
            mode="push", executor="reference", parallelism=2
        )
        fb = metrics.fallback
        assert fb is not None
        assert fb["requested_parallelism"] == 2
        assert fb["active_parallelism"] == 1
        assert "batched or vectorized" in fb["reason"]

    def test_pull_mode_has_no_parallel_path(self):
        metrics = self._metrics(mode="pull", parallelism=2)
        assert metrics.fallback["active_parallelism"] == 1
        assert "no parallel path" in metrics.fallback["reason"]

    def test_round_trips_through_json(self):
        metrics = self._metrics(
            mode="push", executor="reference", parallelism=2
        )
        payload = json.loads(metrics.to_json())
        assert payload["fallback"] == metrics.to_dict()["fallback"]
        assert payload["fallback"]["requested_executor"] == "reference"

    def test_combines_executor_and_parallelism_reasons(self):
        # LPA has no dense rules -> vectorized downgrades to batched;
        # batched still has a parallel path, so only the executor
        # reason appears and parallelism stays active.
        metrics = run_job(_graph(), LPA(supersteps=3), JobConfig(
            mode="push", num_workers=4, executor="vectorized",
            parallelism=2, message_buffer_per_worker=100,
        )).metrics
        fb = metrics.fallback
        assert fb["active_executor"] == "batched"
        assert fb["active_parallelism"] == 2


class TestFallbackReasons:
    """parallel_fallback_reason unit cells (no pool is ever forked)."""

    def _runtime(self, **cfg_kwargs):
        cfg = JobConfig(num_workers=4, **cfg_kwargs)
        return Runtime(_graph(), PageRank(), cfg)

    def test_async_push_falls_back(self):
        rt = self._runtime(
            mode="push", asynchronous=True, parallelism=2,
            message_buffer_per_worker=100,
        )
        assert rt.active_parallelism == 1
        assert "sequential" in rt.executor_fallback

    def test_bpull_parallel_is_active(self):
        rt = self._runtime(mode="bpull", parallelism=2)
        assert rt.active_parallelism == 2
        assert rt.executor_fallback is None

"""Engine mechanics: superstep dataflow, spill accounting, termination."""

import math

import pytest

from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.core.config import JobConfig
from repro.core.engine import run_job
from repro.core.graph import Graph
from repro.datasets.generators import random_graph, ring_graph


def chain(n=6):
    """0 -> 1 -> ... -> n-1, unit weights."""
    return Graph(n, [(i, i + 1) for i in range(n - 1)], name="chain")


class TestSuperstepDataflow:
    def test_sssp_frontier_advances_one_hop_per_superstep(self):
        g = chain(5)
        result = run_job(g, SSSP(source=0), JobConfig(
            mode="push", num_workers=2, graph_on_disk=False))
        assert result.values == [0.0, 1.0, 2.0, 3.0, 4.0]
        # 1 init + 4 propagation + 1 empty detection superstep at most
        assert 5 <= result.metrics.num_supersteps <= 6

    def test_messages_consumed_next_superstep_in_push(self):
        g = chain(3)
        result = run_job(g, SSSP(source=0), JobConfig(
            mode="push", num_workers=1, graph_on_disk=False))
        steps = result.metrics.supersteps
        # superstep 1 updates only the source and emits one message
        assert steps[0].updated_vertices == 1
        assert steps[0].raw_messages == 1
        # superstep 2 consumes it and updates vertex 1
        assert steps[1].updated_vertices == 1

    def test_bpull_messages_never_touch_disk(self):
        g = random_graph(50, 4, seed=1)
        result = run_job(g, PageRank(supersteps=4), JobConfig(
            mode="bpull", num_workers=2, message_buffer_per_worker=5))
        for step in result.metrics.supersteps:
            assert step.spilled_messages == 0
            assert step.io_message_spill == 0
            assert step.io.random_write == 0

    def test_push_spills_when_buffer_exceeded(self):
        g = random_graph(50, 4, seed=1)
        result = run_job(g, PageRank(supersteps=4), JobConfig(
            mode="push", num_workers=2, message_buffer_per_worker=5))
        spilled = sum(s.spilled_messages for s in result.metrics.supersteps)
        assert spilled > 0

    def test_push_spill_count_exact(self):
        # star: 10 spokes -> center. Worker 0 holds the center.
        g = Graph(11, [(i, 0) for i in range(1, 11)])
        result = run_job(g, PageRank(supersteps=3), JobConfig(
            mode="push", num_workers=1, message_buffer_per_worker=4))
        # each full superstep produces 10 messages for vertex 0; 4 fit
        full_steps = [s for s in result.metrics.supersteps[:-1]]
        for step in full_steps:
            assert step.spilled_messages == 6

    def test_push_without_spill_when_unlimited(self):
        g = random_graph(50, 4, seed=1)
        result = run_job(g, PageRank(supersteps=3), JobConfig(
            mode="push", num_workers=2, message_buffer_per_worker=None))
        assert all(
            s.spilled_messages == 0 for s in result.metrics.supersteps
        )

    def test_memory_sufficient_no_disk_at_all(self):
        g = random_graph(50, 4, seed=1)
        for mode in ("push", "pushm", "pull", "bpull", "hybrid"):
            result = run_job(g, PageRank(supersteps=3), JobConfig(
                mode=mode, num_workers=2, message_buffer_per_worker=None,
                graph_on_disk=False))
            assert result.metrics.compute_io_bytes == 0, mode
            assert result.metrics.load.io.total == 0, mode

    def test_message_conservation_push(self):
        g = random_graph(60, 5, seed=3)
        result = run_job(g, PageRank(supersteps=4), JobConfig(
            mode="push", num_workers=3, message_buffer_per_worker=20))
        # every produced message is shipped (plain push: units == raw)
        for step in result.metrics.supersteps:
            assert step.net_transfer_units == step.raw_messages

    def test_bpull_transfers_fewer_units_when_combinable(self):
        g = random_graph(60, 5, seed=3)
        result = run_job(g, PageRank(supersteps=4), JobConfig(
            mode="bpull", num_workers=3, message_buffer_per_worker=20))
        steps = [s for s in result.metrics.supersteps if s.raw_messages]
        assert steps, "expected message-bearing supersteps"
        for step in steps:
            assert step.net_transfer_units < step.raw_messages
            assert step.mco >= 0

    def test_pull_requests_only_in_pull_modes(self):
        g = random_graph(40, 4, seed=2)
        push = run_job(g, PageRank(supersteps=3), JobConfig(
            mode="push", num_workers=2, message_buffer_per_worker=10))
        bpull = run_job(g, PageRank(supersteps=3), JobConfig(
            mode="bpull", num_workers=2, message_buffer_per_worker=10))
        assert all(s.pull_requests == 0 for s in push.metrics.supersteps)
        assert any(s.pull_requests > 0 for s in bpull.metrics.supersteps)

    def test_bpull_request_count_is_blocks_times_workers(self):
        g = random_graph(40, 4, seed=2)
        result = run_job(g, PageRank(supersteps=3), JobConfig(
            mode="bpull", num_workers=2, vblocks_per_worker=3,
            message_buffer_per_worker=10))
        # supersteps after the first send V * T requests
        step = result.metrics.supersteps[1]
        assert step.pull_requests == 6 * 2


class TestTermination:
    def test_pagerank_runs_exactly_max_supersteps(self):
        g = random_graph(30, 3, seed=4)
        for mode in ("push", "bpull", "hybrid"):
            result = run_job(g, PageRank(supersteps=7), JobConfig(
                mode=mode, num_workers=2, message_buffer_per_worker=10))
            assert result.metrics.num_supersteps == 7, mode

    def test_sssp_converges_and_stops(self):
        g = ring_graph(10)
        result = run_job(g, SSSP(source=0), JobConfig(
            mode="push", num_workers=2, graph_on_disk=False))
        assert result.values == [float(i) for i in range(10)]
        # ring: 10 supersteps of propagation, then quiesce
        assert result.metrics.num_supersteps <= 11

    def test_unreachable_vertices_stay_infinite(self):
        g = Graph(4, [(0, 1)])
        result = run_job(g, SSSP(source=0), JobConfig(
            mode="push", num_workers=2, graph_on_disk=False))
        assert result.values[0] == 0.0
        assert result.values[1] == 1.0
        assert math.isinf(result.values[2])
        assert math.isinf(result.values[3])

    def test_isolated_source(self):
        g = Graph(3, [(1, 2)])
        result = run_job(g, SSSP(source=0), JobConfig(
            mode="push", num_workers=1, graph_on_disk=False))
        assert result.values[0] == 0.0
        assert math.isinf(result.values[1])
        assert result.metrics.num_supersteps <= 2

    def test_max_supersteps_override(self):
        g = ring_graph(50)
        result = run_job(g, SSSP(source=0), JobConfig(
            mode="push", num_workers=2, graph_on_disk=False,
            max_supersteps=5))
        assert result.metrics.num_supersteps == 5


class TestHybridSwitchSupersteps:
    def test_switch_labels_appear_in_trace(self):
        g = random_graph(80, 6, seed=6)
        result = run_job(g, SSSP(source=0), JobConfig(
            mode="hybrid", num_workers=2, message_buffer_per_worker=3))
        trace = result.metrics.mode_trace
        for prev, cur in zip(trace, trace[1:]):
            prev_base = prev.split("->")[-1]
            cur_base = cur.split("->")[0] if "->" in cur else cur
            if "->" in cur:
                assert cur.split("->")[0] == prev_base
            else:
                assert cur_base in ("push", "bpull")

    def test_switch_superstep_results_match_pure_modes(self):
        g = random_graph(80, 6, seed=6)
        reference = run_job(g, SSSP(source=0), JobConfig(
            mode="push", num_workers=2, message_buffer_per_worker=3))
        hybrid = run_job(g, SSSP(source=0), JobConfig(
            mode="hybrid", num_workers=2, message_buffer_per_worker=3))
        assert hybrid.values == reference.values

    def test_q_trace_recorded(self):
        g = random_graph(80, 6, seed=6)
        result = run_job(g, PageRank(supersteps=6), JobConfig(
            mode="hybrid", num_workers=2, message_buffer_per_worker=3))
        assert len(result.metrics.q_trace) == result.metrics.num_supersteps


class TestModeLabels:
    def test_pushm_label(self):
        g = random_graph(40, 4, seed=2)
        result = run_job(g, PageRank(supersteps=3), JobConfig(
            mode="pushm", num_workers=2, message_buffer_per_worker=10))
        assert set(result.metrics.mode_trace) == {"pushm"}

    def test_elapsed_is_max_worker_time(self):
        g = random_graph(40, 4, seed=2)
        result = run_job(g, PageRank(supersteps=3), JobConfig(
            mode="push", num_workers=3, message_buffer_per_worker=10))
        for step in result.metrics.supersteps:
            assert step.elapsed_seconds == pytest.approx(
                max(step.worker_seconds.values())
            )

    def test_traffic_timeline_monotonic(self):
        g = random_graph(40, 4, seed=2)
        result = run_job(g, PageRank(supersteps=4), JobConfig(
            mode="push", num_workers=2, message_buffer_per_worker=10))
        times = [t for t, _b in result.metrics.traffic_timeline]
        assert times == sorted(times)
        assert len(times) == result.metrics.num_supersteps

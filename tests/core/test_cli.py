"""CLI smoke and argument-handling tests."""

import pytest

from repro.cli import build_parser, main
from repro.core.graph import Graph
from repro.datasets.io import write_edge_list


class TestParser:
    def test_requires_a_graph_source(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_dataset_and_edge_list_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["--dataset", "wiki", "--edge-list", "x.txt"]
            )

    def test_defaults(self):
        args = build_parser().parse_args(["--dataset", "wiki"])
        assert args.algorithm == "pagerank"
        assert args.mode == "hybrid"
        assert args.cluster == "local"


class TestMain:
    def test_runs_on_edge_list(self, tmp_path, capsys):
        g = Graph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
        path = tmp_path / "ring.txt"
        write_edge_list(g, path)
        rc = main(["--edge-list", str(path), "--algorithm", "sssp",
                   "--mode", "push", "--workers", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "sssp" in out
        assert "supersteps" in out

    def test_trace_output(self, tmp_path, capsys):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        path = tmp_path / "chain.txt"
        write_edge_list(g, path)
        rc = main(["--edge-list", str(path), "--algorithm", "wcc",
                   "--mode", "bpull", "--workers", "2", "--trace"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "updated" in out  # trace table header

    def test_in_memory_flag(self, tmp_path, capsys):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        path = tmp_path / "chain.txt"
        write_edge_list(g, path)
        rc = main(["--edge-list", str(path), "--mode", "push",
                   "--in-memory", "--supersteps", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "disk I/O   : 0B" in out

    def test_hybrid_reports_switches(self, tmp_path, capsys):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        path = tmp_path / "chain.txt"
        write_edge_list(g, path)
        rc = main(["--edge-list", str(path), "--algorithm", "sssp",
                   "--mode", "hybrid", "--workers", "2", "--buffer", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "mode trace" in out

    def test_amazon_cluster(self, tmp_path, capsys):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        path = tmp_path / "chain.txt"
        write_edge_list(g, path)
        rc = main(["--edge-list", str(path), "--cluster", "amazon",
                   "--supersteps", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "amazon" in out


class TestMainWithDataset:
    def test_dataset_run(self, capsys):
        rc = main(["--dataset", "livej", "--algorithm", "pagerank",
                   "--mode", "bpull", "--supersteps", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "livej" in out
        assert "supersteps : 2" in out

    def test_dataset_in_memory(self, capsys):
        rc = main(["--dataset", "livej", "--algorithm", "wcc",
                   "--mode", "push", "--in-memory",
                   "--supersteps", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "disk I/O   : 0B" in out

    def test_stats_flag(self, capsys):
        rc = main(["--dataset", "livej", "--stats"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "B_perp" in out
        assert "supersteps" not in out  # no job ran

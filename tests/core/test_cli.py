"""CLI smoke and argument-handling tests."""

import argparse
import json

import pytest

from repro.cli import ALGORITHMS, build_parser, main, parse_fault_plan
from repro.core.graph import Graph
from repro.datasets.generators import social_graph
from repro.datasets.io import write_edge_list


class TestParser:
    def test_requires_a_graph_source(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_dataset_and_edge_list_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["--dataset", "wiki", "--edge-list", "x.txt"]
            )

    def test_defaults(self):
        args = build_parser().parse_args(["--dataset", "wiki"])
        assert args.algorithm == "pagerank"
        assert args.mode == "hybrid"
        assert args.cluster == "local"


class TestMain:
    def test_runs_on_edge_list(self, tmp_path, capsys):
        g = Graph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
        path = tmp_path / "ring.txt"
        write_edge_list(g, path)
        rc = main(["--edge-list", str(path), "--algorithm", "sssp",
                   "--mode", "push", "--workers", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "sssp" in out
        assert "supersteps" in out

    def test_trace_output(self, tmp_path, capsys):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        path = tmp_path / "chain.txt"
        write_edge_list(g, path)
        rc = main(["--edge-list", str(path), "--algorithm", "wcc",
                   "--mode", "bpull", "--workers", "2", "--trace"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "updated" in out  # trace table header

    def test_in_memory_flag(self, tmp_path, capsys):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        path = tmp_path / "chain.txt"
        write_edge_list(g, path)
        rc = main(["--edge-list", str(path), "--mode", "push",
                   "--in-memory", "--supersteps", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "disk I/O   : 0B" in out

    def test_hybrid_reports_switches(self, tmp_path, capsys):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        path = tmp_path / "chain.txt"
        write_edge_list(g, path)
        rc = main(["--edge-list", str(path), "--algorithm", "sssp",
                   "--mode", "hybrid", "--workers", "2", "--buffer", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "mode trace" in out

    def test_amazon_cluster(self, tmp_path, capsys):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        path = tmp_path / "chain.txt"
        write_edge_list(g, path)
        rc = main(["--edge-list", str(path), "--cluster", "amazon",
                   "--supersteps", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "amazon" in out


class TestMainWithDataset:
    def test_dataset_run(self, capsys):
        rc = main(["--dataset", "livej", "--algorithm", "pagerank",
                   "--mode", "bpull", "--supersteps", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "livej" in out
        assert "supersteps : 2" in out

    def test_dataset_in_memory(self, capsys):
        rc = main(["--dataset", "livej", "--algorithm", "wcc",
                   "--mode", "push", "--in-memory",
                   "--supersteps", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "disk I/O   : 0B" in out

    def test_stats_flag(self, capsys):
        rc = main(["--dataset", "livej", "--stats"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "B_perp" in out
        assert "supersteps" not in out  # no job ran


@pytest.fixture(scope="module")
def tiny_edge_list(tmp_path_factory):
    """A small but non-trivial graph shared by the smoke tests."""
    graph = social_graph(num_vertices=60, avg_degree=4, seed=7)
    path = tmp_path_factory.mktemp("cli") / "tiny.txt"
    write_edge_list(graph, path)
    return str(path)


class TestSmokeEveryAlgorithm:
    """``main()`` must exit 0 for every supported --algorithm."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_algorithm_runs(self, algorithm, tiny_edge_list, capsys):
        rc = main(["--edge-list", tiny_edge_list,
                   "--algorithm", algorithm, "--mode", "hybrid",
                   "--workers", "2", "--buffer", "50",
                   "--supersteps", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "supersteps" in out

    def test_stats(self, tiny_edge_list, capsys):
        rc = main(["--edge-list", tiny_edge_list, "--stats"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "B_perp" in out


class TestTraceOut:
    def test_jsonl_trace_parses(self, tiny_edge_list, tmp_path, capsys):
        out_path = tmp_path / "trace.jsonl"
        rc = main(["--edge-list", tiny_edge_list,
                   "--algorithm", "pagerank", "--mode", "hybrid",
                   "--workers", "2", "--buffer", "50",
                   "--supersteps", "4",
                   "--trace-out", str(out_path)])
        report = capsys.readouterr().out
        assert rc == 0
        assert str(out_path) in report
        lines = out_path.read_text().splitlines()
        assert lines
        events = [json.loads(line) for line in lines]
        names = {e["name"] for e in events}
        assert {"load_graph", "superstep", "update", "worker"} <= names
        for event in events:
            assert event["kind"] in ("span", "instant")
            assert isinstance(event["ts"], float)

    def test_chrome_trace_parses(self, tiny_edge_list, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        rc = main(["--edge-list", tiny_edge_list,
                   "--algorithm", "sssp", "--mode", "hybrid",
                   "--workers", "2", "--buffer", "50",
                   "--supersteps", "4",
                   "--trace-out", str(out_path),
                   "--trace-format", "chrome"])
        assert rc == 0
        doc = json.loads(out_path.read_text())
        records = doc["traceEvents"]
        phases = {r["ph"] for r in records}
        assert phases <= {"M", "X", "i"}
        assert any(r["ph"] == "X" and r["name"] == "superstep"
                   for r in records)

    def test_trace_out_with_table_flag(self, tiny_edge_list, tmp_path,
                                       capsys):
        out_path = tmp_path / "trace.jsonl"
        rc = main(["--edge-list", tiny_edge_list, "--mode", "push",
                   "--workers", "2", "--supersteps", "3",
                   "--trace", "--trace-out", str(out_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "updated" in out  # the existing --trace table survives
        assert out_path.exists()

    def test_bad_format_rejected(self, tiny_edge_list, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["--edge-list", tiny_edge_list,
                 "--trace-out", str(tmp_path / "t"),
                 "--trace-format", "xml"]
            )


class TestFaultPlanSpec:
    def test_single_crash(self):
        (plan,) = parse_fault_plan("crash@3:w1")
        assert (plan.kind, plan.superstep, plan.worker) == ("crash", 3, 1)

    def test_worker_defaults_to_zero(self):
        (plan,) = parse_fault_plan("kill@2")
        assert plan.worker == 0

    def test_straggler_factor_and_repeat(self):
        (plan,) = parse_fault_plan("straggler@4:w2x2.5*3")
        assert plan.kind == "straggler"
        assert plan.factor == 2.5
        assert plan.repeat == 3

    def test_checkpoint_kind_aliases(self):
        plans = parse_fault_plan("ckpt-write@2,ckpt-corrupt@4")
        assert [p.kind for p in plans] == [
            "checkpoint_write", "checkpoint_corrupt",
        ]

    @pytest.mark.parametrize("bad", [
        "", "crash", "crash@", "meteor@3", "crash@0", "crash@3:w-1",
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_fault_plan(bad)


class TestResilienceFlags:
    def test_fault_plan_run_reports_recovery(self, tiny_edge_list,
                                             capsys):
        rc = main(["--edge-list", tiny_edge_list,
                   "--algorithm", "pagerank", "--mode", "push",
                   "--workers", "2", "--buffer", "50",
                   "--supersteps", "5",
                   "--fault-plan", "crash@3:w1",
                   "--checkpoint-interval", "2",
                   "--restart-backoff", "5"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "faults     : crash@3/w1" in out
        assert "recovery   : 1 restarts" in out
        assert "checkpoints:" in out

    def test_chaos_flags_accepted(self, tiny_edge_list, capsys):
        rc = main(["--edge-list", tiny_edge_list, "--mode", "push",
                   "--workers", "2", "--buffer", "50",
                   "--supersteps", "4",
                   "--chaos-probability", "0.5",
                   "--chaos-seed", "7",
                   "--checkpoint-interval", "1"])
        assert rc == 0

    def test_checkpoint_dir_then_resume(self, tiny_edge_list, tmp_path,
                                        capsys):
        ckpt_dir = str(tmp_path / "ckpts")
        common = ["--edge-list", tiny_edge_list, "--mode", "push",
                  "--workers", "2", "--buffer", "50",
                  "--checkpoint-interval", "2"]
        rc = main(common + ["--supersteps", "5",
                            "--checkpoint-dir", ckpt_dir])
        assert rc == 0
        capsys.readouterr()
        rc = main(common + ["--supersteps", "8",
                            "--resume-from", ckpt_dir])
        out = capsys.readouterr().out
        assert rc == 0
        assert "resumed    : after superstep 4" in out

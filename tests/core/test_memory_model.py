"""Memory-accounting behaviours the paper's Section 4.3 relies on."""

import pytest

from repro.algorithms.lpa import LPA
from repro.algorithms.pagerank import PageRank
from repro.core.config import JobConfig
from repro.core.engine import run_job
from repro.core.runtime import Runtime, choose_vblocks_per_worker
from repro.core.graph import range_partition
from repro.datasets.generators import random_graph


class TestBufferSizing:
    def test_combinable_uses_eq5_concat_only_eq6(self):
        g = random_graph(120, 6, seed=91)
        p = range_partition(g.num_vertices, 3)
        eq5 = choose_vblocks_per_worker(g, p, 0, 40, True)
        eq6 = choose_vblocks_per_worker(g, p, 0, 40, False)
        # Eq. 6 sizes by total in-degree, which exceeds (2 + T) * n_i
        # when the average degree tops 2 + T.
        assert eq5 >= 1 and eq6 >= 1

    def test_runtime_uses_eq6_for_lpa(self):
        g = random_graph(120, 6, seed=91)
        rt5 = Runtime(g, PageRank(), JobConfig(
            mode="bpull", num_workers=3, message_buffer_per_worker=40))
        rt6 = Runtime(g, LPA(), JobConfig(
            mode="bpull", num_workers=3, message_buffer_per_worker=40))
        rt5.setup()
        rt6.setup()
        # the two formulas give different block layouts in general
        assert rt5.layout.num_blocks != rt6.layout.num_blocks


class TestPrepullMemory:
    def test_prepull_doubles_receive_buffer_accounting(self):
        g = random_graph(120, 6, seed=92)
        base = dict(mode="bpull", num_workers=3,
                    message_buffer_per_worker=20, vblocks_per_worker=4)
        with_prepull = run_job(g, PageRank(supersteps=4),
                               JobConfig(prepull=True, **base))
        without = run_job(g, PageRank(supersteps=4),
                          JobConfig(prepull=False, **base))
        assert (with_prepull.metrics.peak_memory_bytes
                > without.metrics.peak_memory_bytes)
        # accounting only: results identical
        assert with_prepull.values == pytest.approx(without.values)


class TestMemoryVsGranularity:
    def test_more_blocks_less_buffer_memory(self):
        g = random_graph(200, 8, seed=93)
        peaks = []
        for vblocks in (1, 4, 16):
            result = run_job(
                g, PageRank(supersteps=3),
                JobConfig(mode="bpull", num_workers=2,
                          vblocks_per_worker=vblocks,
                          message_buffer_per_worker=20),
            )
            peaks.append(result.metrics.peak_memory_bytes)
        assert peaks[0] > peaks[1] > peaks[2]

    def test_push_memory_bounded_by_buffer(self):
        g = random_graph(200, 8, seed=93)
        sizes_msg = 12
        buffer = 25
        result = run_job(
            g, PageRank(supersteps=3),
            JobConfig(mode="push", num_workers=2,
                      message_buffer_per_worker=buffer),
        )
        for step in result.metrics.supersteps:
            # each of the 2 workers holds at most B_i in-memory messages
            assert step.memory_bytes <= 2 * buffer * sizes_msg

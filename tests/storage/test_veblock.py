"""Unit tests for the VE-BLOCK layout (Section 4.1, Algorithms 1-2)."""

import pytest

from repro.core.graph import Graph, hash_partition, range_partition
from repro.storage.disk import SimulatedDisk
from repro.storage.records import DEFAULT_SIZES
from repro.storage.veblock import BlockLayout, VEBlockStore


def tiny_graph():
    # Appendix B's example: 5 vertices, v3 is the SSSP source.
    g = Graph(5, name="tiny")
    g.add_edge(0, 1, 1.0)
    g.add_edge(1, 0, 1.0)
    g.add_edge(2, 1, 0.8)
    g.add_edge(2, 3, 1.0)
    g.add_edge(2, 4, 2.0)
    g.add_edge(3, 4, 1.0)
    g.add_edge(4, 2, 1.0)
    return g


def build_store(graph, num_workers=2, blocks_per_worker=2, worker=0,
                clustering=True, partition=None):
    partition = partition or range_partition(graph.num_vertices, num_workers)
    layout = BlockLayout.build(
        partition, [blocks_per_worker] * num_workers
    )
    stores = []
    for w in range(num_workers):
        stores.append(
            VEBlockStore(
                graph,
                partition,
                w,
                layout,
                SimulatedDisk(),
                DEFAULT_SIZES,
                fragment_clustering=clustering,
            )
        )
    return layout, stores


class TestBlockLayout:
    def test_every_vertex_in_exactly_one_block(self):
        g = tiny_graph()
        layout, _ = build_store(g)
        seen = []
        for block in layout.block_vertices:
            seen.extend(block)
        assert sorted(seen) == list(range(g.num_vertices))

    def test_block_of_vertex_consistent(self):
        g = tiny_graph()
        layout, _ = build_store(g)
        for block_id, vertices in enumerate(layout.block_vertices):
            for v in vertices:
                assert layout.block_of_vertex[v] == block_id

    def test_block_owner_matches_partition(self):
        g = tiny_graph()
        partition = range_partition(g.num_vertices, 2)
        layout, _ = build_store(g, partition=partition)
        for block_id, vertices in enumerate(layout.block_vertices):
            for v in vertices:
                assert layout.block_owner[block_id] == partition.owner(v)

    def test_hash_partition_layout(self):
        g = tiny_graph()
        partition = hash_partition(g.num_vertices, 2)
        layout = BlockLayout.build(partition, [2, 2])
        seen = sorted(
            v for block in layout.block_vertices for v in block
        )
        assert seen == list(range(g.num_vertices))

    def test_more_blocks_than_vertices_clamped(self):
        g = Graph(2, [(0, 1)])
        partition = range_partition(2, 1)
        layout = BlockLayout.build(partition, [10])
        # at most one block per vertex
        assert layout.num_blocks <= 2
        assert all(len(b) >= 1 for b in layout.block_vertices)

    def test_blocks_of_worker(self):
        g = tiny_graph()
        layout, _ = build_store(g)
        blocks0 = layout.blocks_of(0)
        blocks1 = layout.blocks_of(1)
        assert set(blocks0) | set(blocks1) == set(range(layout.num_blocks))
        assert not set(blocks0) & set(blocks1)


class TestEBlocks:
    def test_edges_partition_exactly_into_eblocks(self):
        g = tiny_graph()
        layout, stores = build_store(g)
        seen = []
        for store in stores:
            for src_block in store.local_blocks:
                for dst_block in range(layout.num_blocks):
                    eb = store.eblock(src_block, dst_block)
                    if eb is None:
                        continue
                    for svertex, edges in eb.fragments:
                        for dst, weight in edges:
                            seen.append((svertex, dst, weight))
                            # the edge belongs in this eblock
                            assert layout.block_of_vertex[svertex] == src_block
                            assert layout.block_of_vertex[dst] == dst_block
        assert sorted(seen) == sorted(g.edges())

    def test_fragments_cluster_per_svertex(self):
        g = tiny_graph()
        layout, stores = build_store(g)
        for store in stores:
            for src_block in store.local_blocks:
                for dst_block in range(layout.num_blocks):
                    eb = store.eblock(src_block, dst_block)
                    if eb is None:
                        continue
                    svs = [sv for sv, _e in eb.fragments]
                    assert len(svs) == len(set(svs))  # one fragment per sv

    def test_clustering_ablation_one_fragment_per_edge(self):
        g = tiny_graph()
        _, stores = build_store(g, clustering=False)
        total_fragments = sum(s.total_fragments() for s in stores)
        assert total_fragments == g.num_edges

    def test_clustered_fragments_never_exceed_edges(self):
        g = tiny_graph()
        _, stores = build_store(g, clustering=True)
        total = sum(s.total_fragments() for s in stores)
        assert total <= g.num_edges

    def test_fragments_of_vertex_counts_distinct_blocks(self):
        g = tiny_graph()
        layout, stores = build_store(g)
        # vertex 2 has edges to 1, 3, 4
        blocks = {layout.block_of_vertex[d] for d in (1, 3, 4)}
        owner = layout.block_owner[layout.block_of_vertex[2]]
        assert stores[owner].fragments_of_vertex(2) == len(blocks)


class TestMetadata:
    def test_bitmap_marks_nonempty_eblocks(self):
        g = tiny_graph()
        layout, stores = build_store(g)
        for store in stores:
            for blk, meta in store.meta.items():
                for dst_block in meta.bitmap:
                    assert store.eblock(blk, dst_block) is not None
                # and nothing outside the bitmap exists
                for dst_block in range(layout.num_blocks):
                    if dst_block not in meta.bitmap:
                        assert store.eblock(blk, dst_block) is None

    def test_out_degree_metadata(self):
        g = tiny_graph()
        layout, stores = build_store(g)
        for store in stores:
            for blk, meta in store.meta.items():
                expected = sum(
                    g.out_degree(v) for v in layout.block_vertices[blk]
                )
                assert meta.out_degree == expected

    def test_in_degree_metadata(self):
        g = tiny_graph()
        layout, stores = build_store(g)
        in_degs = g.in_degrees()
        for store in stores:
            for blk, meta in store.meta.items():
                expected = sum(
                    in_degs[v] for v in layout.block_vertices[blk]
                )
                assert meta.in_degree == expected

    def test_refresh_res(self):
        g = tiny_graph()
        layout, stores = build_store(g)
        flags = [False] * g.num_vertices
        flags[2] = True
        for store in stores:
            store.refresh_res(flags)
        block_of_2 = layout.block_of_vertex[2]
        for store in stores:
            for blk, meta in store.meta.items():
                assert meta.res == (blk == block_of_2)

    def test_metadata_memory_positive(self):
        g = tiny_graph()
        _, stores = build_store(g)
        assert all(s.metadata_memory_bytes() > 0 for s in stores)


class TestScanForRequest:
    def _scan_all(self, g, flags, num_workers=2, blocks_per_worker=2):
        layout, stores = build_store(
            g, num_workers=num_workers, blocks_per_worker=blocks_per_worker
        )
        for s in stores:
            s.begin_superstep_stats()
            s.refresh_res(flags)
        produced = []
        for dst_block in range(layout.num_blocks):
            for s in stores:
                for svertex, edges in s.scan_for_request(dst_block, flags):
                    produced.extend((svertex, d) for d, _w in edges)
        return layout, stores, produced

    def test_yields_exactly_responding_out_edges(self):
        g = tiny_graph()
        flags = [False] * 5
        flags[2] = True
        flags[4] = True
        _, _, produced = self._scan_all(g, flags)
        expected = sorted(
            (s, d) for s, d, _w in g.edges() if flags[s]
        )
        assert sorted(produced) == expected

    def test_no_flags_scans_nothing(self):
        g = tiny_graph()
        layout, stores, produced = self._scan_all(g, [False] * 5)
        assert produced == []
        for s in stores:
            assert s.scan_stats == (0, 0, 0, 0)
            assert s._disk.counters.total == 0  # metadata checks are free

    def test_scan_charges_whole_eblock_sequentially(self):
        g = tiny_graph()
        flags = [True] * 5
        _, stores, _ = self._scan_all(g, flags)
        sizes = DEFAULT_SIZES
        for s in stores:
            edges, aux, edge_bytes, vrr = s.scan_stats
            assert edge_bytes == sizes.edges(edges)
            # all fragments responding -> one random value read each
            assert vrr == sizes.vertex_value * s.total_fragments()
            assert s._disk.counters.seq_read == aux + edge_bytes
            assert s._disk.counters.random_read == vrr

    def test_estimate_matches_scan_when_all_respond(self):
        g = tiny_graph()
        flags = [True] * 5
        _, stores, _ = self._scan_all(g, flags)
        for s in stores:
            edge_est, aux_est, vrr_est = s.estimate_bpull_scan(flags)
            _e, aux, edge_bytes, vrr = s.scan_stats
            assert edge_est == edge_bytes
            assert aux_est == aux
            assert vrr_est == vrr

    def test_estimate_subset_flags(self):
        g = tiny_graph()
        flags = [False] * 5
        flags[0] = True
        _, stores, _ = self._scan_all(g, flags)
        for s in stores:
            edge_est, aux_est, vrr_est = s.estimate_bpull_scan(flags)
            _e, aux, edge_bytes, vrr = s.scan_stats
            assert (edge_est, aux_est, vrr_est) == (edge_bytes, aux, vrr)


class TestLoading:
    def test_load_write_bytes_cover_vertices_edges_aux(self):
        g = tiny_graph()
        _, stores = build_store(g)
        sizes = DEFAULT_SIZES
        total = sum(s.load_write_bytes() for s in stores)
        expected = (
            sizes.vertices(g.num_vertices)
            + sizes.edges(g.num_edges)
            + sizes.fragments(sum(s.total_fragments() for s in stores))
        )
        assert total == expected

    def test_charge_load_hits_disk(self):
        g = tiny_graph()
        _, stores = build_store(g)
        store = stores[0]
        store.charge_load()
        assert store._disk.counters.seq_write == store.load_write_bytes()

    def test_charge_block_update_reads_and_writes(self):
        g = tiny_graph()
        layout, stores = build_store(g)
        store = stores[0]
        blk = store.local_blocks[0]
        nbytes = store.charge_block_update(blk)
        expected = DEFAULT_SIZES.vertices(len(layout.block_vertices[blk]))
        assert nbytes == 2 * expected
        assert store._disk.counters.seq_read == expected
        assert store._disk.counters.seq_write == expected

"""Unit tests for the adjacency-list store (push-family layout)."""

from repro.core.graph import Graph
from repro.storage.adjacency import AdjacencyStore
from repro.storage.disk import SimulatedDisk
from repro.storage.records import DEFAULT_SIZES


def make_store():
    g = Graph(4, [(0, 1), (0, 2), (1, 2), (2, 3)])
    disk = SimulatedDisk()
    store = AdjacencyStore(g, [0, 1], disk, DEFAULT_SIZES)
    return g, store, disk


class TestAdjacencyStore:
    def test_load_write_bytes_counts_local_slice_only(self):
        _g, store, _disk = make_store()
        # vertices 0, 1 with 3 outgoing edges between them
        expected = DEFAULT_SIZES.vertices(2) + DEFAULT_SIZES.edges(3)
        assert store.load_write_bytes() == expected

    def test_charge_load_sequential(self):
        _g, store, disk = make_store()
        store.charge_load()
        assert disk.counters.seq_write == store.load_write_bytes()
        assert disk.counters.random_write == 0

    def test_read_out_edges_returns_edges_and_charges_block(self):
        g, store, disk = make_store()
        store.begin_superstep()
        edges, charged = store.read_out_edges(0)
        assert [d for d, _w in edges] == [1, 2]
        # blocks hold 64 vertices, so both local vertices (3 edges) are
        # in the same block and the first touch charges them all.
        assert charged == DEFAULT_SIZES.edges(3)
        assert disk.counters.seq_read == charged

    def test_second_touch_of_block_is_free(self):
        _g, store, disk = make_store()
        store.begin_superstep()
        store.read_out_edges(0)
        _edges, charged = store.read_out_edges(1)
        assert charged == 0
        assert disk.counters.seq_read == DEFAULT_SIZES.edges(3)

    def test_begin_superstep_recharges(self):
        _g, store, disk = make_store()
        store.begin_superstep()
        store.read_out_edges(0)
        store.begin_superstep()
        _edges, charged = store.read_out_edges(1)
        assert charged == DEFAULT_SIZES.edges(3)

    def test_block_granularity_one(self):
        g = Graph(4, [(0, 1), (0, 2), (1, 2), (2, 3)])
        disk = SimulatedDisk()
        store = AdjacencyStore(g, [0, 1], disk, DEFAULT_SIZES,
                               block_vertices=1)
        store.begin_superstep()
        _edges, charged = store.read_out_edges(0)
        assert charged == DEFAULT_SIZES.edges(2)  # only vertex 0's edges

    def test_estimate_edge_bytes(self):
        g = Graph(4, [(0, 1), (0, 2), (1, 2), (2, 3)])
        disk = SimulatedDisk()
        store = AdjacencyStore(g, [0, 1], disk, DEFAULT_SIZES,
                               block_vertices=1)
        flags = [True, False, False, False]
        assert store.estimate_edge_bytes(flags) == DEFAULT_SIZES.edges(2)
        flags = [True, True, False, False]
        assert store.estimate_edge_bytes(flags) == DEFAULT_SIZES.edges(3)

    def test_vertex_record_charges(self):
        _g, store, disk = make_store()
        store.read_vertex(0)
        store.write_vertex(0)
        assert disk.counters.seq_read == DEFAULT_SIZES.vertex_record
        assert disk.counters.seq_write == DEFAULT_SIZES.vertex_record

    def test_num_local_edges(self):
        _g, store, _disk = make_store()
        assert store.num_local_edges == 3

    def test_disabled_disk_returns_edges_without_charges(self):
        g = Graph(2, [(0, 1)])
        disk = SimulatedDisk(enabled=False)
        store = AdjacencyStore(g, [0], disk, DEFAULT_SIZES)
        store.begin_superstep()
        edges, _charged = store.read_out_edges(0)
        assert edges == [(1, 1.0)]
        assert disk.counters.total == 0

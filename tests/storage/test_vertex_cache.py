"""Unit tests for the LRU vertex cache (pull baseline's disk extension)."""

from repro.storage.disk import SimulatedDisk
from repro.storage.records import DEFAULT_SIZES
from repro.storage.vertex_cache import DEFAULT_BLOCK_BYTES, LRUVertexCache


def make(capacity, block_bytes=DEFAULT_BLOCK_BYTES):
    disk = SimulatedDisk()
    cache = LRUVertexCache(capacity, DEFAULT_SIZES, disk, block_bytes)
    return cache, disk


class TestLRUVertexCache:
    def test_miss_then_hit(self):
        cache, _ = make(capacity=2)
        assert cache.access(1) is False
        assert cache.access(1) is True
        assert cache.misses == 1
        assert cache.hits == 1

    def test_miss_charges_block_random_read(self):
        cache, disk = make(capacity=2)
        cache.access(1)
        assert disk.counters.random_read == DEFAULT_BLOCK_BYTES

    def test_hit_is_free(self):
        cache, disk = make(capacity=2)
        cache.access(1)
        before = disk.counters.total
        cache.access(1)
        assert disk.counters.total == before

    def test_lru_eviction_order(self):
        cache, _ = make(capacity=2)
        cache.access(1)
        cache.access(2)
        cache.access(1)  # 2 is now LRU
        cache.access(3)  # evicts 2
        assert cache.access(1) is True
        assert cache.access(2) is False

    def test_dirty_eviction_charges_random_write(self):
        cache, disk = make(capacity=1)
        cache.access(1, dirty=True)
        cache.access(2)  # evicts dirty 1
        assert disk.counters.random_write == DEFAULT_BLOCK_BYTES

    def test_clean_eviction_free_write(self):
        cache, disk = make(capacity=1)
        cache.access(1)
        cache.access(2)
        assert disk.counters.random_write == 0

    def test_hit_can_mark_dirty(self):
        cache, disk = make(capacity=1)
        cache.access(1)
        cache.access(1, dirty=True)
        cache.access(2)  # evicts 1, now dirty
        assert disk.counters.random_write == DEFAULT_BLOCK_BYTES

    def test_capacity_none_all_hits_no_io(self):
        cache, disk = make(capacity=None)
        for i in range(100):
            cache.access(i, dirty=True)
        assert cache.misses == 0
        assert disk.counters.total == 0

    def test_resident_never_exceeds_capacity(self):
        cache, _ = make(capacity=3)
        for i in range(10):
            cache.access(i)
            assert cache.resident <= 3

    def test_reset_stats(self):
        cache, _ = make(capacity=2)
        cache.access(1)
        cache.access(1)
        cache.reset_stats()
        assert cache.hits == 0
        assert cache.misses == 0

    def test_memory_bytes(self):
        cache, _ = make(capacity=4)
        cache.access(1)
        cache.access(2)
        assert cache.memory_bytes == 2 * DEFAULT_SIZES.vertex_record

    def test_block_never_smaller_than_record(self):
        cache, disk = make(capacity=1, block_bytes=1)
        cache.access(1)
        assert disk.counters.random_read == DEFAULT_SIZES.vertex_record

"""Unit tests for record layouts and byte-size arithmetic."""

from repro.storage.records import DEFAULT_SIZES, RecordSizes


class TestDefaultSizes:
    def test_vertex_record_layout(self):
        # (id, val, |Vo|) = 4 + 8 + 4
        assert DEFAULT_SIZES.vertex_record == 16

    def test_theorem2_premises_hold(self):
        # Theorem 2's proof needs S_m >= S_v, S_m >= S_f and S_m >= S_e.
        s = DEFAULT_SIZES
        assert s.message >= s.vertex_value
        assert s.message >= s.fragment_aux
        assert s.message >= s.edge

    def test_bulk_helpers_scale_linearly(self):
        s = DEFAULT_SIZES
        assert s.messages(10) == 10 * s.message
        assert s.edges(7) == 7 * s.edge
        assert s.vertices(3) == 3 * s.vertex_record
        assert s.fragments(5) == 5 * s.fragment_aux


class TestConcatenationArithmetic:
    def test_concatenated_cheaper_than_plain(self):
        s = DEFAULT_SIZES
        # 10 values for 2 destination vertices
        assert s.concatenated(10, 2) < s.messages(10)

    def test_concatenated_equals_plain_when_all_distinct(self):
        s = DEFAULT_SIZES
        # one value per destination: same byte count as plain messages
        assert s.concatenated(5, 5) == s.messages(5)

    def test_combined_is_one_message_per_group(self):
        s = DEFAULT_SIZES
        assert s.combined(4) == 4 * s.message

    def test_combined_cheapest_for_shared_destination(self):
        s = DEFAULT_SIZES
        values, groups = 100, 3
        assert (
            s.combined(groups)
            < s.concatenated(values, groups)
            < s.messages(values)
        )


class TestCustomSizes:
    def test_custom_layout(self):
        s = RecordSizes(vertex_id=8, vertex_value=16, edge=16, message=24)
        assert s.vertex_record == 8 + 16 + 4
        assert s.messages(2) == 48

    def test_frozen(self):
        import dataclasses

        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_SIZES.message = 1  # type: ignore[misc]

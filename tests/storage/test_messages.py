"""Unit tests for the receiver-side message stores."""

from repro.storage.disk import SimulatedDisk
from repro.storage.messages import OnlineMessageStore, SpillingMessageStore
from repro.storage.records import DEFAULT_SIZES


def make_spilling(capacity, combine=None):
    disk = SimulatedDisk()
    store = SpillingMessageStore(capacity, DEFAULT_SIZES, disk, combine)
    return store, disk


class TestSpillingMessageStore:
    def test_deposits_below_capacity_stay_in_memory(self):
        store, disk = make_spilling(capacity=3)
        for i in range(3):
            store.deposit(i, float(i))
        assert store.total_spilled == 0
        assert disk.counters.total == 0
        assert store.pending_count == 3

    def test_overflow_spills_with_random_writes(self):
        store, disk = make_spilling(capacity=2)
        for i in range(5):
            store.deposit(i, float(i))
        assert store.total_spilled == 3
        assert disk.counters.random_write == DEFAULT_SIZES.messages(3)

    def test_unlimited_capacity_never_spills(self):
        store, disk = make_spilling(capacity=None)
        for i in range(1000):
            store.deposit(i % 7, float(i))
        assert store.total_spilled == 0
        assert disk.counters.total == 0

    def test_load_merges_memory_and_spill(self):
        store, _disk = make_spilling(capacity=2)
        store.deposit(0, 1.0)
        store.deposit(1, 2.0)
        store.deposit(0, 3.0)  # spilled
        result = store.load()
        assert sorted(result.messages[0]) == [1.0, 3.0]
        assert result.messages[1] == [2.0]
        assert result.spilled_count == 1

    def test_load_charges_sequential_read_of_spill(self):
        store, disk = make_spilling(capacity=1)
        store.deposit(0, 1.0)
        store.deposit(1, 2.0)  # spilled
        before = disk.counters.seq_read
        result = store.load()
        assert result.spilled_read == DEFAULT_SIZES.messages(1)
        assert disk.counters.seq_read - before == result.spilled_read

    def test_load_resets_store(self):
        store, _disk = make_spilling(capacity=1)
        store.deposit(0, 1.0)
        store.deposit(1, 2.0)
        store.load()
        assert store.pending_count == 0
        assert store.memory_bytes == 0
        assert store.load().messages == {}

    def test_receiver_combine_merges_in_memory(self):
        store, disk = make_spilling(capacity=10, combine=lambda a, b: a + b)
        store.deposit(0, 1.0)
        store.deposit(0, 2.0)
        store.deposit(0, 4.0)
        result = store.load()
        assert result.messages[0] == [7.0]
        assert disk.counters.total == 0

    def test_combine_does_not_consume_extra_slots(self):
        store, _disk = make_spilling(capacity=1, combine=lambda a, b: a + b)
        for _ in range(5):
            store.deposit(0, 1.0)
        assert store.total_spilled == 0  # all combined into one slot

    def test_memory_bytes_tracks_in_memory_messages(self):
        store, _disk = make_spilling(capacity=2)
        store.deposit(0, 1.0)
        assert store.memory_bytes == DEFAULT_SIZES.message
        store.deposit(1, 1.0)
        store.deposit(2, 1.0)  # spilled, not counted as memory
        assert store.memory_bytes == 2 * DEFAULT_SIZES.message


class TestOnlineMessageStore:
    def make(self, hot):
        disk = SimulatedDisk()
        store = OnlineMessageStore(
            hot, DEFAULT_SIZES, disk, combine=lambda a, b: a + b
        )
        return store, disk

    def test_hot_messages_combined_online_no_disk(self):
        store, disk = self.make(hot=[0, 1])
        store.deposit(0, 1.0)
        store.deposit(0, 2.0)
        store.deposit(1, 5.0)
        assert disk.counters.total == 0
        result = store.load()
        assert result.messages == {0: [3.0], 1: [5.0]}

    def test_cold_messages_spill(self):
        store, disk = self.make(hot=[0])
        store.deposit(9, 1.0)
        store.deposit(9, 2.0)
        assert store.total_spilled == 2
        assert disk.counters.random_write == DEFAULT_SIZES.messages(2)
        result = store.load()
        assert result.messages[9] == [1.0, 2.0]
        assert result.spilled_count == 2

    def test_memory_bytes_counts_accumulators(self):
        store, _disk = self.make(hot=[0, 1, 2])
        store.deposit(0, 1.0)
        store.deposit(0, 1.0)
        store.deposit(2, 1.0)
        assert store.memory_bytes == 2 * DEFAULT_SIZES.message

    def test_load_resets(self):
        store, _disk = self.make(hot=[0])
        store.deposit(0, 1.0)
        store.deposit(5, 1.0)
        store.load()
        assert store.pending_count == 0
        assert store.load().messages == {}

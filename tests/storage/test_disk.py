"""Unit tests for the simulated disk and throughput profiles."""

import pytest

from repro.storage.disk import (
    DiskProfile,
    HDD_PROFILE,
    IOCounters,
    SimulatedDisk,
    SSD_PROFILE,
)


class TestIOCounters:
    def test_starts_at_zero(self):
        c = IOCounters()
        assert c.total == 0
        assert c.read == 0
        assert c.write == 0

    def test_read_write_totals(self):
        c = IOCounters(random_read=1, random_write=2, seq_read=4, seq_write=8)
        assert c.read == 5
        assert c.write == 10
        assert c.total == 15

    def test_add_accumulates(self):
        a = IOCounters(random_read=1, seq_write=3)
        b = IOCounters(random_read=2, random_write=5)
        a.add(b)
        assert a.random_read == 3
        assert a.random_write == 5
        assert a.seq_write == 3

    def test_copy_is_independent(self):
        a = IOCounters(seq_read=7)
        b = a.copy()
        b.seq_read += 1
        assert a.seq_read == 7

    def test_plus_operator(self):
        a = IOCounters(random_read=1)
        b = IOCounters(random_read=2, seq_read=3)
        c = a + b
        assert c.random_read == 3
        assert c.seq_read == 3
        assert a.random_read == 1  # unchanged


class TestSimulatedDisk:
    def test_read_classifies_by_pattern(self):
        disk = SimulatedDisk()
        disk.read(100, sequential=True)
        disk.read(50, sequential=False)
        assert disk.counters.seq_read == 100
        assert disk.counters.random_read == 50

    def test_write_classifies_by_pattern(self):
        disk = SimulatedDisk()
        disk.write(30, sequential=True)
        disk.write(20, sequential=False)
        assert disk.counters.seq_write == 30
        assert disk.counters.random_write == 20

    def test_disabled_disk_charges_nothing(self):
        disk = SimulatedDisk(enabled=False)
        disk.read(1000, sequential=True)
        disk.write(1000, sequential=False)
        assert disk.counters.total == 0

    def test_zero_and_negative_amounts_ignored(self):
        disk = SimulatedDisk()
        disk.read(0, sequential=True)
        disk.write(-5, sequential=True)
        assert disk.counters.total == 0

    def test_snapshot_does_not_reset(self):
        disk = SimulatedDisk()
        disk.read(10, sequential=True)
        snap = disk.snapshot()
        disk.read(10, sequential=True)
        assert snap.seq_read == 10
        assert disk.counters.seq_read == 20

    def test_drain_resets(self):
        disk = SimulatedDisk()
        disk.write(10, sequential=False)
        drained = disk.drain()
        assert drained.random_write == 10
        assert disk.counters.total == 0


class TestDiskProfile:
    def test_table3_random_throughputs(self):
        # The paper's fio-measured random throughputs (Table 3).
        assert HDD_PROFILE.random_read_mbps == pytest.approx(1.177)
        assert HDD_PROFILE.random_write_mbps == pytest.approx(1.182)
        assert SSD_PROFILE.random_read_mbps == pytest.approx(18.177)
        assert SSD_PROFILE.random_write_mbps == pytest.approx(18.194)

    def test_network_throughputs(self):
        assert HDD_PROFILE.network_mbps == pytest.approx(112.0)
        assert SSD_PROFILE.network_mbps == pytest.approx(116.0)

    def test_io_seconds_uses_per_class_speeds(self):
        profile = DiskProfile(
            name="t",
            random_read_mbps=1.0,
            random_write_mbps=2.0,
            seq_read_mbps=4.0,
            seq_write_mbps=8.0,
            network_mbps=10.0,
        )
        mb = 1024 * 1024
        counters = IOCounters(
            random_read=mb, random_write=mb, seq_read=mb, seq_write=mb
        )
        assert profile.io_seconds(counters) == pytest.approx(
            1.0 + 0.5 + 0.25 + 0.125
        )

    def test_net_seconds(self):
        profile = HDD_PROFILE
        assert profile.net_seconds(112 * 1024 * 1024) == pytest.approx(1.0)

    def test_ssd_faster_than_hdd_for_random(self):
        counters = IOCounters(random_read=10**6, random_write=10**6)
        assert SSD_PROFILE.io_seconds(counters) < HDD_PROFILE.io_seconds(
            counters
        )

"""Pool hardening: child death and hangs must not corrupt or leak.

An unplanned SIGKILL (or a hung child) during a pool round is detected
by the liveness/timeout checks in ``_ParallelPool._attempt_round``; the
pool re-forks once and replays the round, and only a second consecutive
failure escalates to :class:`WorkerFailure` (the engine's recovery
policy).  Either way the job must end with no orphan processes and no
leaked ``/dev/shm`` segments, and — because replayed rounds are pure
for the batched tier and snapshot-restored for the vectorized tier —
with metrics byte-identical to the sequential run.
"""

import json
import multiprocessing
import os
import signal

import pytest

from repro.algorithms.pagerank import PageRank
from repro.core.config import FaultPlan, JobConfig
from repro.core.engine import run_job
from repro.core.modes import parallel as parallel_mod
from repro.datasets.generators import random_graph

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="pool hardening requires the fork start method",
)


def _graph():
    return random_graph(200, 6, seed=5)


def _dump(result):
    payload = result.metrics.to_dict()
    payload.pop("fallback", None)
    return json.dumps(payload, sort_keys=True)


def _shm_segments():
    try:
        return {
            name for name in os.listdir("/dev/shm")
            if name.startswith("psm_")
        }
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


@pytest.fixture()
def harmed_pool(monkeypatch):
    """Arm the next pool round with *harm* (SIGKILL/SIGSTOP one child).

    Patches ``_attempt_round`` so the first round of the job harms one
    child before running; records the pool so tests can assert on its
    ``reforks`` counter after the job finished.
    """
    state = {"armed": None, "pool": None}
    original = parallel_mod._ParallelPool._attempt_round

    def patched(self, label, messages):
        state["pool"] = self
        harm = state["armed"]
        if harm is not None:
            state["armed"] = None
            victim = self.procs[0]
            os.kill(victim.pid, harm)
            if harm == signal.SIGKILL:
                victim.join(timeout=10)

    monkeypatch.setattr(
        parallel_mod._ParallelPool, "_attempt_round",
        lambda self, label, messages: (
            patched(self, label, messages),
            original(self, label, messages),
        )[1],
    )
    return state


class TestReforkRetry:
    @pytest.mark.parametrize("executor", ["batched", "vectorized"])
    def test_unplanned_sigkill_is_retried_transparently(
        self, harmed_pool, executor
    ):
        cfg = JobConfig(mode="push", num_workers=4, executor=executor,
                        message_buffer_per_worker=100, max_supersteps=5)
        expected = _dump(run_job(_graph(), PageRank(), cfg))
        harmed_pool["armed"] = signal.SIGKILL
        before = _shm_segments()
        result = run_job(_graph(), PageRank(), cfg.but(parallelism=2))
        assert _dump(result) == expected
        # the death was absorbed by one re-fork, not a job restart.
        assert harmed_pool["pool"].reforks == 1
        assert result.metrics.restarts == 0
        assert multiprocessing.active_children() == []
        assert _shm_segments() <= before

    def test_hung_child_times_out_and_is_retried(self, harmed_pool):
        cfg = JobConfig(mode="push", num_workers=4,
                        message_buffer_per_worker=100, max_supersteps=4,
                        pool_round_timeout_seconds=1.0)
        expected = _dump(run_job(_graph(), PageRank(), cfg))
        harmed_pool["armed"] = signal.SIGSTOP
        result = run_job(_graph(), PageRank(), cfg.but(parallelism=2))
        assert _dump(result) == expected
        assert harmed_pool["pool"].reforks == 1
        assert result.metrics.restarts == 0
        assert multiprocessing.active_children() == []


class TestPlannedKill:
    @pytest.mark.parametrize("executor", ["batched", "vectorized"])
    def test_kill_fault_recovery_matches_sequential(self, executor):
        cfg = JobConfig(mode="hybrid", num_workers=4, executor=executor,
                        message_buffer_per_worker=100, max_supersteps=6,
                        fault=FaultPlan(worker=1, superstep=3,
                                        kind="kill"),
                        checkpoint_interval=2)
        expected = _dump(run_job(_graph(), PageRank(), cfg))
        before = _shm_segments()
        result = run_job(_graph(), PageRank(), cfg.but(parallelism=2))
        assert _dump(result) == expected
        assert result.metrics.restarts == 1
        assert result.metrics.recoveries[0]["kind"] == "kill"
        assert multiprocessing.active_children() == []
        assert _shm_segments() <= before

    def test_kill_scratch_recovery_matches_sequential(self):
        # no checkpoints: the SIGKILL forces recompute-from-scratch
        # with a freshly forked pool.
        cfg = JobConfig(mode="push", num_workers=4,
                        message_buffer_per_worker=100, max_supersteps=5,
                        fault=FaultPlan(worker=2, superstep=3,
                                        kind="kill"))
        expected = _dump(run_job(_graph(), PageRank(), cfg))
        result = run_job(_graph(), PageRank(), cfg.but(parallelism=2))
        assert _dump(result) == expected
        assert result.metrics.recoveries[0]["policy"] == "scratch"
        assert result.runtime._pool is None
        assert multiprocessing.active_children() == []

    def test_kill_on_first_parallel_superstep_forks_then_kills(self):
        # the fault fires before any round ran: kill_pool_worker must
        # fork the pool just to kill the child, and recovery proceeds.
        cfg = JobConfig(mode="push", num_workers=4, parallelism=2,
                        message_buffer_per_worker=100, max_supersteps=4,
                        fault=FaultPlan(worker=0, superstep=1,
                                        kind="kill"))
        result = run_job(_graph(), PageRank(), cfg)
        assert result.metrics.restarts == 1
        assert multiprocessing.active_children() == []


class TestNoLeaks:
    def test_vectorized_fault_run_leaves_no_shm(self):
        before = _shm_segments()
        run_job(_graph(), PageRank(), JobConfig(
            mode="push", num_workers=4, parallelism=4,
            executor="vectorized", message_buffer_per_worker=100,
            max_supersteps=6, checkpoint_interval=2,
            fault=FaultPlan(worker=1, superstep=3, kind="kill",
                            repeat=2),
        ))
        assert _shm_segments() <= before
        assert multiprocessing.active_children() == []

    def test_exhausted_restarts_still_clean_up(self):
        before = _shm_segments()
        with pytest.raises(Exception):
            run_job(_graph(), PageRank(), JobConfig(
                mode="push", num_workers=4, parallelism=2,
                executor="vectorized",
                message_buffer_per_worker=100, max_supersteps=5,
                max_restarts=1,
                fault=FaultPlan(worker=1, superstep=2, kind="kill",
                                repeat=5),
            ))
        assert _shm_segments() <= before
        assert multiprocessing.active_children() == []

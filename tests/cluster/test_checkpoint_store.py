"""Durable checkpoint store: format, atomicity, retention, corruption."""

import os

import pytest

from repro.cluster.checkpoint import Checkpoint
from repro.cluster.checkpoint_store import (
    CheckpointStore,
    CorruptSnapshot,
    MAGIC,
)
from repro.core.metrics import JobMetrics


def _checkpoint(superstep, value=1.0):
    return Checkpoint(
        superstep=superstep,
        prev_mode="push",
        values=[value] * 8,
        resp_prev=[True] * 8,
        stores={},
        controller_state=None,
        nbytes=128,
        aggregates={"sum": value * 8},
    )


def _metrics():
    return JobMetrics(mode="push", num_workers=2, graph_name="g",
                      program_name="PageRank")


class TestRoundTrip:
    def test_save_then_load_latest(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        path = store.save(_checkpoint(3, value=0.5), _metrics())
        assert os.path.exists(path)
        restored = store.load_latest()
        assert restored is not None
        assert restored.checkpoint.superstep == 3
        assert restored.checkpoint.values == [0.5] * 8
        assert restored.checkpoint.aggregates == {"sum": 4.0}
        assert restored.metrics is not None
        assert restored.metrics.mode == "push"
        assert restored.path == path
        assert restored.skipped == []

    def test_metrics_section_is_optional(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save(_checkpoint(1))
        restored = store.load_latest()
        assert restored.checkpoint.superstep == 1
        assert restored.metrics is None

    def test_empty_directory_loads_none(self, tmp_path):
        assert CheckpointStore(str(tmp_path)).load_latest() is None

    def test_newest_snapshot_wins(self, tmp_path):
        store = CheckpointStore(str(tmp_path), keep_last=3)
        for superstep in (2, 4, 6):
            store.save(_checkpoint(superstep))
        assert store.load_latest().checkpoint.superstep == 6

    def test_max_superstep_bounds_the_search(self, tmp_path):
        store = CheckpointStore(str(tmp_path), keep_last=3)
        for superstep in (2, 4, 6):
            store.save(_checkpoint(superstep))
        assert store.load_latest(max_superstep=5).checkpoint.superstep == 4
        assert store.load_latest(max_superstep=4).checkpoint.superstep == 4
        assert store.load_latest(max_superstep=1) is None
        # out-of-bound files are ignored, not reported as skipped
        assert store.load_latest(max_superstep=5).skipped == []

    def test_max_superstep_ignores_unparsable_names(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save(_checkpoint(2))
        (tmp_path / "ckpt-garbage.bin").write_bytes(b"junk")
        assert store.load_latest(max_superstep=9).checkpoint.superstep == 2

    def test_owned_only_ignores_stale_files(self, tmp_path):
        CheckpointStore(str(tmp_path), keep_last=3).save(_checkpoint(6))
        store = CheckpointStore(str(tmp_path), keep_last=3)
        assert store.load_latest(owned_only=True) is None
        store.save(_checkpoint(2))
        assert store.load_latest().checkpoint.superstep == 6
        assert store.load_latest(
            owned_only=True).checkpoint.superstep == 2

    def test_adopt_claims_a_preexisting_file(self, tmp_path):
        path = CheckpointStore(str(tmp_path)).save(_checkpoint(4))
        store = CheckpointStore(str(tmp_path))
        store.adopt(path)
        assert store.load_latest(
            owned_only=True).checkpoint.superstep == 4

    def test_file_starts_with_magic(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        path = store.save(_checkpoint(1))
        with open(path, "rb") as fh:
            assert fh.read(len(MAGIC)) == MAGIC


class TestAtomicityAndRetention:
    def test_no_temp_files_left_behind(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        for superstep in (1, 2, 3):
            store.save(_checkpoint(superstep))
        leftovers = [
            name for name in os.listdir(tmp_path)
            if not (name.startswith("ckpt-") and name.endswith(".bin"))
        ]
        assert leftovers == []

    def test_keep_last_k_retention(self, tmp_path):
        store = CheckpointStore(str(tmp_path), keep_last=2)
        for superstep in range(1, 6):
            store.save(_checkpoint(superstep))
        names = [os.path.basename(p) for p in store.files()]
        assert names == ["ckpt-00000004.bin", "ckpt-00000005.bin"]

    def test_resaving_same_superstep_replaces(self, tmp_path):
        store = CheckpointStore(str(tmp_path), keep_last=2)
        store.save(_checkpoint(2, value=1.0))
        store.save(_checkpoint(2, value=9.0))
        assert len(store.files()) == 1
        assert store.load_latest().checkpoint.values == [9.0] * 8

    def test_retention_never_deletes_foreign_files(self, tmp_path):
        # a previous run's snapshots must not count against keep_last,
        # and must never be unlinked by a new run's retention.
        CheckpointStore(str(tmp_path), keep_last=3).save(_checkpoint(8))
        store = CheckpointStore(str(tmp_path), keep_last=1)
        store.save(_checkpoint(1))
        store.save(_checkpoint(2))
        names = [os.path.basename(p) for p in store.files()]
        assert names == ["ckpt-00000002.bin", "ckpt-00000008.bin"]

    def test_corrupt_latest_owned_only_spares_stale_files(self, tmp_path):
        CheckpointStore(str(tmp_path), keep_last=3).save(_checkpoint(8))
        store = CheckpointStore(str(tmp_path), keep_last=3)
        assert store.corrupt_latest(owned_only=True) is None
        store.save(_checkpoint(2))
        hit = store.corrupt_latest(owned_only=True)
        assert hit is not None and hit.name == "ckpt-00000002.bin"
        # the stale file is untouched and still loads
        assert store.load_latest().checkpoint.superstep == 8


class TestCorruptionFallback:
    def test_corrupt_latest_falls_back_to_previous(self, tmp_path):
        store = CheckpointStore(str(tmp_path), keep_last=3)
        store.save(_checkpoint(2))
        store.save(_checkpoint(4))
        assert store.corrupt_latest() is not None
        restored = store.load_latest()
        assert restored.checkpoint.superstep == 2
        assert len(restored.skipped) == 1
        assert "ckpt-00000004.bin" in restored.skipped[0]

    def test_all_corrupt_loads_none(self, tmp_path):
        store = CheckpointStore(str(tmp_path), keep_last=3)
        store.save(_checkpoint(2))
        store.save(_checkpoint(4))
        assert store.corrupt_latest() is not None
        assert store.corrupt_latest() is not None
        assert store.load_latest() is None

    def test_truncated_file_falls_back(self, tmp_path):
        store = CheckpointStore(str(tmp_path), keep_last=3)
        store.save(_checkpoint(2))
        newest = store.save(_checkpoint(4))
        size = os.path.getsize(newest)
        with open(newest, "r+b") as fh:
            fh.truncate(size // 2)
        assert store.load_latest().checkpoint.superstep == 2

    def test_bad_magic_falls_back(self, tmp_path):
        store = CheckpointStore(str(tmp_path), keep_last=3)
        store.save(_checkpoint(2))
        newest = store.save(_checkpoint(4))
        with open(newest, "r+b") as fh:
            fh.write(b"NOTACKPT")
        assert store.load_latest().checkpoint.superstep == 2

    def test_empty_file_falls_back(self, tmp_path):
        store = CheckpointStore(str(tmp_path), keep_last=3)
        store.save(_checkpoint(2))
        newest = store.save(_checkpoint(4))
        with open(newest, "wb"):
            pass
        assert store.load_latest().checkpoint.superstep == 2

    def test_crc_mismatch_raises_on_direct_load(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        path = store.save(_checkpoint(2))
        store.corrupt_latest()
        with pytest.raises(CorruptSnapshot):
            store._load_file(path)

    def test_corrupt_latest_on_empty_store_is_none(self, tmp_path):
        assert CheckpointStore(str(tmp_path)).corrupt_latest() is None

"""Regression tests: ``metrics.checkpoints`` hygiene across recovery.

Both recovery paths must leave the checkpoint log consistent with the
supersteps that actually survived:

* restoring a snapshot discards the supersteps after it, so any
  checkpoint entries recorded past the restore point are stale and must
  be trimmed (re-execution re-appends the ones that happen again);
* recompute-from-scratch discards everything, so the log must be
  cleared along with ``supersteps``/``mode_trace``.
"""

from repro.algorithms.pagerank import PageRank
from repro.core.config import FaultPlan, JobConfig
from repro.core.engine import _reset_metrics, _rewind_metrics, run_job
from repro.core.metrics import JobMetrics
from repro.datasets.generators import random_graph


def cfg(**kwargs):
    kwargs.setdefault("message_buffer_per_worker", 20)
    return JobConfig(mode="push", num_workers=3, **kwargs)


def stale_metrics():
    """A metrics object recorded up to superstep 6, checkpoints at 2/4/6."""
    metrics = JobMetrics(
        mode="push", graph_name="g", program_name="p", num_workers=3
    )
    metrics.mode_trace = ["push"] * 6
    metrics.supersteps = [object()] * 6  # content irrelevant here
    metrics.checkpoints = [(2, 100, 0.1), (4, 100, 0.1), (6, 100, 0.1)]
    return metrics


class TestRewindHelpers:
    def test_rewind_trims_checkpoints_past_restore_point(self):
        metrics = stale_metrics()
        _rewind_metrics(metrics, 4)
        assert len(metrics.supersteps) == 4
        assert len(metrics.mode_trace) == 4
        assert [t for t, _b, _s in metrics.checkpoints] == [2, 4]

    def test_rewind_keeps_checkpoint_at_restore_point(self):
        metrics = stale_metrics()
        _rewind_metrics(metrics, 6)
        assert [t for t, _b, _s in metrics.checkpoints] == [2, 4, 6]

    def test_reset_clears_checkpoints(self):
        metrics = stale_metrics()
        _reset_metrics(metrics)
        assert metrics.supersteps == []
        assert metrics.mode_trace == []
        assert metrics.checkpoints == []


class TestCheckpointLogAfterRecovery:
    def test_restore_path_matches_clean_run(self):
        g = random_graph(90, 5, seed=73)
        clean = run_job(g, PageRank(supersteps=8),
                        cfg(checkpoint_interval=2))
        faulty = run_job(
            g, PageRank(supersteps=8),
            cfg(checkpoint_interval=2,
                fault=FaultPlan(worker=1, superstep=7)),
        )
        assert faulty.metrics.recovered_from == 6
        assert faulty.metrics.checkpoints == clean.metrics.checkpoints
        taken = [t for t, _b, _s in faulty.metrics.checkpoints]
        assert taken == sorted(set(taken))  # no duplicates, increasing

    def test_fault_before_first_checkpoint_uses_scratch_path(self):
        g = random_graph(90, 5, seed=73)
        clean = run_job(g, PageRank(supersteps=8),
                        cfg(checkpoint_interval=4))
        faulty = run_job(
            g, PageRank(supersteps=8),
            cfg(checkpoint_interval=4,
                fault=FaultPlan(worker=0, superstep=3)),
        )
        # no snapshot existed yet: recompute from scratch, then the
        # re-execution records the interval checkpoints exactly once.
        assert faulty.metrics.recovered_from is None
        assert faulty.metrics.restarts == 1
        assert faulty.metrics.checkpoints == clean.metrics.checkpoints

    def test_scratch_recovery_without_checkpointing_keeps_log_empty(self):
        g = random_graph(90, 5, seed=73)
        faulty = run_job(
            g, PageRank(supersteps=6),
            cfg(fault=FaultPlan(worker=2, superstep=4)),
        )
        assert faulty.metrics.restarts == 1
        assert faulty.metrics.checkpoints == []

"""Unit tests for the simulated network."""

import pytest

from repro.cluster.network import PACKAGE_SETUP_SECONDS, SimulatedNetwork
from repro.storage.disk import HDD_PROFILE


def make(num_workers=3, threshold=1000, request_bytes=8):
    return SimulatedNetwork(num_workers, HDD_PROFILE, threshold,
                            request_bytes)


class TestSimulatedNetwork:
    def test_remote_transfer_counts_bytes(self):
        net = make()
        net.begin_superstep(1)
        net.transfer(0, 1, 500, units=10)
        stats = net.end_superstep()
        assert stats.bytes_out[0] == 500
        assert stats.bytes_in[1] == 500
        assert stats.transfer_units == 10

    def test_local_transfer_free_but_units_counted(self):
        net = make()
        net.begin_superstep(1)
        net.transfer(1, 1, 500, units=10)
        stats = net.end_superstep()
        assert stats.total_bytes == 0
        assert stats.transfer_units == 10

    def test_requests_count_and_remote_bytes(self):
        net = make()
        net.begin_superstep(1)
        net.send_request(0, 0)  # local: free
        net.send_request(0, 1)  # remote: 8 bytes
        stats = net.end_superstep()
        assert stats.requests == 2
        assert stats.total_bytes == 8

    def test_packages_ceil_by_threshold(self):
        net = make(threshold=100)
        net.begin_superstep(1)
        net.transfer(0, 1, 250, units=1)
        stats = net.end_superstep()
        assert stats.packages == 3

    def test_flows_accumulate(self):
        net = make(threshold=100)
        net.begin_superstep(1)
        net.transfer(0, 1, 60, units=1)
        net.transfer(0, 1, 60, units=1)
        stats = net.end_superstep()
        assert stats.bytes_out[0] == 120
        assert stats.packages == 2  # one flow of 120 bytes

    def test_worker_seconds_include_package_setup(self):
        net = make(threshold=100)
        net.begin_superstep(1)
        net.transfer(0, 1, 1000, units=1)
        stats = net.end_superstep()
        assert stats.worker_seconds[0] >= 10 * PACKAGE_SETUP_SECONDS

    def test_larger_threshold_fewer_packages_longer_tail(self):
        small = make(threshold=100)
        small.begin_superstep(1)
        small.transfer(0, 1, 10_000, units=1)
        s_small = small.end_superstep()
        big = make(threshold=10_000)
        big.begin_superstep(1)
        big.transfer(0, 1, 10_000, units=1)
        s_big = big.end_superstep()
        assert s_big.packages < s_small.packages

    def test_receiver_time_counted(self):
        net = make()
        net.begin_superstep(1)
        net.transfer(0, 1, 10**6, units=1)
        stats = net.end_superstep()
        assert stats.worker_seconds[1] > 0
        assert stats.worker_seconds[2] == 0.0

    def test_timeline_records_superstep_totals(self):
        net = make()
        net.begin_superstep(1)
        net.transfer(0, 1, 100, units=1)
        net.end_superstep()
        net.begin_superstep(2)
        net.transfer(1, 2, 200, units=1)
        net.end_superstep()
        assert net.timeline == [(1, 100), (2, 200)]

    def test_begin_superstep_resets_flows(self):
        net = make()
        net.begin_superstep(1)
        net.transfer(0, 1, 100, units=1)
        net.end_superstep()
        net.begin_superstep(2)
        stats = net.end_superstep()
        assert stats.total_bytes == 0

    def test_zero_threshold_rejected(self):
        with pytest.raises(ValueError):
            make(threshold=0)

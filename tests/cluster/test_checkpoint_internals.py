"""Checkpoint module internals: snapshot contents and byte math."""

import pytest

from repro.algorithms.pagerank import PageRank
from repro.cluster.checkpoint import restore_checkpoint, take_checkpoint
from repro.core.config import JobConfig
from repro.core.engine import run_job
from repro.core.runtime import Runtime
from repro.datasets.generators import random_graph


def make_runtime():
    g = random_graph(40, 4, seed=151)
    rt = Runtime(g, PageRank(supersteps=5),
                 JobConfig(mode="push", num_workers=2,
                           message_buffer_per_worker=10))
    rt.setup()
    return rt


class TestSnapshot:
    def test_snapshot_bytes_cover_values_flags_messages(self):
        rt = make_runtime()
        rt.workers[0].message_store.deposit(0, 1.0)
        rt.workers[0].message_store.deposit(1, 2.0)
        ckpt = take_checkpoint(rt, superstep=3, prev_mode="push",
                               controller=None)
        sizes = rt.config.sizes
        expected = (
            sizes.vertices(rt.graph.num_vertices)
            + (rt.graph.num_vertices + 7) // 8
            + sizes.messages(2)
        )
        assert ckpt.nbytes == expected

    def test_write_seconds_scale_with_throughput(self):
        rt = make_runtime()
        ckpt = take_checkpoint(rt, 1, "push", None)
        assert ckpt.write_seconds(90.0) < ckpt.write_seconds(9.0)

    def test_snapshot_is_deep(self):
        rt = make_runtime()
        rt.values[0] = 0.5
        ckpt = take_checkpoint(rt, 1, "push", None)
        rt.values[0] = 99.0
        rt.resp_prev[1] = True
        restore_checkpoint(rt, ckpt)
        assert rt.values[0] == 0.5
        assert rt.resp_prev[1] is False

    def test_restore_is_repeatable(self):
        """The same snapshot must survive being restored twice (two
        failures after one checkpoint)."""
        rt = make_runtime()
        rt.workers[1].message_store.deposit(25, 4.0)
        ckpt = take_checkpoint(rt, 2, "push", None)
        restore_checkpoint(rt, ckpt)
        rt.workers[1].message_store.load()  # consume the restored message
        restore_checkpoint(rt, ckpt)
        result = rt.workers[1].message_store.load()
        assert result.messages == {25: [4.0]}

    def test_restore_clears_next_flags(self):
        rt = make_runtime()
        ckpt = take_checkpoint(rt, 1, "bpull", None)
        rt.resp_next[3] = True
        restore_checkpoint(rt, ckpt)
        assert not any(rt.resp_next)

"""Checkpoint-based fault tolerance (the paper's future work, built)."""

import pytest

from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.core.config import FaultPlan, JobConfig
from repro.core.engine import run_job
from repro.datasets.generators import random_graph


def cfg(mode, **kwargs):
    kwargs.setdefault("message_buffer_per_worker", 20)
    return JobConfig(mode=mode, num_workers=3, **kwargs)


class TestCheckpointing:
    def test_checkpoints_taken_at_interval(self):
        g = random_graph(80, 5, seed=71)
        result = run_job(g, PageRank(supersteps=9),
                         cfg("push", checkpoint_interval=3))
        taken = [t for t, _b, _s in result.metrics.checkpoints]
        assert taken == [3, 6]  # superstep 9 stops before a snapshot

    def test_checkpoint_costs_counted_in_runtime(self):
        g = random_graph(80, 5, seed=71)
        plain = run_job(g, PageRank(supersteps=9), cfg("push"))
        ckpt = run_job(g, PageRank(supersteps=9),
                       cfg("push", checkpoint_interval=2))
        assert ckpt.metrics.checkpoint_seconds > 0
        assert ckpt.metrics.runtime_seconds > plain.metrics.runtime_seconds
        # the compute path itself is untouched
        assert ckpt.metrics.compute_seconds == pytest.approx(
            plain.metrics.compute_seconds
        )

    def test_no_interval_no_checkpoints(self):
        g = random_graph(80, 5, seed=71)
        result = run_job(g, PageRank(supersteps=5), cfg("push"))
        assert result.metrics.checkpoints == []

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            JobConfig(checkpoint_interval=0)


class TestCheckpointRecovery:
    @pytest.mark.parametrize("mode", ["push", "pushm", "bpull", "hybrid"])
    def test_recovery_reproduces_clean_result(self, mode):
        g = random_graph(90, 5, seed=72)
        clean = run_job(g, PageRank(supersteps=8), cfg(mode))
        faulty = run_job(
            g, PageRank(supersteps=8),
            cfg(mode, checkpoint_interval=2,
                fault=FaultPlan(worker=1, superstep=6)),
        )
        assert faulty.values == clean.values
        assert faulty.metrics.restarts == 1
        assert faulty.metrics.recovered_from == 4

    def test_recovery_wastes_less_work_than_recompute(self):
        g = random_graph(90, 5, seed=72)
        scratch = run_job(
            g, PageRank(supersteps=8),
            cfg("push", fault=FaultPlan(worker=0, superstep=7)),
        )
        checkpointed = run_job(
            g, PageRank(supersteps=8),
            cfg("push", checkpoint_interval=2,
                fault=FaultPlan(worker=0, superstep=7)),
        )
        assert scratch.values == checkpointed.values
        # scratch re-executes 1..6 (6 wasted + 8 kept); the checkpointed
        # run replays only 7.. from the superstep-6 snapshot.
        assert (checkpointed.metrics.executed_supersteps
                < scratch.metrics.executed_supersteps)
        assert checkpointed.metrics.num_supersteps == 8
        assert scratch.metrics.recovered_from is None

    def test_recovery_with_pending_push_messages(self):
        """The snapshot must capture receiver-store contents: SSSP with
        a fault right after a checkpointed superstep whose messages are
        still in flight."""
        g = random_graph(90, 5, seed=73)
        clean = run_job(g, SSSP(source=0), cfg("push"))
        faulty = run_job(
            g, SSSP(source=0),
            cfg("push", checkpoint_interval=1,
                fault=FaultPlan(worker=2, superstep=4)),
        )
        assert faulty.values == clean.values
        assert faulty.metrics.recovered_from == 3

    def test_hybrid_controller_state_restored(self):
        g = random_graph(90, 6, seed=74)
        clean = run_job(g, SSSP(source=0),
                        cfg("hybrid", message_buffer_per_worker=3))
        faulty = run_job(
            g, SSSP(source=0),
            cfg("hybrid", message_buffer_per_worker=3,
                checkpoint_interval=2,
                fault=FaultPlan(worker=0, superstep=5)),
        )
        assert faulty.values == clean.values
        # the replayed supersteps follow the same plan as the clean run
        assert faulty.metrics.mode_trace == clean.metrics.mode_trace

    def test_failure_before_first_checkpoint_recomputes(self):
        g = random_graph(90, 5, seed=75)
        result = run_job(
            g, PageRank(supersteps=6),
            cfg("push", checkpoint_interval=4,
                fault=FaultPlan(worker=1, superstep=2)),
        )
        assert result.metrics.restarts == 1
        assert result.metrics.recovered_from is None  # scratch recovery
        assert result.metrics.num_supersteps == 6

"""Recovery matrix: crash at every position × checkpoint interval.

Sweeps the crash superstep across the whole run — before the first
snapshot, on snapshot supersteps, between them, and on the hybrid
switch superstep — crossed with checkpoint intervals, asserting every
cell converges to the fault-free values.  This is the blanket guarantee
behind the point tests: no (fault position, interval) combination may
resume from a snapshot inconsistently.
"""

import json

import pytest

from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.core.config import FaultPlan, JobConfig
from repro.core.engine import run_job
from repro.datasets.generators import random_graph


def _graph():
    return random_graph(300, 6, seed=42)


def _dump(result):
    payload = result.metrics.to_dict()
    payload.pop("fallback", None)
    return json.dumps(payload, sort_keys=True)


class TestCrashEverywhere:
    """PageRank (fixed horizon): crash at every superstep position."""

    CFG = dict(mode="hybrid", num_workers=4,
               message_buffer_per_worker=100, max_supersteps=6)

    @pytest.fixture(scope="class")
    def clean(self):
        return run_job(_graph(), PageRank(), JobConfig(**self.CFG))

    @pytest.mark.parametrize("interval", [1, 3])
    @pytest.mark.parametrize("superstep", [1, 2, 3, 4, 5, 6])
    def test_values_match_clean(self, clean, superstep, interval):
        result = run_job(_graph(), PageRank(), JobConfig(
            **self.CFG,
            fault=FaultPlan(worker=superstep % 4, superstep=superstep),
            checkpoint_interval=interval,
        ))
        assert result.values == clean.values
        assert result.metrics.restarts == 1
        record = result.metrics.recoveries[0]
        # the resume point is the newest snapshot strictly before the
        # crash (snapshots land every `interval` supersteps).
        expected_resume = ((superstep - 1) // interval) * interval
        assert record["resume_after"] == expected_resume
        assert record["policy"] == (
            "checkpoint" if expected_resume else "scratch"
        )
        assert record["rework_supersteps"] == superstep - 1 - expected_resume


class TestCrashOnSwitch:
    """SSSP to convergence: crashes around the hybrid switch point."""

    CFG = dict(mode="hybrid", num_workers=4,
               message_buffer_per_worker=100)

    @pytest.fixture(scope="class")
    def clean(self):
        result = run_job(_graph(), SSSP(source=0), JobConfig(**self.CFG))
        assert any("->" in label for label in result.metrics.mode_trace)
        return result

    def _switch_superstep(self, clean):
        for index, label in enumerate(clean.metrics.mode_trace):
            if "->" in label:
                return index + 1
        raise AssertionError("no switch in the clean run")

    @pytest.mark.parametrize("offset", [-1, 0, 1])
    @pytest.mark.parametrize("interval", [1, 3])
    def test_crash_near_switch(self, clean, offset, interval):
        superstep = self._switch_superstep(clean) + offset
        if superstep < 1:
            pytest.skip("switch happens on the first superstep")
        result = run_job(_graph(), SSSP(source=0), JobConfig(
            **self.CFG,
            fault=FaultPlan(worker=1, superstep=superstep),
            checkpoint_interval=interval,
        ))
        assert result.values == clean.values
        assert result.metrics.restarts == 1
        assert result.metrics.mode_trace == clean.metrics.mode_trace

    @pytest.mark.parametrize("interval", [1, 3])
    def test_crash_near_switch_parallel(self, clean, interval):
        superstep = self._switch_superstep(clean)
        sequential = run_job(_graph(), SSSP(source=0), JobConfig(
            **self.CFG,
            fault=FaultPlan(worker=1, superstep=superstep),
            checkpoint_interval=interval,
        ))
        parallel = run_job(_graph(), SSSP(source=0), JobConfig(
            **self.CFG, parallelism=2,
            fault=FaultPlan(worker=1, superstep=superstep),
            checkpoint_interval=interval,
        ))
        assert _dump(parallel) == _dump(sequential)
        assert parallel.values == clean.values

"""Fault injection and recompute-from-scratch recovery (Appendix A)."""

import pytest

from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.cluster.fault import FaultInjector, WorkerFailure
from repro.core.config import FaultPlan, JobConfig
from repro.core.engine import run_job
from repro.datasets.generators import random_graph


class TestFaultInjector:
    def test_fires_at_planned_superstep(self):
        injector = FaultInjector(FaultPlan(worker=1, superstep=3))
        injector.check(1)
        injector.check(2)
        with pytest.raises(WorkerFailure) as err:
            injector.check(3)
        assert err.value.worker == 1
        assert err.value.superstep == 3

    def test_fires_only_once(self):
        injector = FaultInjector(FaultPlan(worker=0, superstep=2))
        with pytest.raises(WorkerFailure):
            injector.check(2)
        injector.check(2)  # quiet after the restart

    def test_no_plan_never_fires(self):
        injector = FaultInjector(None)
        for t in range(1, 10):
            injector.check(t)


class TestRecovery:
    @pytest.mark.parametrize("mode", ["push", "bpull", "hybrid"])
    def test_restart_reproduces_failure_free_result(self, mode):
        g = random_graph(80, 5, seed=13)
        base_cfg = JobConfig(mode=mode, num_workers=3,
                             message_buffer_per_worker=20)
        clean = run_job(g, PageRank(supersteps=6), base_cfg)
        faulty = run_job(
            g, PageRank(supersteps=6),
            base_cfg.but(fault=FaultPlan(worker=1, superstep=4)),
        )
        assert faulty.values == clean.values
        assert faulty.metrics.restarts == 1
        assert clean.metrics.restarts == 0

    def test_restart_with_sssp(self):
        g = random_graph(80, 5, seed=13)
        cfg = JobConfig(mode="push", num_workers=3,
                        message_buffer_per_worker=20)
        clean = run_job(g, SSSP(source=0), cfg)
        faulty = run_job(g, SSSP(source=0),
                         cfg.but(fault=FaultPlan(worker=0, superstep=2)))
        assert faulty.values == clean.values
        assert faulty.metrics.restarts == 1

    def test_failure_before_first_superstep_of_hybrid_replans(self):
        g = random_graph(80, 5, seed=13)
        cfg = JobConfig(mode="hybrid", num_workers=2,
                        message_buffer_per_worker=5,
                        fault=FaultPlan(worker=0, superstep=1))
        result = run_job(g, PageRank(supersteps=4), cfg)
        assert result.metrics.restarts == 1
        assert result.metrics.num_supersteps == 4

"""FaultPlan/FaultSchedule validation and injector semantics."""

import pytest

from repro.cluster.fault import FaultInjector, FiredFault, as_schedule
from repro.core.config import FAULT_KINDS, FaultPlan, FaultSchedule, JobConfig
from repro.core.engine import run_job
from repro.datasets.generators import random_graph


class TestFaultPlanValidation:
    def test_defaults(self):
        plan = FaultPlan(worker=1, superstep=3)
        assert plan.kind == "crash"
        assert plan.factor == 4.0
        assert plan.repeat == 1

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_accepts_every_kind(self, kind):
        assert FaultPlan(worker=0, superstep=1, kind=kind).kind == kind

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            FaultPlan(worker=0, superstep=1, kind="meteor")

    @pytest.mark.parametrize("worker", [-1, 1.5, "0", None])
    def test_rejects_bad_worker(self, worker):
        with pytest.raises(ValueError, match="worker"):
            FaultPlan(worker=worker, superstep=1)

    @pytest.mark.parametrize("superstep", [0, -3, 2.5, "1"])
    def test_rejects_bad_superstep(self, superstep):
        with pytest.raises(ValueError, match="superstep"):
            FaultPlan(worker=0, superstep=superstep)

    @pytest.mark.parametrize("factor", [0.0, -1.0])
    def test_rejects_non_positive_factor(self, factor):
        with pytest.raises(ValueError, match="factor"):
            FaultPlan(worker=0, superstep=1, kind="straggler",
                      factor=factor)

    @pytest.mark.parametrize("repeat", [0, -1, 1.5])
    def test_rejects_bad_repeat(self, repeat):
        with pytest.raises(ValueError, match="repeat"):
            FaultPlan(worker=0, superstep=1, repeat=repeat)


class TestFaultScheduleValidation:
    def test_empty_schedule(self):
        schedule = FaultSchedule()
        assert schedule.empty
        assert schedule.faults == ()

    def test_coerces_fault_list_to_tuple(self):
        schedule = FaultSchedule(faults=[FaultPlan(worker=0, superstep=1)])
        assert isinstance(schedule.faults, tuple)
        assert not schedule.empty

    def test_rejects_non_plan_entries(self):
        with pytest.raises(ValueError, match="faults"):
            FaultSchedule(faults=("crash@3",))

    @pytest.mark.parametrize("p", [-0.1, 1.5, "0.5"])
    def test_rejects_bad_probability(self, p):
        with pytest.raises(ValueError, match="chaos_probability"):
            FaultSchedule(chaos_probability=p)

    def test_rejects_unknown_chaos_kind(self):
        with pytest.raises(ValueError, match="chaos fault kind"):
            FaultSchedule(chaos_probability=0.5, chaos_kinds=("meteor",))

    def test_rejects_empty_chaos_kinds(self):
        with pytest.raises(ValueError, match="chaos_kinds"):
            FaultSchedule(chaos_probability=0.5, chaos_kinds=())

    @pytest.mark.parametrize("n", [-1, 2.5])
    def test_rejects_bad_max_faults(self, n):
        with pytest.raises(ValueError, match="chaos_max_faults"):
            FaultSchedule(chaos_probability=0.5, chaos_max_faults=n)

    def test_probabilistic_schedule_is_not_empty(self):
        assert not FaultSchedule(chaos_probability=0.1).empty


class TestJobConfigResilienceFields:
    @pytest.mark.parametrize("bad", [-1, 1.5, "3"])
    def test_rejects_bad_max_restarts(self, bad):
        with pytest.raises(ValueError, match="max_restarts"):
            JobConfig(max_restarts=bad)

    def test_zero_max_restarts_is_allowed(self):
        assert JobConfig(max_restarts=0).max_restarts == 0

    def test_rejects_negative_backoff(self):
        with pytest.raises(ValueError, match="restart_backoff_seconds"):
            JobConfig(restart_backoff_seconds=-1.0)

    @pytest.mark.parametrize("bad", [0, -2, 1.5])
    def test_rejects_bad_checkpoint_keep(self, bad):
        with pytest.raises(ValueError, match="checkpoint_keep"):
            JobConfig(checkpoint_keep=bad)

    @pytest.mark.parametrize("bad", [0.0, -5.0])
    def test_rejects_bad_pool_round_timeout(self, bad):
        with pytest.raises(ValueError, match="pool_round_timeout"):
            JobConfig(pool_round_timeout_seconds=bad)

    def test_accepts_schedule_as_fault(self):
        cfg = JobConfig(fault=FaultSchedule(
            faults=(FaultPlan(worker=0, superstep=1),)
        ))
        assert not as_schedule(cfg.fault).empty


class TestWorkerBoundValidation:
    """Planned worker indices are checked against the cluster size."""

    def test_out_of_range_worker_rejected_at_setup(self):
        g = random_graph(40, 4, seed=7)
        cfg = JobConfig(mode="push", num_workers=3, max_supersteps=3,
                        fault=FaultPlan(worker=3, superstep=2))
        with pytest.raises(ValueError, match="worker 3"):
            run_job(g, _pagerank(), cfg)

    def test_in_range_worker_accepted(self):
        g = random_graph(40, 4, seed=7)
        cfg = JobConfig(mode="push", num_workers=3, max_supersteps=3,
                        fault=FaultPlan(worker=2, superstep=2))
        assert run_job(g, _pagerank(), cfg).metrics.restarts == 1


def _pagerank():
    from repro.algorithms.pagerank import PageRank

    return PageRank(supersteps=3)


class TestAsSchedule:
    def test_none_is_empty(self):
        assert as_schedule(None).empty

    def test_plan_wraps_into_singleton_schedule(self):
        plan = FaultPlan(worker=1, superstep=4, kind="straggler")
        schedule = as_schedule(plan)
        assert schedule.faults == (plan,)

    def test_schedule_passes_through(self):
        schedule = FaultSchedule(chaos_probability=0.2)
        assert as_schedule(schedule) is schedule


class TestInjectorFire:
    def test_planned_faults_fire_in_schedule_order(self):
        schedule = FaultSchedule(faults=(
            FaultPlan(worker=0, superstep=2, kind="straggler", factor=2.0),
            FaultPlan(worker=1, superstep=2, kind="crash"),
        ))
        injector = FaultInjector(schedule, num_workers=4)
        assert injector.fire(1) == []
        fired = injector.fire(2)
        assert [f.kind for f in fired] == ["straggler", "crash"]
        assert fired[0].factor == 2.0
        assert all(f.source == "plan" for f in fired)

    def test_repeat_refires_on_reexecution(self):
        injector = FaultInjector(
            FaultSchedule(faults=(
                FaultPlan(worker=0, superstep=3, repeat=2),
            )),
            num_workers=2,
        )
        # first attempt fires, the re-executed attempt fires again,
        # the third attempt is quiet (the repeat budget is spent).
        assert len(injector.fire(3)) == 1
        assert len(injector.fire(3)) == 1
        assert injector.fire(3) == []
        assert len(injector.fired) == 2

    def test_chaos_same_seed_same_sequence(self):
        schedule = FaultSchedule(chaos_probability=0.5, chaos_seed=99,
                                 chaos_kinds=("crash", "straggler"))
        a = FaultInjector(schedule, num_workers=4)
        b = FaultInjector(schedule, num_workers=4)
        seq_a = [a.fire(t) for t in range(1, 20)]
        seq_b = [b.fire(t) for t in range(1, 20)]
        assert seq_a == seq_b
        assert any(seq_a), "probability 0.5 over 19 draws must fire"

    def test_chaos_different_seeds_diverge(self):
        fired = set()
        for seed in range(8):
            injector = FaultInjector(
                FaultSchedule(chaos_probability=0.5, chaos_seed=seed),
                num_workers=4,
            )
            fired.add(tuple(
                tuple(injector.fire(t)) for t in range(1, 20)
            ))
        assert len(fired) > 1

    def test_chaos_respects_max_faults(self):
        injector = FaultInjector(
            FaultSchedule(chaos_probability=1.0, chaos_max_faults=2),
            num_workers=4,
        )
        total = sum(len(injector.fire(t)) for t in range(1, 50))
        assert total == 2

    def test_chaos_workers_stay_in_bounds(self):
        injector = FaultInjector(
            FaultSchedule(chaos_probability=1.0, chaos_max_faults=30),
            num_workers=3,
        )
        for t in range(1, 40):
            for fault in injector.fire(t):
                assert 0 <= fault.worker < 3
                assert fault.source == "chaos"

    def test_fired_fault_is_frozen(self):
        fault = FiredFault(kind="crash", worker=0, superstep=1,
                           source="plan")
        with pytest.raises(AttributeError):
            fault.worker = 2

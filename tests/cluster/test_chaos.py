"""Chaos harness: multi-fault schedules must not change one byte.

The acceptance matrix for the resilience stack: a schedule that mixes a
straggler, a crash, a corrupted snapshot, and a real SIGKILL (under
``parallelism > 1``) must leave final values identical to the fault-free
run and keep ``JobMetrics.to_dict()`` byte-identical across the
batched/vectorized executors and parallelism ∈ {1, 2} — the same
equivalence contract the fault-free suite enforces, now under fire.
Seeded probabilistic chaos sweeps extend the guarantee to schedules
nobody hand-picked.
"""

import json
import multiprocessing

import pytest

from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.cluster.fault import WorkerFailure
from repro.core.config import FaultPlan, FaultSchedule, JobConfig
from repro.core.engine import run_job
from repro.datasets.generators import random_graph


def _graph():
    return random_graph(120, 6, seed=21)


def _dump(result):
    payload = result.metrics.to_dict()
    payload.pop("fallback", None)
    return json.dumps(payload, sort_keys=True)


#: straggler, then a crash, then a kill that lands together with a
#: corrupted snapshot — the corruption invalidates the checkpoint taken
#: at superstep 4, so the second recovery must fall back to superstep 2.
ACCEPTANCE_SCHEDULE = FaultSchedule(faults=(
    FaultPlan(worker=2, superstep=2, kind="straggler", factor=3.0),
    FaultPlan(worker=1, superstep=3, kind="crash"),
    FaultPlan(worker=0, superstep=5, kind="checkpoint_corrupt"),
    FaultPlan(worker=0, superstep=5, kind="kill"),
))


class TestAcceptanceMatrix:
    def _cfg(self, **kwargs):
        return JobConfig(
            mode="hybrid", num_workers=3, max_supersteps=8,
            message_buffer_per_worker=100, checkpoint_interval=2,
            **kwargs,
        )

    @pytest.mark.parametrize("executor", ["batched", "vectorized"])
    @pytest.mark.parametrize("parallelism", [1, 2])
    def test_three_fault_schedule_with_sigkill(
        self, tmp_path, executor, parallelism
    ):
        clean = run_job(_graph(), PageRank(), self._cfg())
        chaotic = run_job(_graph(), PageRank(), self._cfg(
            executor=executor, parallelism=parallelism,
            fault=ACCEPTANCE_SCHEDULE, checkpoint_dir=str(tmp_path),
        ))
        assert chaotic.values == clean.values
        assert chaotic.metrics.restarts == 2
        assert [f["kind"] for f in chaotic.metrics.faults] == [
            "straggler", "crash", "checkpoint_corrupt", "kill",
        ]
        # first recovery restores the snapshot taken at superstep 2;
        # the corruption at superstep 5 invalidates the re-taken
        # snapshot at 4, forcing the second recovery back to 2 as well.
        assert [
            (r["policy"], r["resume_after"])
            for r in chaotic.metrics.recoveries
        ] == [("checkpoint", 2), ("checkpoint", 2)]
        assert multiprocessing.active_children() == []

    @pytest.mark.parametrize("executor", ["batched", "vectorized"])
    def test_byte_identical_across_parallelism(self, tmp_path, executor):
        dumps = []
        for parallelism in (1, 2):
            result = run_job(_graph(), PageRank(), self._cfg(
                executor=executor, parallelism=parallelism,
                fault=ACCEPTANCE_SCHEDULE,
                checkpoint_dir=str(tmp_path / f"p{parallelism}"),
            ))
            dumps.append(_dump(result))
        assert dumps[0] == dumps[1]

    def test_byte_identical_across_executors(self, tmp_path):
        dumps = []
        for executor in ("batched", "vectorized"):
            result = run_job(_graph(), PageRank(), self._cfg(
                executor=executor, fault=ACCEPTANCE_SCHEDULE,
                checkpoint_dir=str(tmp_path / executor),
            ))
            dumps.append(_dump(result))
        assert dumps[0] == dumps[1]

    def test_in_memory_log_matches_durable_store(self, tmp_path):
        durable = run_job(_graph(), PageRank(), self._cfg(
            fault=ACCEPTANCE_SCHEDULE, checkpoint_dir=str(tmp_path),
        ))
        in_memory = run_job(_graph(), PageRank(), self._cfg(
            fault=ACCEPTANCE_SCHEDULE,
        ))
        assert _dump(durable) == _dump(in_memory)


class TestSeededChaos:
    @pytest.mark.parametrize("mode", ["push", "bpull", "hybrid"])
    @pytest.mark.parametrize("seed", [3, 11])
    def test_chaos_run_matches_clean(self, mode, seed):
        cfg = JobConfig(mode=mode, num_workers=4, max_supersteps=7,
                        message_buffer_per_worker=100,
                        checkpoint_interval=2)
        clean = run_job(_graph(), PageRank(), cfg)
        chaotic = run_job(_graph(), PageRank(), cfg.but(
            fault=FaultSchedule(
                chaos_probability=0.4, chaos_seed=seed,
                chaos_kinds=("crash", "straggler", "checkpoint_write"),
            ),
        ))
        assert chaotic.values == clean.values

    def test_same_seed_is_reproducible(self):
        cfg = JobConfig(mode="hybrid", num_workers=4, max_supersteps=7,
                        message_buffer_per_worker=100,
                        checkpoint_interval=2,
                        fault=FaultSchedule(
                            chaos_probability=0.5, chaos_seed=17,
                            chaos_kinds=("crash", "straggler"),
                        ))
        a = run_job(_graph(), PageRank(), cfg)
        b = run_job(_graph(), PageRank(), cfg)
        assert _dump(a) == _dump(b)
        assert a.metrics.faults  # p=0.5 over 7+ attempts must fire

    def test_chaos_faults_are_recorded_with_source(self):
        result = run_job(_graph(), PageRank(), JobConfig(
            mode="push", num_workers=4, max_supersteps=6,
            message_buffer_per_worker=100, checkpoint_interval=2,
            fault=FaultSchedule(chaos_probability=0.9, chaos_seed=2,
                                chaos_kinds=("straggler",)),
        ))
        assert result.metrics.faults
        assert all(f["source"] == "chaos" for f in result.metrics.faults)
        assert result.metrics.restarts == 0  # stragglers never abort


class TestRecoveryPolicy:
    def _cfg(self, **kwargs):
        return JobConfig(mode="push", num_workers=3, max_supersteps=6,
                         message_buffer_per_worker=100, **kwargs)

    def test_repeated_fault_consumes_repeat_budget(self):
        clean = run_job(_graph(), PageRank(), self._cfg())
        result = run_job(_graph(), PageRank(), self._cfg(
            fault=FaultPlan(worker=1, superstep=3, repeat=2),
            checkpoint_interval=2,
        ))
        assert result.metrics.restarts == 2
        assert result.values == clean.values

    def test_max_restarts_exhaustion_raises(self):
        with pytest.raises(WorkerFailure):
            run_job(_graph(), PageRank(), self._cfg(
                max_restarts=1,
                fault=FaultPlan(worker=1, superstep=3, repeat=3),
            ))
        assert multiprocessing.active_children() == []

    def test_max_restarts_zero_fails_fast(self):
        with pytest.raises(WorkerFailure):
            run_job(_graph(), PageRank(), self._cfg(
                max_restarts=0,
                fault=FaultPlan(worker=1, superstep=2),
            ))

    def test_exponential_backoff_downtime(self):
        clean = run_job(_graph(), PageRank(), self._cfg())
        result = run_job(_graph(), PageRank(), self._cfg(
            restart_backoff_seconds=10.0,
            fault=FaultPlan(worker=1, superstep=3, repeat=2),
            checkpoint_interval=2,
        ))
        downtimes = [
            r["downtime_seconds"] for r in result.metrics.recoveries
        ]
        assert downtimes == [10.0, 20.0]
        assert result.metrics.recovery_seconds == 30.0
        assert result.metrics.runtime_seconds == pytest.approx(
            clean.metrics.runtime_seconds
            + 30.0
            + sum(r["rework_seconds"] for r in result.metrics.recoveries)
            + result.metrics.checkpoint_seconds,
        )

    def test_recovery_records_are_structured(self):
        result = run_job(_graph(), PageRank(), self._cfg(
            fault=FaultPlan(worker=1, superstep=4, kind="kill"),
            checkpoint_interval=2,
        ))
        (record,) = result.metrics.recoveries
        assert record["restart"] == 1
        assert record["superstep"] == 4
        assert record["worker"] == 1
        assert record["kind"] == "kill"
        assert record["policy"] == "checkpoint"
        assert record["resume_after"] == 2
        assert record["rework_supersteps"] == 1
        assert record["rework_seconds"] > 0.0
        assert record["downtime_seconds"] == 0.0

    def test_scratch_recovery_record(self):
        result = run_job(_graph(), PageRank(), self._cfg(
            fault=FaultPlan(worker=0, superstep=3),
        ))
        (record,) = result.metrics.recoveries
        assert record["policy"] == "scratch"
        assert record["resume_after"] == 0
        assert record["rework_supersteps"] == 2

    def test_straggler_stretches_elapsed_without_restart(self):
        clean = run_job(_graph(), PageRank(), self._cfg())
        result = run_job(_graph(), PageRank(), self._cfg(
            fault=FaultPlan(worker=1, superstep=2, kind="straggler",
                            factor=5.0),
        ))
        assert result.values == clean.values
        assert result.metrics.restarts == 0
        slow = result.metrics.supersteps[1]
        fast = clean.metrics.supersteps[1]
        assert slow.worker_seconds[1] == pytest.approx(
            fast.worker_seconds[1] * 5.0
        )
        assert slow.elapsed_seconds >= fast.elapsed_seconds

    def test_checkpoint_write_failure_pays_cost_keeps_nothing(self):
        result = run_job(_graph(), PageRank(), self._cfg(
            checkpoint_interval=2,
            fault=FaultPlan(worker=0, superstep=2,
                            kind="checkpoint_write"),
        ))
        # the failed snapshot is recorded with its (superstep, nbytes,
        # seconds), its modeled cost is charged, and no snapshot for
        # superstep 2 survives in the retained list.
        (entry,) = result.metrics.checkpoint_failures
        assert entry[0] == 2
        assert entry[2] > 0.0
        assert 2 not in [t for t, _b, _s in result.metrics.checkpoints]
        assert result.metrics.checkpoint_seconds == pytest.approx(
            sum(s for _t, _b, s in result.metrics.checkpoints) + entry[2]
        )

    def test_failed_snapshot_forces_scratch_recovery(self):
        result = run_job(_graph(), PageRank(), self._cfg(
            checkpoint_interval=2,
            fault=FaultSchedule(faults=(
                FaultPlan(worker=0, superstep=2,
                          kind="checkpoint_write"),
                FaultPlan(worker=1, superstep=3),
            )),
        ))
        # the only snapshot before the crash failed to write, so
        # recovery had nothing to restore and recomputed from scratch.
        assert result.metrics.recoveries[0]["policy"] == "scratch"

    def test_mttr_rollup_in_trace_summary(self):
        result = run_job(_graph(), PageRank(), self._cfg(
            trace=True, restart_backoff_seconds=5.0,
            fault=FaultPlan(worker=1, superstep=3, repeat=2),
            checkpoint_interval=2,
        ))
        summary = result.trace.summary()
        assert summary.recovery is not None
        assert summary.recovery["restarts"] == 2
        assert summary.recovery["faults"] == 2
        assert summary.recovery["downtime_seconds"] == pytest.approx(15.0)
        assert summary.recovery["mttr_seconds"] == pytest.approx(
            (15.0 + summary.recovery["rework_seconds"]) / 2
        )
        assert "MTTR" in summary.table()

    def test_sssp_hybrid_switch_with_faults(self):
        # the sparser 300-vertex graph makes the hybrid controller
        # switch transports mid-run (same shape the fault-free
        # parallel-equivalence suite relies on).
        graph = random_graph(300, 6, seed=42)
        cfg = JobConfig(mode="hybrid", num_workers=4,
                        message_buffer_per_worker=100)
        clean = run_job(graph, SSSP(source=0), cfg)
        result = run_job(graph, SSSP(source=0), cfg.but(
            fault=FaultSchedule(faults=(
                FaultPlan(worker=2, superstep=2, kind="straggler"),
                FaultPlan(worker=1, superstep=4),
            )),
            checkpoint_interval=3,
        ))
        assert result.values == clean.values
        assert any("->" in label for label in result.metrics.mode_trace)

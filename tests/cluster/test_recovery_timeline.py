"""Regression tests: recovery must not leave stale traffic samples.

Before the fix, ``Runtime.reset_for_restart`` (recompute-from-scratch)
and ``restore_checkpoint`` left the samples of the discarded supersteps
in ``SimulatedNetwork.timeline``, so a recovered job reported phantom
network traffic for supersteps that were re-executed.
"""

from repro.algorithms.pagerank import PageRank
from repro.cluster.network import SimulatedNetwork
from repro.core.config import FaultPlan, JobConfig
from repro.core.engine import run_job
from repro.datasets.generators import random_graph
from repro.storage.disk import HDD_PROFILE


def make_net(num_workers=3):
    return SimulatedNetwork(num_workers, HDD_PROFILE, 1000, 8)


def sample_superstep(net, superstep, nbytes):
    net.begin_superstep(superstep)
    net.transfer(0, 1, nbytes, units=1)
    net.end_superstep()


class TestTimelineMaintenance:
    def test_clear_timeline(self):
        net = make_net()
        sample_superstep(net, 1, 100)
        sample_superstep(net, 2, 200)
        net.clear_timeline()
        assert net.timeline == []

    def test_truncate_timeline_keeps_committed_prefix(self):
        net = make_net()
        for t in range(1, 6):
            sample_superstep(net, t, 100 * t)
        net.truncate_timeline(3)
        assert [t for t, _nbytes in net.timeline] == [1, 2, 3]

    def test_truncate_past_end_is_noop(self):
        net = make_net()
        sample_superstep(net, 1, 100)
        net.truncate_timeline(9)
        assert len(net.timeline) == 1


class TestRecoveryTimeline:
    def test_restart_from_scratch_drops_discarded_samples(self):
        g = random_graph(80, 5, seed=13)
        cfg = JobConfig(mode="push", num_workers=3,
                        message_buffer_per_worker=20,
                        fault=FaultPlan(worker=1, superstep=4))
        result = run_job(g, PageRank(supersteps=6), cfg)
        assert result.metrics.restarts == 1
        timeline = result.runtime.network.timeline
        supersteps = [t for t, _nbytes in timeline]
        # no duplicates from the discarded pre-failure attempt, and
        # samples arrive in execution order
        assert len(supersteps) == len(set(supersteps))
        assert supersteps == sorted(supersteps)

    def test_restart_timeline_matches_clean_run(self):
        g = random_graph(80, 5, seed=13)
        base = JobConfig(mode="push", num_workers=3,
                         message_buffer_per_worker=20)
        clean = run_job(g, PageRank(supersteps=6), base)
        faulty = run_job(g, PageRank(supersteps=6),
                         base.but(fault=FaultPlan(worker=1, superstep=4)))
        assert (faulty.runtime.network.timeline
                == clean.runtime.network.timeline)

    def test_checkpoint_restore_truncates_uncommitted_samples(self):
        g = random_graph(80, 5, seed=13)
        base = JobConfig(mode="hybrid", num_workers=3,
                         message_buffer_per_worker=20,
                         checkpoint_interval=2)
        clean = run_job(g, PageRank(supersteps=6), base)
        faulty = run_job(g, PageRank(supersteps=6),
                         base.but(fault=FaultPlan(worker=0, superstep=5)))
        assert faulty.metrics.restarts == 1
        supersteps = [t for t, _n in faulty.runtime.network.timeline]
        assert len(supersteps) == len(set(supersteps))
        assert supersteps == sorted(supersteps)
        assert (faulty.runtime.network.timeline
                == clean.runtime.network.timeline)

    def test_traffic_timeline_metric_agrees_with_network(self):
        g = random_graph(80, 5, seed=13)
        cfg = JobConfig(mode="push", num_workers=3,
                        message_buffer_per_worker=20,
                        fault=FaultPlan(worker=1, superstep=3))
        result = run_job(g, PageRank(supersteps=6), cfg)
        reported = [t for t, _n in result.metrics.traffic_timeline]
        assert len(reported) == len(set(reported))

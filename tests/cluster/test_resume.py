"""Driver-death resume: ``resume_from`` continues after the last snapshot.

Two layers: an in-process split run (run 4 supersteps with a durable
checkpoint directory, then resume a fresh ``run_job`` from it) that can
assert full metric byte-identity, and a true driver-kill test that runs
the job in a subprocess, SIGKILLs it once at least two snapshots are
durable, and resumes in the parent — the scenario the in-memory
checkpoint log cannot survive.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.algorithms.pagerank import PageRank
from repro.core.config import FaultPlan, JobConfig
from repro.core.engine import run_job
from repro.datasets.generators import random_graph

_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _graph():
    return random_graph(200, 6, seed=5)


def _dump(result, drop=("fallback",)):
    payload = result.metrics.to_dict()
    for key in drop:
        payload.pop(key, None)
    return json.dumps(payload, sort_keys=True)


class TestInProcessResume:
    CFG = dict(mode="hybrid", num_workers=3,
               message_buffer_per_worker=100, checkpoint_interval=2)

    def test_resume_continues_after_last_snapshot(self, tmp_path):
        clean = run_job(_graph(), PageRank(supersteps=8),
                        JobConfig(**self.CFG, max_supersteps=8))
        # 5 supersteps with interval 2 → durable snapshots at 2 and 4
        # (the engine never snapshots the final superstep of a budget).
        first = run_job(_graph(), PageRank(supersteps=8), JobConfig(
            **self.CFG, max_supersteps=5,
            checkpoint_dir=str(tmp_path),
        ))
        assert [t for t, _b, _s in first.metrics.checkpoints] == [2, 4]
        resumed = run_job(_graph(), PageRank(supersteps=8), JobConfig(
            **self.CFG, max_supersteps=8,
            resume_from=str(tmp_path),
        ))
        assert resumed.metrics.resumed_from == 4
        assert resumed.values == clean.values
        # everything except the resume marker is byte-identical.
        drop = ("fallback", "resumed_from")
        assert _dump(resumed, drop) == _dump(clean, drop)

    def test_resume_skips_corrupted_latest(self, tmp_path):
        clean = run_job(_graph(), PageRank(supersteps=8),
                        JobConfig(**self.CFG, max_supersteps=8))
        run_job(_graph(), PageRank(supersteps=8), JobConfig(
            **self.CFG, max_supersteps=5,
            checkpoint_dir=str(tmp_path),
        ))
        from repro.cluster.checkpoint_store import CheckpointStore

        assert CheckpointStore(str(tmp_path)).corrupt_latest() is not None
        resumed = run_job(_graph(), PageRank(supersteps=8), JobConfig(
            **self.CFG, max_supersteps=8,
            resume_from=str(tmp_path),
        ))
        assert resumed.metrics.resumed_from == 2
        assert resumed.values == clean.values

    def test_resume_from_empty_directory_starts_fresh(self, tmp_path):
        clean = run_job(_graph(), PageRank(supersteps=6),
                        JobConfig(**self.CFG, max_supersteps=6))
        resumed = run_job(_graph(), PageRank(supersteps=6), JobConfig(
            **self.CFG, max_supersteps=6,
            resume_from=str(tmp_path / "nothing-here"),
        ))
        assert resumed.metrics.resumed_from is None
        assert resumed.values == clean.values

    def test_stale_snapshots_cannot_leap_recovery_forward(self, tmp_path):
        # a previous run's leftover files (here: through superstep 4)
        # sit in the directory; a fresh run that crashes at superstep 3
        # must recover from ITS newest snapshot below the failure (2),
        # never leap forward to the stale 4.
        clean = run_job(_graph(), PageRank(supersteps=8),
                        JobConfig(**self.CFG, max_supersteps=8))
        run_job(_graph(), PageRank(supersteps=8), JobConfig(
            **self.CFG, max_supersteps=5,
            checkpoint_dir=str(tmp_path),
        ))  # leaves ckpt-2 and ckpt-4 behind
        crashed = run_job(_graph(), PageRank(supersteps=8), JobConfig(
            **self.CFG, max_supersteps=8,
            checkpoint_dir=str(tmp_path),
            fault=FaultPlan(worker=1, superstep=3),
        ))
        assert crashed.metrics.restarts == 1
        assert crashed.metrics.recoveries[0]["resume_after"] == 2
        assert crashed.values == clean.values
        # identical to the same crash with no stale files around.
        fresh_dir = tmp_path / "fresh"
        control = run_job(_graph(), PageRank(supersteps=8), JobConfig(
            **self.CFG, max_supersteps=8,
            checkpoint_dir=str(fresh_dir),
            fault=FaultPlan(worker=1, superstep=3),
        ))
        assert _dump(crashed) == _dump(control)

    def test_resume_then_fault_recovers_from_durable_store(self, tmp_path):
        clean = run_job(_graph(), PageRank(supersteps=8),
                        JobConfig(**self.CFG, max_supersteps=8))
        run_job(_graph(), PageRank(supersteps=8), JobConfig(
            **self.CFG, max_supersteps=5,
            checkpoint_dir=str(tmp_path),
        ))
        resumed = run_job(_graph(), PageRank(supersteps=8), JobConfig(
            **self.CFG, max_supersteps=8,
            resume_from=str(tmp_path),
            fault=FaultPlan(worker=1, superstep=7),
        ))
        assert resumed.metrics.resumed_from == 4
        assert resumed.metrics.restarts == 1
        assert resumed.metrics.recoveries[0]["resume_after"] == 6
        assert resumed.values == clean.values


_CHILD_SCRIPT = """
import sys, time
sys.path.insert(0, {src!r})
# slow each durable write down so the parent can observe progress and
# kill the driver mid-run deterministically.
from repro.cluster import checkpoint_store as cs
_orig = cs.CheckpointStore.save
def _slow(self, *args, **kwargs):
    path = _orig(self, *args, **kwargs)
    time.sleep(0.4)
    return path
cs.CheckpointStore.save = _slow
from repro.core.config import JobConfig
from repro.core.engine import run_job
from repro.algorithms.pagerank import PageRank
from repro.datasets.generators import random_graph
run_job(
    random_graph(200, 6, seed=5), PageRank(supersteps=12),
    JobConfig(mode="hybrid", num_workers=3,
              message_buffer_per_worker=100, checkpoint_interval=1,
              max_supersteps=12, checkpoint_dir={ckpt_dir!r}),
)
"""


class TestDriverKillResume:
    def _snapshot_indices(self, directory):
        return sorted(
            int(name[len("ckpt-"):-len(".bin")])
            for name in os.listdir(directory)
            if name.startswith("ckpt-") and name.endswith(".bin")
        )

    def test_sigkilled_driver_resumes_from_durable_snapshots(
        self, tmp_path
    ):
        ckpt_dir = str(tmp_path / "ckpts")
        child = subprocess.Popen(
            [sys.executable, "-c",
             _CHILD_SCRIPT.format(src=_SRC, ckpt_dir=ckpt_dir)],
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
        )
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if os.path.isdir(ckpt_dir):
                    indices = self._snapshot_indices(ckpt_dir)
                    if indices and indices[-1] >= 2:
                        break
                if child.poll() is not None:
                    stderr = child.stderr.read().decode()
                    raise AssertionError(
                        f"driver exited before two snapshots were "
                        f"durable:\n{stderr}"
                    )
                time.sleep(0.05)
            else:
                raise AssertionError("no durable snapshots appeared")
            os.kill(child.pid, signal.SIGKILL)
        finally:
            child.wait(timeout=30)
            child.stderr.close()

        killed_at = self._snapshot_indices(ckpt_dir)[-1]
        cfg = JobConfig(mode="hybrid", num_workers=3,
                        message_buffer_per_worker=100,
                        checkpoint_interval=1, max_supersteps=12)
        clean = run_job(_graph(), PageRank(supersteps=12), cfg)
        resumed = run_job(_graph(), PageRank(supersteps=12),
                          cfg.but(resume_from=ckpt_dir))
        assert resumed.metrics.resumed_from is not None
        assert 2 <= resumed.metrics.resumed_from <= killed_at
        assert resumed.values == clean.values
        drop = ("fallback", "resumed_from")
        assert _dump(resumed, drop) == _dump(clean, drop)

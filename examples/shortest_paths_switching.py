"""Watch hybrid switch between push and b-pull during SSSP.

Traversal-style algorithms sweep a frontier across the graph: the
message volume rises, peaks, and decays.  The hybrid engine tracks the
per-superstep performance metric Q_t (Eq. 11) and switches transport
when the other side becomes cheaper — this example prints the trace
behind the paper's Fig. 14.

Run with::

    python examples/shortest_paths_switching.py
"""

from repro import JobConfig, SSSP, run_job, social_graph
from repro.analysis.reporting import print_table


def main() -> None:
    # a social graph with a long low-degree periphery: the frontier is
    # wide in the core (b-pull territory) and narrow in the whiskers
    # (push territory).
    graph = social_graph(
        800, 8, seed=42, tail_fraction=0.5, tail_chain=60,
        name="social-whiskers",
    )
    config = JobConfig(
        mode="hybrid",
        num_workers=4,
        message_buffer_per_worker=10,
        vblocks_per_worker=8,
    )
    result = run_job(graph, SSSP(source=0), config)

    rows = []
    for step, q in zip(result.metrics.supersteps, result.metrics.q_trace):
        rows.append([
            step.superstep,
            step.mode,
            step.responding_vertices,
            step.raw_messages,
            "n/a" if q is None else f"{q:+.2e}",
        ])
    print_table(
        ["superstep", "mode", "responding", "messages", "Q_t"],
        rows,
        title=f"SSSP over {graph.name}: hybrid switching trace",
    )

    reached = sum(1 for d in result.values if d != float("inf"))
    print(f"\nreached {reached}/{graph.num_vertices} vertices in "
          f"{result.metrics.num_supersteps} supersteps")
    switches = [m for m in result.metrics.mode_trace if "->" in m]
    print(f"switches: {switches or 'none'}")


if __name__ == "__main__":
    main()

"""Where hybrid's switching stops helping (Appendix G).

Runs the three algorithm styles over the same graph and prints, for
each, the per-superstep responding-vertex counts, how often the
switching metric Q_t changed sign, and how hybrid fared against the
fixed transports.  Multi-Phase-Style workloads (here: phased
multi-source BFS) flip Q_t at every phase boundary, and the Δt = 2
switching delay means each switch lands after the phase that justified
it — the paper's stated boundary of the technique.

Run with::

    python examples/multi_phase_boundary.py
"""

from repro import JobConfig, PageRank, PhasedBFS, SSSP, run_job, social_graph
from repro.analysis.reporting import print_table


def sign_flips(q_trace):
    signs = [q >= 0 for q in q_trace if q is not None]
    return sum(1 for a, b in zip(signs, signs[1:]) if a != b)


def sparkline(series, width=40):
    if not series:
        return ""
    blocks = " .:-=+*#%@"
    peak = max(series) or 1
    squeezed = series[:width]
    return "".join(
        blocks[min(len(blocks) - 1, int(v / peak * (len(blocks) - 1)))]
        for v in squeezed
    )


def main() -> None:
    graph = social_graph(600, 8, seed=9, name="social-600")
    styles = {
        "always-active (PageRank)": PageRank(supersteps=10),
        "traversal (SSSP)": SSSP(source=0),
        "multi-phase (PhasedBFS)": PhasedBFS(sources=(0, 100, 200)),
    }
    rows = []
    for label, program in styles.items():
        runtimes = {}
        for mode in ("push", "bpull", "hybrid"):
            config = JobConfig(mode=mode, num_workers=4,
                               message_buffer_per_worker=25)
            result = run_job(graph, program, config)
            runtimes[mode] = result.metrics.compute_seconds
            if mode == "hybrid":
                hybrid_metrics = result.metrics
        responding = [
            s.responding_vertices for s in hybrid_metrics.supersteps
        ]
        best_fixed = min(runtimes["push"], runtimes["bpull"])
        rows.append([
            label,
            hybrid_metrics.num_supersteps,
            sign_flips(hybrid_metrics.q_trace),
            sum(1 for m in hybrid_metrics.mode_trace if "->" in m),
            f"{runtimes['hybrid'] / best_fixed:.2f}x",
        ])
        print(f"{label:28s} activity {sparkline(responding)}")
    print()
    print_table(
        ["style", "supersteps", "Q_t sign flips", "switches",
         "hybrid / best fixed"],
        rows,
        title="Appendix G boundary: switching helps steady regimes only",
    )


if __name__ == "__main__":
    main()

"""Rank a disk-resident web graph: push vs pushM vs b-pull vs hybrid.

This is the paper's motivating scenario (Section 1): PageRank over a web
graph whose messages do not fit in memory.  The example runs the wiki
stand-in with the paper's limited-memory budget on every engine and
prints the comparison Fig. 8(a) makes — watch push pay for spilled
messages while b-pull/hybrid avoid message I/O entirely.

Run with::

    python examples/web_ranking.py
"""

from repro import DATASETS, PageRank, get_dataset, run_job
from repro.analysis.reporting import fmt_bytes, fmt_seconds, print_table


def main() -> None:
    spec = DATASETS["wiki"]
    graph = get_dataset("wiki")
    print(f"dataset: {graph} (stand-in for wiki, scale {spec.scale})")
    print(f"workers: {spec.workers}, message buffer B_i = "
          f"{spec.buffer_per_worker} messages")

    rows = []
    for mode in ("push", "pushm", "pull", "bpull", "hybrid"):
        result = run_job(graph, PageRank(supersteps=5),
                         spec.job_config(mode))
        metrics = result.metrics
        rows.append([
            mode,
            fmt_seconds(metrics.compute_seconds),
            fmt_bytes(metrics.compute_io_bytes),
            fmt_bytes(metrics.total_net_bytes),
            f"{sum(s.spilled_messages for s in metrics.supersteps):,}",
        ])
    print_table(
        ["engine", "runtime", "disk I/O", "network", "spilled msgs"],
        rows,
        title="\nPageRank (5 supersteps), limited memory, HDD cluster",
    )
    print("\nb-pull and hybrid avoid message spills entirely; the pull")
    print("baseline drowns in random vertex reads (Fig. 8/10's shape).")


if __name__ == "__main__":
    main()

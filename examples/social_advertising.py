"""Simulate advertisement spread over a social network (the SA workload).

SA messages are advertisement lists — not commutative, so no Combiner
and no MOCgraph-style online computing; b-pull still wins by
concatenating messages per destination and keeping them off disk.

Run with::

    python examples/social_advertising.py
"""

from repro import JobConfig, SA, run_job, social_graph
from repro.analysis.reporting import fmt_bytes, fmt_seconds, print_table


def main() -> None:
    graph = social_graph(2_000, 12, seed=7, name="social-2k")
    program = SA(num_sources=5, interest_percent=60)

    rows = []
    final = None
    for mode in ("push", "bpull", "hybrid"):
        config = JobConfig(mode=mode, num_workers=4,
                           message_buffer_per_worker=50)
        result = run_job(graph, program, config)
        final = result
        rows.append([
            mode,
            result.metrics.num_supersteps,
            fmt_seconds(result.metrics.compute_seconds),
            fmt_bytes(result.metrics.compute_io_bytes),
            f"{result.metrics.total_messages:,}",
        ])
    print_table(
        ["engine", "supersteps", "runtime", "disk I/O", "ad messages"],
        rows,
        title="SA: advertisement spread, limited memory",
    )

    reached = [len(acc) for acc, _fresh in final.values]
    exposed = sum(1 for r in reached if r)
    print(f"\n{exposed}/{graph.num_vertices} people saw at least one ad")
    print(f"most-exposed person saw {max(reached)} distinct ads")
    top = sorted(range(len(reached)), key=reached.__getitem__)[-5:]
    print(f"top exposed vertices: {top}")


if __name__ == "__main__":
    main()

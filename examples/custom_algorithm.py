"""Write your own vertex program: reachability with hop limits.

The engine runs any :class:`repro.VertexProgram`.  The contract that
makes all five transports interchangeable is simple:

* ``update`` consumes messages and returns the new value plus the
  *responding* flag (the paper's setResFlag);
* ``message_value`` derives the outgoing message for one edge from the
  stored value alone (the pullRes/pushRes purity rule).

Run with::

    python examples/custom_algorithm.py
"""

from typing import Optional, Sequence, Tuple

from repro import (
    JobConfig,
    ProgramContext,
    UpdateResult,
    VertexProgram,
    run_job,
    social_graph,
)


class BoundedReachability(VertexProgram):
    """Mark every vertex reachable from a source within k hops.

    The value is ``(reached, hops_left_to_forward)``; messages carry the
    remaining hop budget.  Min-combinable?  No — we want the *maximum*
    remaining budget, which is still commutative, so we can combine.
    """

    name = "bounded-reachability"
    combinable = True
    all_active = False

    def __init__(self, source: int, max_hops: int) -> None:
        self.source = source
        self.max_hops = max_hops

    def initial_value(self, vid, ctx) -> Tuple[bool, int]:
        return (False, -1)

    def initially_active(self, vid, ctx) -> bool:
        return vid == self.source

    def update(self, vid, value, messages: Sequence[int],
               ctx: ProgramContext) -> UpdateResult:
        reached, budget = value
        if ctx.superstep == 1 and vid == self.source:
            return UpdateResult(value=(True, self.max_hops), respond=True)
        best = max(messages) if messages else -1
        if best > budget or (best >= 0 and not reached):
            return UpdateResult(value=(True, best), respond=best > 0)
        return UpdateResult(value=value, respond=False)

    def message_value(self, vid, value, dst, weight,
                      ctx) -> Optional[int]:
        _reached, budget = value
        if budget <= 0:
            return None
        return budget - 1

    def combine(self, a: int, b: int) -> int:
        return a if a >= b else b


def main() -> None:
    graph = social_graph(1_000, 6, seed=5, name="social-1k")
    for hops in (1, 2, 3, 5):
        program = BoundedReachability(source=0, max_hops=hops)
        result = run_job(graph, program,
                         JobConfig(mode="hybrid", num_workers=3,
                                   message_buffer_per_worker=50))
        reached = sum(1 for flag, _b in result.values if flag)
        print(f"within {hops} hop(s): {reached:>5} vertices reachable "
              f"({result.metrics.num_supersteps} supersteps)")


if __name__ == "__main__":
    main()

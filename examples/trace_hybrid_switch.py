"""Trace a hybrid SSSP run and inspect the switch decisions.

Where ``shortest_paths_switching.py`` reads the Q_t trace out of the
final metrics, this example turns on the tracing subsystem
(``JobConfig(trace=True)``) and works from the event stream instead:
every ``switch_decision`` instant carries the full set of Eq. 11
inputs the Switcher saw, and the trace summary breaks each superstep
into its load/pullRes/update/pushRes phases.

Run with::

    python examples/trace_hybrid_switch.py
"""

from repro import JobConfig, SSSP, run_job, social_graph
from repro.analysis.reporting import print_table


def main() -> None:
    graph = social_graph(
        800, 8, seed=42, tail_fraction=0.5, tail_chain=60,
        name="social-whiskers",
    )
    config = JobConfig(
        mode="hybrid",
        num_workers=4,
        message_buffer_per_worker=10,
        vblocks_per_worker=8,
        # the frontier sweep plus the first switches in both directions;
        # the long whisker tail oscillates and adds nothing here.
        max_supersteps=14,
        trace=True,
    )
    result = run_job(graph, SSSP(source=0), config)

    decisions = [
        e for e in result.trace.events if e.name == "switch_decision"
    ]
    rows = []
    for d in decisions:
        a = d.args
        rows.append([
            d.superstep,
            a["mode"],
            f"{a['q']:+.2e}",
            a["mco"],
            a["io_mdisk"],
            a["io_fragments"] + a["io_vrr"],
            a["rule"],
            a["planned_mode"] or "-",
        ])
    print_table(
        ["t", "mode", "Q_t", "M_co", "IO(M_disk)", "IO(frag+VRR)",
         "rule", "plans t+2"],
        rows,
        title=f"Switch decisions over {graph.name} (Eq. 11 inputs)",
    )

    print()
    print(result.trace.summary().table())

    switches = [
        e for e in result.trace.events if e.name == "mode_switch"
    ]
    labels = [f"{e.args['from']}->{e.args['to']}" for e in switches]
    print(f"\nexecuted switch supersteps: {labels or 'none'}")


if __name__ == "__main__":
    main()

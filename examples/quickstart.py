"""Quickstart: PageRank over a small graph with the hybrid engine.

Run with::

    python examples/quickstart.py
"""

from repro import Graph, JobConfig, PageRank, run_job


def main() -> None:
    # A toy directed graph: 0 and 1 form a hub, 2-5 point into it.
    graph = Graph(
        6,
        [
            (0, 1), (1, 0),
            (2, 0), (2, 1),
            (3, 1), (4, 1), (5, 0),
            (1, 2), (0, 3),
        ],
        name="toy",
    )

    config = JobConfig(
        mode="hybrid",            # adaptive push / b-pull switching
        num_workers=2,            # simulated computational nodes
        message_buffer_per_worker=4,  # B_i: messages held in memory
    )
    result = run_job(graph, PageRank(supersteps=10), config)

    print(f"graph: {graph}")
    print(f"supersteps: {result.metrics.num_supersteps}")
    print(f"mode trace: {result.metrics.mode_trace}")
    print(f"modeled runtime: {result.metrics.runtime_seconds * 1e3:.3f} ms")
    print(f"disk bytes during iterations: {result.metrics.compute_io_bytes}")
    print()
    print("vertex  pagerank")
    for vid, rank in enumerate(result.values):
        print(f"{vid:>6}  {rank:.6f}")


if __name__ == "__main__":
    main()

"""Shared infrastructure for the per-figure benchmark harness.

Every module in this directory regenerates one table or figure of the
paper: it runs the experiment through the real engines, prints the same
rows/series the paper reports, writes them to ``benchmarks/results/``,
and asserts the paper's qualitative *shape* (who wins, roughly by how
much, where crossovers fall).  Absolute numbers are modeled seconds from
the simulator's cost model, not wall-clock.

Run everything with::

    pytest benchmarks/ --benchmark-only

Set ``REPRO_BENCH_QUICK=1`` to run reduced matrices while developing.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

import pytest

from repro import AMAZON_CLUSTER, LOCAL_CLUSTER, JobConfig, run_job
from repro.analysis.reporting import format_table
from repro.core.engine import JobResult
from repro.datasets.registry import DATASETS, get_dataset

RESULTS_DIR = Path(__file__).parent / "results"

QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))

#: process-level cache so figures sharing runs (e.g. Fig. 8 runtime and
#: Fig. 10 I/O bytes) do not recompute them.
_CACHE: Dict[Tuple, JobResult] = {}

#: process-level cache of synthetically generated graphs, keyed by
#: (generator, size, seed, extra kwargs).  The perf benches build the
#: same 100k- and 1M-vertex graphs repeatedly; generation is O(E) with
#: Python-level RNG, so sharing one instance across modules saves more
#: wall-clock than any cell it feeds.  Safe because Graph is immutable
#: once built (the engines never mutate a loaded graph).
_GRAPH_CACHE: Dict[Tuple, object] = {}


def generated_graph(generator: Callable, num_vertices: int, *,
                    seed: int, **kwargs):
    """Memoised ``generator(num_vertices, seed=seed, **kwargs)``."""
    key = (generator.__module__, generator.__qualname__, num_vertices,
           seed, tuple(sorted(kwargs.items())))
    if key not in _GRAPH_CACHE:
        _GRAPH_CACHE[key] = generator(
            num_vertices, seed=seed, **kwargs
        )
    return _GRAPH_CACHE[key]


def run_cell(
    dataset: str,
    program_factory: Callable,
    program_key: str,
    mode: str,
    cluster=LOCAL_CLUSTER,
    **overrides,
) -> JobResult:
    """Run one experiment cell with memoisation.

    ``program_key`` must uniquely describe the program configuration
    (factories produce fresh program objects per run, so they cannot be
    the cache key themselves).
    """
    key = (dataset, program_key, mode, cluster.name,
           tuple(sorted(overrides.items())))
    if key not in _CACHE:
        graph = get_dataset(dataset)
        config = DATASETS[dataset].job_config(
            mode, cluster=cluster, **overrides
        )
        _CACHE[key] = run_job(graph, program_factory(), config)
    return _CACHE[key]


def emit(name: str, table: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    print()
    print(table)
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n", encoding="utf-8")


def once(benchmark, fn: Callable):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR

"""Fig. 16 — cost of loading raw graph data into each storage layout.

Three layouts: ``adj`` (adjacency list, push), ``VE-BLOCK`` (b-pull),
``adj+VE-BLOCK`` (hybrid stores edges twice).  Reported as ratios to
``adj``, for loading runtime and bytes written to local disks.

Expected shape: VE-BLOCK loads slower and writes more than adj (parsing
into fragments is CPU-intensive and the external sort re-writes the
edges); adj+VE-BLOCK adds only the fast sequential adjacency write on
top, so its runtime is just slightly above VE-BLOCK's while its written
bytes are the sum.
"""

from conftest import QUICK, emit, once
from repro.algorithms.pagerank import PageRank
from repro.analysis.reporting import format_table
from repro.core.runtime import Runtime
from repro.datasets.registry import DATASETS, get_dataset

GRAPHS = ("livej", "wiki") if QUICK else (
    "livej", "wiki", "orkut", "twi", "fri", "uk"
)

LAYOUTS = {"adj": "push", "VE-BLOCK": "bpull", "adj+VE-BLOCK": "hybrid"}


def collect():
    out = {}
    for graph_name in GRAPHS:
        graph = get_dataset(graph_name)
        spec = DATASETS[graph_name]
        for layout, mode in LAYOUTS.items():
            rt = Runtime(graph, PageRank(), spec.job_config(mode))
            rt.setup()
            out[(graph_name, layout)] = (
                rt.load_metrics.elapsed_seconds,
                rt.load_metrics.io.write,
            )
    return out


def test_fig16_loading(benchmark):
    data = once(benchmark, collect)
    runtime_rows = []
    io_rows = []
    for graph in GRAPHS:
        base_rt, base_io = data[(graph, "adj")]
        runtime_rows.append([graph] + [
            f"{data[(graph, layout)][0] / base_rt:.2f}"
            for layout in LAYOUTS
        ])
        io_rows.append([graph] + [
            f"{data[(graph, layout)][1] / base_io:.2f}"
            for layout in LAYOUTS
        ])
    emit("fig16a_loading_runtime", format_table(
        ["graph"] + list(LAYOUTS), runtime_rows,
        title="Fig. 16(a) loading runtime, ratio to adj",
    ))
    emit("fig16b_loading_io", format_table(
        ["graph"] + list(LAYOUTS), io_rows,
        title="Fig. 16(b) bytes written while loading, ratio to adj",
    ))
    for graph in GRAPHS:
        adj_rt, adj_io = data[(graph, "adj")]
        veb_rt, veb_io = data[(graph, "VE-BLOCK")]
        both_rt, both_io = data[(graph, "adj+VE-BLOCK")]
        # VE-BLOCK costs more than adj on both axes
        assert veb_rt > adj_rt, graph
        assert veb_io > adj_io, graph
        # storing edges twice: writes add up, runtime only inches up
        assert both_io > veb_io, graph
        assert veb_rt < both_rt < veb_rt * 1.6, graph

"""Recovery trade-off: checkpoint interval vs rework after a crash.

The classic fault-tolerance dial (Appendix A + docs/RESILIENCE.md): a
short checkpoint interval pays snapshot writes every few supersteps but
loses almost nothing to a crash; a long interval (or none — the
paper's recompute-from-scratch policy) is free until the crash throws
away most of the run.  This bench crashes disk-resident PageRank and
SSSP about two thirds of the way through and sweeps
``checkpoint_interval ∈ {None, 1, 2, 5}``, reporting modeled
checkpoint cost, modeled rework, and their sum — all from the
simulator's cost model, so the numbers are deterministic.

Every cell asserts final values identical to the fault-free run (the
recovery engine must never change the experiment), that rework shrinks
monotonically as the interval tightens, and that checkpoint cost grows
monotonically in return.  Results land in
``benchmarks/results/BENCH_recovery.json``.
"""

import json

from conftest import QUICK, emit, generated_graph, once
from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.analysis.reporting import format_table
from repro.core.config import FaultPlan, JobConfig
from repro.core.engine import run_job
from repro.datasets.generators import social_graph

INTERVALS = (None, 1, 2, 5)
NUM_VERTICES = 5_000 if QUICK else 20_000
AVG_DEGREE = 10
NUM_WORKERS = 5
BUFFER = 1000
PAGERANK_SUPERSTEPS = 12


def _graph():
    return generated_graph(
        social_graph, NUM_VERTICES, avg_degree=AVG_DEGREE, seed=11
    )


def _base_cfg(**overrides):
    return JobConfig(mode="hybrid", num_workers=NUM_WORKERS,
                     message_buffer_per_worker=BUFFER, **overrides)


def _sweep(program_key, program_factory, **cfg_kwargs):
    """One program's interval sweep; returns its result record."""
    graph = _graph()
    clean = run_job(graph, program_factory(), _base_cfg(**cfg_kwargs))
    total = len(clean.metrics.supersteps)
    crash_at = max(2, (2 * total) // 3)
    cells = []
    for interval in INTERVALS:
        result = run_job(graph, program_factory(), _base_cfg(
            **cfg_kwargs,
            checkpoint_interval=interval,
            fault=FaultPlan(worker=1, superstep=crash_at),
        ))
        assert result.values == clean.values, (
            f"{program_key} interval={interval}: recovery changed the "
            f"result")
        assert result.metrics.restarts == 1
        (recovery,) = result.metrics.recoveries
        checkpoint_seconds = result.metrics.checkpoint_seconds
        rework_seconds = recovery["rework_seconds"]
        cells.append({
            "interval": interval,
            "policy": recovery["policy"],
            "resume_after": recovery["resume_after"],
            "checkpoint_seconds": checkpoint_seconds,
            "rework_supersteps": recovery["rework_supersteps"],
            "rework_seconds": rework_seconds,
            "overhead_seconds": checkpoint_seconds + rework_seconds,
            "runtime_seconds": result.metrics.runtime_seconds,
        })
    # the provable ends of the trade-off (intermediate intervals are
    # not totally ordered: floor((c-1)/i)*i is not monotone in i, so
    # e.g. interval 5 can legitimately resume later than interval 2):
    # interval 1 loses no work and pays the most snapshots; scratch
    # (no interval) pays nothing and loses the most work.
    by_interval = {c["interval"]: c for c in cells}
    scratch = by_interval[None]
    tightest = by_interval[1]
    assert scratch["policy"] == "scratch"
    assert scratch["checkpoint_seconds"] == 0.0
    assert tightest["rework_seconds"] == 0.0, (
        f"{program_key}: interval 1 must resume right before the crash")
    for cell in cells:
        assert cell["rework_seconds"] <= scratch["rework_seconds"], (
            f"{program_key} interval={cell['interval']}: rework "
            f"exceeds recompute-from-scratch")
        assert (cell["checkpoint_seconds"]
                <= tightest["checkpoint_seconds"]), (
            f"{program_key} interval={cell['interval']}: snapshot "
            f"cost exceeds the every-superstep interval")
    assert scratch["rework_seconds"] > 0.0
    return {
        "program": program_key,
        "clean_supersteps": total,
        "crash_superstep": crash_at,
        "clean_runtime_seconds": clean.metrics.runtime_seconds,
        "cells": cells,
    }


def run_sweeps():
    return [
        _sweep("pagerank",
               lambda: PageRank(supersteps=PAGERANK_SUPERSTEPS),
               max_supersteps=PAGERANK_SUPERSTEPS),
        _sweep("sssp", lambda: SSSP(source=0)),
    ]


def test_recovery_tradeoff(benchmark, results_dir):
    records = once(benchmark, run_sweeps)
    rows = []
    for record in records:
        for cell in record["cells"]:
            rows.append([
                record["program"],
                "none" if cell["interval"] is None else cell["interval"],
                cell["policy"],
                cell["rework_supersteps"],
                f"{cell['checkpoint_seconds']:.3f}",
                f"{cell['rework_seconds']:.3f}",
                f"{cell['overhead_seconds']:.3f}",
            ])
    emit("recovery", format_table(
        ["program", "interval", "policy", "rework steps", "ckpt (s)",
         "rework (s)", "overhead (s)"],
        rows,
        title=(f"Recovery trade-off: crash at ~2/3 of the run "
               f"({NUM_VERTICES} vertices, deg {AVG_DEGREE}, "
               f"{NUM_WORKERS} workers, buffer {BUFFER})"),
    ))
    payload = {
        "config": {
            "num_vertices": NUM_VERTICES,
            "avg_degree": AVG_DEGREE,
            "num_workers": NUM_WORKERS,
            "message_buffer_per_worker": BUFFER,
            "intervals": [i if i is not None else "none"
                          for i in INTERVALS],
            "quick": QUICK,
        },
        "sweeps": records,
    }
    (results_dir / "BENCH_recovery.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

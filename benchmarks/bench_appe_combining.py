"""Appendix E — effectiveness of sender-side combining vs the threshold.

PageRank over orkut (the Fig. 26 setting, sufficient memory), sweeping
the sending threshold.  Three contenders:

* pushM            — MOCgraph as-is, no sender combining;
* pushM+com        — MOCgraph modified to combine inside each send
                     buffer: messages for the same vertex can only merge
                     if they meet before a flush;
* b-pull           — combining happens per pull response, independent of
                     the threshold.

Expected shapes: pushM's runtime grows with the threshold (the last
package of a flow cannot overlap computation); pushM+com's combining
ratio grows with the threshold; b-pull's combining ratio is high and
flat.  The paper picks 4 MB (scaled here to 4 KB) as the default.
"""

from conftest import emit, once, run_cell
from repro.algorithms.pagerank import PageRank
from repro.analysis.reporting import format_table

#: the paper sweeps 1..32 MB; at 1/1000 scale: 1..32 KB.
THRESHOLDS = [1024, 2048, 4096, 8192, 16384, 32768]

SUFFICIENT = dict(message_buffer_per_worker=None, graph_on_disk=False)


def combining_ratio(metrics):
    produced = metrics.total_messages
    saved = sum(s.mco for s in metrics.supersteps)
    return saved / produced if produced else 0.0


def collect():
    out = {}
    for threshold in THRESHOLDS:
        for label, mode, extra in (
            ("pushm", "pushm", {}),
            ("pushm+com", "pushm", {"sender_combine": True}),
            ("b-pull", "bpull", {}),
        ):
            result = run_cell(
                "orkut", lambda: PageRank(supersteps=5), "pagerank5",
                mode, sending_threshold_bytes=threshold, **extra,
                **SUFFICIENT,
            )
            out[(label, threshold)] = (
                result.metrics.compute_seconds,
                combining_ratio(result.metrics),
            )
    return out


def test_appe_combining(benchmark):
    data = once(benchmark, collect)
    runtime_rows = []
    ratio_rows = []
    for label in ("pushm", "pushm+com", "b-pull"):
        runtime_rows.append([label] + [
            f"{data[(label, t)][0] * 1e3:.2f}" for t in THRESHOLDS
        ])
        ratio_rows.append([label] + [
            f"{data[(label, t)][1]:.2f}" for t in THRESHOLDS
        ])
    headers = ["system"] + [f"{t // 1024}KB" for t in THRESHOLDS]
    emit("appe_runtime", format_table(
        headers, runtime_rows,
        title="Fig. 26(a) runtime (modeled ms) vs sending threshold "
              "(PageRank over orkut)",
    ))
    emit("appe_combining_ratio", format_table(
        headers, ratio_rows,
        title="Fig. 26(b) combining ratio vs sending threshold",
    ))

    # pushM (no combining) slows down as the threshold grows
    pushm_rt = [data[("pushm", t)][0] for t in THRESHOLDS]
    assert pushm_rt[-1] > pushm_rt[0]
    assert all(data[("pushm", t)][1] == 0.0 for t in THRESHOLDS)

    # pushM+com combines more with a larger buffer
    com_ratio = [data[("pushm+com", t)][1] for t in THRESHOLDS]
    assert com_ratio[-1] > com_ratio[0]
    assert all(a <= b + 0.02 for a, b in zip(com_ratio, com_ratio[1:]))

    # b-pull's combining is threshold-independent and beats pushM+com
    bp_ratio = [data[("b-pull", t)][1] for t in THRESHOLDS]
    assert max(bp_ratio) - min(bp_ratio) < 0.01
    for t in THRESHOLDS:
        assert data[("b-pull", t)][1] >= data[("pushm+com", t)][1]

    # at small thresholds the combining gain cannot offset much: the
    # paper's observation that pushM+com only helps at large thresholds
    small, large = THRESHOLDS[0], THRESHOLDS[-1]
    gain_small = data[("pushm", small)][0] - data[("pushm+com", small)][0]
    gain_large = data[("pushm", large)][0] - data[("pushm+com", large)][0]
    assert gain_large > gain_small

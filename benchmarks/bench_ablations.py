"""Ablations beyond the paper's figures (DESIGN.md Section 7).

These isolate the design choices the paper motivates but does not sweep:

* fragment clustering inside Eblocks (Section 4.1) — without it every
  edge carries its own auxiliary data and svertex read;
* the switching interval Δt (Section 5.3, fixed to 2 in the paper);
* range vs hash partitioning under VE-BLOCK — hash destroys the id
  locality that keeps fragments per vertex low.
"""

from conftest import emit, once, run_cell
from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.analysis.reporting import format_table


def test_ablation_fragment_clustering(benchmark):
    def collect():
        out = {}
        for clustering in (True, False):
            result = run_cell(
                "wiki", lambda: PageRank(supersteps=5), "pagerank5",
                "bpull", fragment_clustering=clustering,
            )
            out[clustering] = (
                result.metrics.compute_seconds,
                result.metrics.compute_io_bytes,
                result.runtime.total_fragments(),
            )
        return out

    data = once(benchmark, collect)
    rows = [
        ["clustered" if c else "one-per-edge",
         f"{data[c][0]:.3f}", f"{data[c][1] / 1e6:.2f}",
         f"{data[c][2]:,}"]
        for c in (True, False)
    ]
    emit("ablation_clustering", format_table(
        ["fragments", "runtime (s)", "io (MB)", "fragment count"],
        rows, title="Ablation: fragment clustering (PageRank over wiki)",
    ))
    # disabling clustering inflates fragments to |E| and with them the
    # auxiliary-data reads and random svertex-value reads
    assert data[False][2] > data[True][2]
    assert data[False][1] > data[True][1]
    assert data[False][0] > data[True][0]


def test_ablation_switching_interval(benchmark):
    def collect():
        out = {}
        for interval in (1, 2, 4, 8):
            result = run_cell(
                "twi", lambda: SSSP(source=0), "sssp0", "hybrid",
                switching_interval=interval,
            )
            trace = result.metrics.mode_trace
            switch_steps = [
                idx + 1 for idx, m in enumerate(trace) if "->" in m
            ]
            out[interval] = (result.metrics.compute_seconds, switch_steps)
        return out

    data = once(benchmark, collect)
    rows = [
        [interval, f"{runtime:.3f}", len(switches),
         ",".join(map(str, switches))]
        for interval, (runtime, switches) in sorted(data.items())
    ]
    emit("ablation_interval", format_table(
        ["Δt", "runtime (s)", "switches", "at supersteps"], rows,
        title="Ablation: switching interval (SSSP over twi, hybrid)",
    ))
    # a longer interval reacts later: the first switch can only move
    # later in the run as Δt grows (Section 5.3's accuracy ∝ 1/Δt).
    first_switch = [
        (data[i][1][0] if data[i][1] else 10**9) for i in (1, 2, 4, 8)
    ]
    assert all(a <= b for a, b in zip(first_switch, first_switch[1:]))


def test_ablation_partitioning(benchmark):
    def collect():
        out = {}
        for partition in ("range", "hash"):
            result = run_cell(
                "wiki", lambda: PageRank(supersteps=5), "pagerank5",
                "bpull", partition=partition,
            )
            out[partition] = (
                result.metrics.compute_seconds,
                result.runtime.total_fragments(),
                result.metrics.total_net_bytes,
            )
        return out

    data = once(benchmark, collect)
    rows = [
        [p, f"{data[p][0]:.3f}", f"{data[p][1]:,}",
         f"{data[p][2] / 1e6:.2f}"]
        for p in ("range", "hash")
    ]
    emit("ablation_partitioning", format_table(
        ["partitioning", "runtime (s)", "fragments", "net (MB)"],
        rows, title="Ablation: range vs hash partitioning "
                    "(PageRank over wiki, b-pull)",
    ))
    # hash partitioning scatters neighbors across blocks and workers:
    # more fragments and more network traffic
    assert data["hash"][1] > data["range"][1]
    assert data["hash"][2] > data["range"][2]

"""Fig. 2 — the motivating experiment: Giraph vs message-buffer size.

PageRank (10 supersteps) and SSSP over the wiki stand-in on 5 nodes,
with the per-worker message buffer swept from unlimited ("mem") down to
0.5k messages (the paper sweeps 9.5M -> 0.5M at full scale; we are at
1/1000).  Reported per buffer setting: overall runtime and the
percentage of messages that hit disk.

Expected shape: the spill percentage climbs from 0% toward ~98% and the
runtime climbs with it; even a few percent of spilled messages already
costs noticeably (the paper's 130 s -> 160 s at 4%).
"""

from conftest import emit, once, run_cell
from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.analysis.reporting import format_table

#: buffer ticks: the paper's 0.5M..9.5M and "mem", scaled by 1/1000.
BUFFERS = [500, 2000, 3500, 5000, 6500, 8000, 9500, None]


def sweep(program_factory, program_key):
    rows = []
    series = []
    for buffer in BUFFERS:
        result = run_cell(
            "wiki", program_factory, program_key, "push",
            message_buffer_per_worker=buffer, num_workers=5,
        )
        metrics = result.metrics
        produced = metrics.total_messages
        spilled = sum(s.spilled_messages for s in metrics.supersteps)
        pct = 100.0 * spilled / produced if produced else 0.0
        label = "mem" if buffer is None else f"{buffer / 1000:.1f}k"
        rows.append([label, f"{metrics.compute_seconds:.3f}",
                     f"{pct:.1f}%"])
        series.append((buffer, metrics.compute_seconds, pct))
    return rows, series


def check_shape(series):
    # runtime and spill percentage must both grow as the buffer shrinks
    # (series is ordered smallest buffer -> unlimited).
    runtimes = [runtime for _b, runtime, _p in series]
    percents = [pct for _b, _r, pct in series]
    assert percents[-1] == 0.0, "unlimited buffer must not spill"
    assert percents[0] > 80.0, "smallest buffer should spill most messages"
    assert runtimes[0] > 2.0 * runtimes[-1], (
        "heavy spilling must dominate the runtime"
    )
    assert all(a >= b - 1e-9 for a, b in zip(percents, percents[1:]))


def test_fig02a_pagerank(benchmark):
    rows, series = once(
        benchmark, lambda: sweep(lambda: PageRank(supersteps=10),
                                 "pagerank10")
    )
    emit("fig02a_pagerank", format_table(
        ["message buffer", "runtime (modeled s)", "% messages on disk"],
        rows,
        title="Fig. 2(a) PageRank over wiki (push/Giraph, 5 workers)",
    ))
    check_shape(series)


def test_fig02b_sssp(benchmark):
    rows, series = once(
        benchmark, lambda: sweep(lambda: SSSP(source=0), "sssp0")
    )
    emit("fig02b_sssp", format_table(
        ["message buffer", "runtime (modeled s)", "% messages on disk"],
        rows,
        title="Fig. 2(b) SSSP over wiki (push/Giraph, 5 workers)",
    ))
    # SSSP produces fewer messages per superstep; shape is the same but
    # the spill never reaches PageRank's extremes.
    runtimes = [runtime for _b, runtime, _p in series]
    assert runtimes[0] > runtimes[-1]

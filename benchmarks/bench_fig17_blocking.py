"""Fig. 17 — blocking time (message exchange) of push vs pushM vs b-pull.

PageRank with sufficient memory (the Fig. 7(a) setting) over wiki and
orkut; per superstep we report the modeled time a worker spends
exchanging messages.  b-pull starts exchanging from superstep 2 (its
superstep 1 only updates and sets flags).

Expected shape: b-pull's blocking time is comparable to push's — the
block-centric protocol does not serialise communication — and usually
lower, because concatenation/combining moves fewer bytes.
"""

import pytest

from conftest import emit, once, run_cell
from repro.algorithms.pagerank import PageRank
from repro.analysis.reporting import format_table

GRAPHS = ("wiki", "orkut")
MODES = ("push", "pushm", "bpull")
SUFFICIENT = dict(message_buffer_per_worker=None, graph_on_disk=False)


def collect():
    out = {}
    for graph in GRAPHS:
        for mode in MODES:
            result = run_cell(graph, lambda: PageRank(supersteps=5),
                              "pagerank5", mode, **SUFFICIENT)
            out[(graph, mode)] = [
                s.blocking_seconds for s in result.metrics.supersteps
            ]
    return out


@pytest.mark.parametrize("graph", GRAPHS)
def test_fig17_blocking_time(graph, benchmark):
    data = once(benchmark, collect)
    rows = []
    for mode in MODES:
        series = data[(graph, mode)]
        rows.append(
            [mode]
            + [f"{b * 1e3:.3f}" for b in series]
            + [f"{sum(series) / len(series) * 1e3:.3f}"]
        )
    headers = (["mode"] + [f"t{t}" for t in range(1, 6)] + ["mean"])
    emit(f"fig17_blocking_{graph}", format_table(
        headers, rows,
        title=f"Fig. 17 blocking time per superstep (ms), {graph}",
    ))
    # b-pull exchanges nothing in superstep 1...
    assert data[(graph, "bpull")][0] == 0.0
    # ...and from superstep 2 on it stays comparable to push (within
    # 1.5x) and wins on average over the full exchange supersteps.
    push_mean = sum(data[(graph, "push")][1:]) / 4
    bpull_mean = sum(data[(graph, "bpull")][1:]) / 4
    assert bpull_mean <= push_mean * 1.5
    for push_b, bpull_b in zip(data[(graph, "push")][1:],
                               data[(graph, "bpull")][1:]):
        assert bpull_b <= push_b * 2.0

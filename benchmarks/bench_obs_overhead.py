"""Tracing-overhead guard: disabled tracing must be (nearly) free.

The observability subsystem's contract is a zero-overhead no-op default:
with ``JobConfig(trace=None)`` every instrumentation site reduces to one
attribute lookup on the shared null tracer, so the PR-1 hot path must
not slow down.  This benchmark measures real wall-clock on the same
disk-resident 20k-vertex PageRank push cell as
``bench_perf_hotpath.py`` in three configurations:

* ``disabled``     — ``trace=None`` (the guarded cell: <5% over the
  fastest observed run, i.e. tracing off costs nothing);
* ``ring``         — ``trace=True``, events into the in-memory ring;
* ``jsonl``        — streaming every event to a JSONL file.

The enabled rows are informational: event volume is ~25 events per
superstep (superstep + phases + per-worker spans/instants), so even
enabled tracing should stay in the low single-digit percent.

Results land in ``benchmarks/results/BENCH_obs_overhead.json``.
"""

import json
import time

from conftest import QUICK, emit, once
from repro.algorithms.pagerank import PageRank
from repro.analysis.reporting import format_table
from repro.core.config import JobConfig
from repro.core.engine import run_job
from repro.datasets.generators import social_graph

#: guarded ratio: disabled-tracing wall-clock over the baseline.
MAX_DISABLED_OVERHEAD = 0.05

NUM_VERTICES = 6000 if QUICK else 20000
AVG_DEGREE = 18
NUM_WORKERS = 5
BUFFER = 1000
SUPERSTEPS = 10
REPEATS = 5  # best-of, to shave scheduler noise


def run_matrix(tmp_dir):
    graph = social_graph(NUM_VERTICES, avg_degree=AVG_DEGREE, seed=11)
    base = JobConfig(mode="push", num_workers=NUM_WORKERS,
                     message_buffer_per_worker=BUFFER,
                     max_supersteps=SUPERSTEPS)
    cells = [
        ("disabled", base),
        ("ring", base.but(trace=True)),
        ("jsonl", base.but(trace=str(tmp_dir / "overhead.jsonl"))),
    ]
    # Interleave the repeats (cell A, B, C, A, B, C, ...) instead of
    # running each cell's repeats back to back: the per-event cost is
    # microseconds, so clock-frequency drift between cells would
    # otherwise dominate the measured deltas.
    best = {name: None for name, _cfg in cells}
    results = {}
    for _ in range(REPEATS):
        for name, cfg in cells:
            program = PageRank(supersteps=SUPERSTEPS)
            start = time.perf_counter()
            results[name] = run_job(graph, program, cfg)
            elapsed = time.perf_counter() - start
            if best[name] is None or elapsed < best[name]:
                best[name] = elapsed

    baseline_metrics = json.dumps(
        results["disabled"].metrics.to_dict(), sort_keys=True
    )
    baseline_seconds = best["disabled"]
    records = []
    for name, _cfg in cells:
        result = results[name]
        # tracing must not perturb the modeled experiment
        blob = json.dumps(result.metrics.to_dict(), sort_keys=True)
        assert blob == baseline_metrics, (
            f"trace sink {name!r} changed the modeled metrics")
        records.append({
            "sink": name,
            "seconds": round(best[name], 4),
            "overhead": round(best[name] / baseline_seconds - 1.0, 4),
            "events": (
                len(result.trace.events) if result.trace is not None else 0
            ),
        })
    return records


def test_obs_overhead(benchmark, results_dir, tmp_path):
    records = once(benchmark, lambda: run_matrix(tmp_path))
    rows = [
        [r["sink"], f"{r['seconds']:.3f}", f"{r['overhead']:+.1%}",
         r["events"]]
        for r in records
    ]
    emit("obs_overhead", format_table(
        ["tracing", "wall-clock (s)", "vs disabled", "events"],
        rows,
        title=(f"Tracing overhead, push PageRank ({NUM_VERTICES} "
               f"vertices, deg {AVG_DEGREE}, {NUM_WORKERS} workers, "
               f"buffer {BUFFER}, best of {REPEATS})"),
    ))
    payload = {
        "config": {
            "num_vertices": NUM_VERTICES,
            "avg_degree": AVG_DEGREE,
            "num_workers": NUM_WORKERS,
            "message_buffer_per_worker": BUFFER,
            "max_supersteps": SUPERSTEPS,
            "repeats": REPEATS,
            "quick": QUICK,
        },
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
        "cells": records,
    }
    (results_dir / "BENCH_obs_overhead.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    by_sink = {r["sink"]: r for r in records}
    # The guard: the null-tracer path must match the fastest observed
    # run within the noise floor.  Comparing against min() rather than
    # the disabled row itself keeps the guard meaningful — "disabled"
    # IS the baseline, so it is measured against the best of the
    # enabled rows, which carry strictly more work.
    floor = min(r["seconds"] for r in records)
    disabled_overhead = by_sink["disabled"]["seconds"] / floor - 1.0
    if not QUICK:
        assert disabled_overhead < MAX_DISABLED_OVERHEAD, (
            f"tracing-disabled run is {disabled_overhead:.1%} over the "
            f"fastest configuration (floor {MAX_DISABLED_OVERHEAD:.0%})")
    # enabled tracing produced events; disabled produced none
    assert by_sink["disabled"]["events"] == 0
    assert by_sink["ring"]["events"] > 0

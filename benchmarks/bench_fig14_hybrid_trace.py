"""Fig. 14 — dissecting hybrid during iterations (SSSP over twi).

Per-superstep traces of the performance metric Q_t, disk I/O, network
messages, and memory usage for push, b-pull, and hybrid, on both
hardware profiles.

Expected shapes:

* Q_t changes sign during the run (the b-pull-friendly middle, the
  push-friendly tail), and the *sign pattern* is hardware-independent —
  it is dominated by C_io(push) - C_io(b-pull), which depends only on
  the graph topology and the algorithm (Section 6.2);
* |Q_t| is larger on the HDD cluster — the expected switching gain
  shrinks on SSDs;
* the b-pull -> push switch superstep shows a transient resource bump
  (it pulls and pushes in the same superstep), quantified below.
"""

from conftest import emit, once, run_cell
from repro.algorithms.sssp import SSSP
from repro.analysis.reporting import format_table
from repro.core.config import AMAZON_CLUSTER, LOCAL_CLUSTER

DATASET = "twi"


def collect():
    runs = {}
    for cluster in (LOCAL_CLUSTER, AMAZON_CLUSTER):
        for mode in ("push", "bpull", "hybrid"):
            runs[(cluster.name, mode)] = run_cell(
                DATASET, lambda: SSSP(source=0), "sssp0", mode,
                cluster=cluster,
            )
    return runs


def sign_pattern(q_trace):
    return [None if q is None else (q >= 0) for q in q_trace]


def test_fig14a_qt_sign_hardware_independent(benchmark):
    runs = once(benchmark, collect)
    hdd = runs[("local", "hybrid")].metrics
    ssd = runs[("amazon", "hybrid")].metrics
    rows = []
    for idx in range(min(len(hdd.q_trace), len(ssd.q_trace))):
        qh, qs = hdd.q_trace[idx], ssd.q_trace[idx]
        rows.append([
            idx + 1,
            hdd.mode_trace[idx],
            "n/a" if qh is None else f"{qh:+.3e}",
            "n/a" if qs is None else f"{qs:+.3e}",
        ])
    emit("fig14a_qt", format_table(
        ["superstep", "mode (HDD run)", "Q_t HDD", "Q_t SSD"],
        rows, title="Fig. 14(a) performance metric Q_t (SSSP over twi)",
    ))
    # "the switching points do not change" (Section 6.2): compare signs
    # where the metric is significant — the near-zero early supersteps
    # carry no decision weight on either hardware profile.
    threshold = 0.01 * max(
        abs(q) for q in hdd.q_trace if q is not None
    )
    significant = [
        (qh >= 0, qs >= 0)
        for qh, qs in zip(hdd.q_trace, ssd.q_trace)
        if qh is not None and qs is not None and abs(qh) >= threshold
    ]
    assert significant, "expected significant Q_t samples"
    agree = sum(1 for a, b in significant if a == b)
    assert agree == len(significant), significant
    signs = [s for s in sign_pattern(hdd.q_trace) if s is not None]
    assert True in signs and False in signs, "Q_t must change sign"
    # |Q_t| larger on HDD whenever the metric is nonzero
    pairs = [
        (abs(qh), abs(qs))
        for qh, qs in zip(hdd.q_trace, ssd.q_trace)
        if qh is not None and qs is not None and qh != 0
    ]
    bigger = sum(1 for h, s in pairs if h >= s)
    assert bigger >= 0.9 * len(pairs)


def test_fig14bcd_resource_traces(benchmark):
    runs = once(benchmark, collect)
    rows = []
    traces = {
        mode: runs[("local", mode)].metrics
        for mode in ("push", "bpull", "hybrid")
    }
    depth = max(m.num_supersteps for m in traces.values())
    for t in range(depth):
        row = [t + 1]
        for mode in ("push", "bpull", "hybrid"):
            steps = traces[mode].supersteps
            if t < len(steps):
                s = steps[t]
                row += [f"{s.io.total / 1e6:.2f}",
                        f"{s.net_transfer_units}",
                        f"{s.memory_bytes / 1e3:.0f}"]
            else:
                row += ["-", "-", "-"]
        rows.append(row)
    emit("fig14bcd_resources", format_table(
        ["t", "push io(MB)", "push #msg", "push mem(KB)",
         "bpull io(MB)", "bpull #msg", "bpull mem(KB)",
         "hyb io(MB)", "hyb #msg", "hyb mem(KB)"],
        rows,
        title="Fig. 14(b-d) I/O, network messages, memory per superstep",
    ))
    hybrid = traces["hybrid"]
    switches = [
        idx for idx, mode in enumerate(hybrid.mode_trace)
        if mode == "bpull->push"
    ]
    if switches:
        # the switch superstep does extra work: pulls + pushes at once
        idx = switches[0]
        switch_io = hybrid.supersteps[idx].io.total
        neighbors = [
            hybrid.supersteps[j].io.total
            for j in (idx - 1, idx + 1)
            if 0 <= j < len(hybrid.supersteps)
        ]
        assert switch_io >= max(neighbors) * 0.5

    # hybrid metadata keeps VE-BLOCK resident even while pushing
    push_mem = max(s.memory_bytes for s in traces["push"].supersteps)
    hybrid_mem = max(s.memory_bytes for s in hybrid.supersteps)
    assert hybrid_mem >= push_mem

"""Appendix F / Table 5 — the GraphLab PowerGraph disk extension.

Five scenarios of the pull baseline over the three small graphs:

* ``original``      — stock PowerGraph, all data in memory;
* ``ext-mem``       — the disk extension with everything still memory
                      resident (validates the extension adds ~nothing);
* ``ext-edge``      — edges on disk, vertices in memory;
* ``ext-edge-v3``   — edges on disk, vertices behind an LRU cache that
                      (just) fits the working set;
* ``ext-edge-v2.5`` — the cache shrunk by the paper's 2.5/3 ratio, now
                      *below* the working set.

The paper's absolute 3M / 2.5M per-task capacities happened to bracket
the per-task working set (local vertices + vertex-cut mirrors) of all
three graphs; our stand-ins have different replication factors, so the
capacities are derived by bracketing the *measured* working set the same
way — preserving the phenomenon Table 5 demonstrates: runtime is fine
while the cache holds the working set and collapses as soon as it does
not (654 s vs 4.5 s for PageRank/livej at full scale).
"""

import pytest

from conftest import emit, once, run_cell
from repro.algorithms.lpa import LPA
from repro.algorithms.pagerank import PageRank
from repro.algorithms.sa import SA
from repro.algorithms.sssp import SSSP
from repro.analysis.reporting import format_table

GRAPHS = ("livej", "wiki", "orkut")

ALGOS = {
    "pagerank": (lambda: PageRank(supersteps=5), "pagerank5"),
    "sssp": (lambda: SSSP(source=0), "sssp0"),
    "lpa": (lambda: LPA(supersteps=5), "lpa5"),
    "sa": (lambda: SA(num_sources=3), "sa3"),
}

_working_set_cache = {}


def working_set(graph, algo):
    """Max per-worker distinct cache entries (locals + mirrors).

    Measured by running the same algorithm once with an effectively
    unbounded cache and reading how many entries it accumulated.
    """
    if (graph, algo) not in _working_set_cache:
        factory, key = ALGOS[algo]
        result = run_cell(graph, factory, f"{key}_ws", "pull",
                          graph_on_disk=True,
                          lru_capacity_vertices=10**9,
                          message_buffer_per_worker=None)
        _working_set_cache[(graph, algo)] = max(
            w.vertex_cache.resident for w in result.runtime.workers
        )
    return _working_set_cache[(graph, algo)]


def scenarios_for(graph, algo):
    fits = int(working_set(graph, algo) * 1.02)
    thrashes = int(fits * 2.5 / 3.0)
    return {
        "original": dict(graph_on_disk=False,
                         message_buffer_per_worker=None),
        "ext-mem": dict(graph_on_disk=False,
                        message_buffer_per_worker=None),
        "ext-edge": dict(graph_on_disk=True,
                         vertices_on_disk_for_pull=False,
                         message_buffer_per_worker=None),
        "ext-edge-v3": dict(graph_on_disk=True,
                            lru_capacity_vertices=fits,
                            message_buffer_per_worker=None),
        "ext-edge-v2.5": dict(graph_on_disk=True,
                              lru_capacity_vertices=thrashes,
                              message_buffer_per_worker=None),
    }


SCENARIOS = ("original", "ext-mem", "ext-edge", "ext-edge-v3",
             "ext-edge-v2.5")


def collect(algo):
    factory, key = ALGOS[algo]
    out = {}
    for graph in GRAPHS:
        for scenario, overrides in scenarios_for(graph, algo).items():
            result = run_cell(graph, factory, f"{key}_{scenario}", "pull",
                              **overrides)
            out[(graph, scenario)] = result.metrics.compute_seconds
    return out


@pytest.mark.parametrize("algo", sorted(ALGOS))
def test_table5_scenarios(algo, benchmark):
    data = once(benchmark, lambda: collect(algo))
    rows = []
    for scenario in SCENARIOS:
        rows.append([scenario] + [
            f"{data[(graph, scenario)]:.3f}" for graph in GRAPHS
        ])
    emit(f"table5_{algo}", format_table(
        ["scenario"] + list(GRAPHS), rows,
        title=f"Table 5 runtime (modeled s) of modified GraphLab, {algo}",
    ))
    for graph in GRAPHS:
        original = data[(graph, "original")]
        ext_mem = data[(graph, "ext-mem")]
        ext_edge = data[(graph, "ext-edge")]
        v3 = data[(graph, "ext-edge-v3")]
        v25 = data[(graph, "ext-edge-v2.5")]
        # the extension itself is free when memory suffices
        assert ext_mem == pytest.approx(original), graph
        # edges-on-disk costs a bit; vertex caching costs more
        assert ext_edge >= original, graph
        assert v3 >= ext_edge, graph
        # the cliff: the smaller cache thrashes, the larger one keeps
        # the working set (Table 5's 654s vs 4.5s row).  SA's frontier
        # moves, so its re-access loop — and with it the thrash factor —
        # is milder than for the algorithms that sweep every vertex.
        cliff = 1.5 if algo == "sa" else 2.0
        assert v25 > cliff * v3, graph

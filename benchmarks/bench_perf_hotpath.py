"""Hot-path executor benchmark: batched vs reference wall-clock.

Unlike the figure benchmarks (which report *modeled* seconds), this one
measures real wall-clock time: the batched superstep executor
(aggregated ``SimulatedDisk.charge`` calls, bitset responding flags,
per-destination-worker staging, fan-out deposits) against the faithful
pre-optimization executor kept in ``repro.core.modes.reference``.

Both executors must produce byte-identical ``JobMetrics.to_dict()``
output — asserted here for every measured cell — so the speedup is pure
interpreter-overhead removal, not a change in the modeled experiment.

The guarded cell is disk-resident PageRank in push mode (the paper's
Giraph baseline, also the hottest path: every edge stages a message):
20k vertices / avg degree 18 / 5 workers / 1k message buffer must run
at least 3x faster under the batched executor.  The b-pull and hybrid
rows are informational — their jobs spend a larger share of wall-clock
in one-time setup (VE-block construction), which dilutes the job-level
ratio.

Results land in ``benchmarks/results/BENCH_hotpath.json``.
"""

import json
import time

from conftest import QUICK, RESULTS_DIR, emit, once
from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.analysis.reporting import format_table
from repro.core.config import JobConfig
from repro.core.engine import run_job
from repro.datasets.generators import social_graph

#: guarded wall-clock ratio for the push-mode PageRank cell.
MIN_PUSH_SPEEDUP = 3.0

NUM_VERTICES = 6000 if QUICK else 20000
AVG_DEGREE = 18
NUM_WORKERS = 5
BUFFER = 1000
SUPERSTEPS = 10
REPEATS = 2  # best-of, to shave scheduler noise


def _graph():
    return social_graph(NUM_VERTICES, avg_degree=AVG_DEGREE, seed=11)


def _time_job(graph, program_factory, cfg):
    """Best-of-``REPEATS`` wall-clock for one (executor, cell)."""
    best = None
    result = None
    for _ in range(REPEATS):
        program = program_factory()
        start = time.perf_counter()
        result = run_job(graph, program, cfg)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def _measure_cell(graph, program_factory, mode):
    base = JobConfig(mode=mode, num_workers=NUM_WORKERS,
                     message_buffer_per_worker=BUFFER,
                     max_supersteps=SUPERSTEPS)
    ref_s, ref = _time_job(graph, program_factory,
                           base.but(executor="reference"))
    new_s, new = _time_job(graph, program_factory,
                           base.but(executor="batched"))
    # the optimization must not change the modeled experiment at all
    assert json.dumps(new.metrics.to_dict(), sort_keys=True) == \
        json.dumps(ref.metrics.to_dict(), sort_keys=True), (
            f"batched executor diverged from reference in mode {mode!r}")
    assert new.values == ref.values
    return {
        "mode": mode,
        "reference_seconds": round(ref_s, 4),
        "batched_seconds": round(new_s, 4),
        "speedup": round(ref_s / new_s, 3),
    }


def run_matrix():
    graph = _graph()
    cells = [
        ("pagerank", lambda: PageRank(supersteps=SUPERSTEPS), "push"),
        ("pagerank", lambda: PageRank(supersteps=SUPERSTEPS), "bpull"),
        ("pagerank", lambda: PageRank(supersteps=SUPERSTEPS), "hybrid"),
        ("sssp", lambda: SSSP(source=0), "push"),
    ]
    records = []
    for program_key, factory, mode in cells:
        record = _measure_cell(graph, factory, mode)
        record["program"] = program_key
        records.append(record)
    return records


def test_hotpath_speedup(benchmark, results_dir):
    records = once(benchmark, run_matrix)
    rows = [
        [r["program"], r["mode"], f"{r['reference_seconds']:.2f}",
         f"{r['batched_seconds']:.2f}", f"{r['speedup']:.2f}x"]
        for r in records
    ]
    emit("hotpath", format_table(
        ["program", "mode", "reference (s)", "batched (s)", "speedup"],
        rows,
        title=(f"Hot-path executor wall-clock "
               f"({NUM_VERTICES} vertices, deg {AVG_DEGREE}, "
               f"{NUM_WORKERS} workers, buffer {BUFFER})"),
    ))
    payload = {
        "config": {
            "num_vertices": NUM_VERTICES,
            "avg_degree": AVG_DEGREE,
            "num_workers": NUM_WORKERS,
            "message_buffer_per_worker": BUFFER,
            "max_supersteps": SUPERSTEPS,
            "repeats": REPEATS,
            "quick": QUICK,
        },
        "cells": records,
    }
    (results_dir / "BENCH_hotpath.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    guarded = next(r for r in records
                   if r["program"] == "pagerank" and r["mode"] == "push")
    if not QUICK:
        assert guarded["speedup"] >= MIN_PUSH_SPEEDUP, (
            f"push-mode PageRank speedup {guarded['speedup']}x is below "
            f"the {MIN_PUSH_SPEEDUP}x floor")
    # every cell must at least not regress
    assert all(r["speedup"] > 1.0 for r in records)

"""Appendix G — the boundary of hybrid across algorithm styles.

The paper divides algorithms (after Shang & Yu) into three styles and
discusses where its switching helps:

* **Always-Active-Style** (PageRank): prediction exact, hybrid makes one
  smart choice and sticks with it;
* **Traversal-Style** (SSSP): prediction lags but the Q_t sign stays put
  for long stretches, so delayed switching still accumulates gain;
* **Multi-Phase-Style** (here: PhasedBFS, the paper's MST stand-in):
  the active volume swells and collapses once per phase, Q_t's sign
  flips at every boundary, and the Δt = 2 delay means each switch fires
  roughly when the phase that justified it is over — "the sum of gains
  after executing the delayed switching is negligible".

This bench quantifies all three on livej-scale graphs.
"""

from conftest import emit, once, run_cell
from repro.algorithms.pagerank import PageRank
from repro.algorithms.phased_bfs import PhasedBFS
from repro.algorithms.sssp import SSSP
from repro.analysis.reporting import format_table

STYLES = {
    "always-active": (lambda: PageRank(supersteps=10), "pagerank10"),
    "traversal": (lambda: SSSP(source=0), "sssp0"),
    "multi-phase": (
        lambda: PhasedBFS(sources=(0, 400, 800, 1200)), "phased4",
    ),
}


def sign_flips(q_trace):
    signs = [q >= 0 for q in q_trace if q is not None]
    return sum(1 for a, b in zip(signs, signs[1:]) if a != b)


def collect():
    out = {}
    for style, (factory, key) in STYLES.items():
        runtimes = {}
        for mode in ("push", "bpull", "hybrid"):
            result = run_cell("livej", factory, key, mode)
            runtimes[mode] = result.metrics.compute_seconds
            if mode == "hybrid":
                flips = sign_flips(result.metrics.q_trace)
                switches = sum(
                    1 for m in result.metrics.mode_trace if "->" in m
                )
                supersteps = result.metrics.num_supersteps
        out[style] = (runtimes, flips, switches, supersteps)
    return out


def test_appg_boundary(benchmark):
    data = once(benchmark, collect)
    rows = []
    for style, (runtimes, flips, switches, supersteps) in data.items():
        best = min(runtimes["push"], runtimes["bpull"])
        rows.append([
            style, supersteps,
            f"{runtimes['push']:.3f}", f"{runtimes['bpull']:.3f}",
            f"{runtimes['hybrid']:.3f}",
            f"{runtimes['hybrid'] / best:.2f}x",
            flips, switches,
        ])
    emit("appg_boundary", format_table(
        ["style", "ss", "push (s)", "bpull (s)", "hybrid (s)",
         "hybrid/best-fixed", "Q sign flips", "switches"],
        rows,
        title="Appendix G: hybrid across algorithm styles (livej)",
    ))

    aa_run, aa_flips, _sw, aa_ss = data["always-active"]
    mp_run, mp_flips, _sw2, mp_ss = data["multi-phase"]
    tr_run, _f, _s, _ss = data["traversal"]

    # Always-Active: a stable decision — at most one sign regime change
    # per hardware reality, and hybrid tracks the best fixed transport.
    assert aa_flips <= 1
    assert aa_run["hybrid"] <= 1.1 * min(aa_run["push"], aa_run["bpull"])

    # Multi-Phase: Q_t's sign flips at every phase boundary — roughly
    # twice per phase against a handful for the other styles.
    assert mp_flips >= 8
    assert mp_flips > 4 * aa_flips

    # Traversal: hybrid still lands within the fixed transports.
    assert tr_run["hybrid"] <= max(tr_run["push"], tr_run["bpull"]) * 1.05

    # And the paper's conclusion: for multi-phase, the delayed switching
    # accumulates no gain over simply picking the better fixed transport
    # (here it plainly loses to it).
    mp_best = min(mp_run["push"], mp_run["bpull"])
    assert mp_run["hybrid"] >= 1.0 * mp_best

"""Tables 3 and 4 — the experimental setup itself.

Table 3 (cluster configurations) is encoded in the
:class:`DiskProfile`/:class:`ClusterProfile` objects; Table 4 (datasets)
in the synthetic stand-in registry.  This bench prints both so a run of
the harness documents exactly what every other figure used, and verifies
the structural fidelity of the stand-ins (average degree, skew, worker
and buffer defaults).
"""

from conftest import emit, once
from repro.analysis.reporting import format_table
from repro.core.config import AMAZON_CLUSTER, LOCAL_CLUSTER
from repro.datasets.registry import DATASETS, dataset_names, get_dataset


def test_table3_cluster_profiles(benchmark):
    def collect():
        rows = []
        for cluster in (LOCAL_CLUSTER, AMAZON_CLUSTER):
            disk = cluster.disk
            rows.append([
                cluster.name, disk.name,
                f"{disk.random_read_mbps}", f"{disk.random_write_mbps}",
                f"{disk.seq_read_mbps}", f"{disk.network_mbps}",
                f"{cluster.cpu.speed}",
            ])
        return rows

    rows = once(benchmark, collect)
    emit("table3_clusters", format_table(
        ["cluster", "disk", "s_rr MB/s", "s_rw MB/s", "s_sr MB/s",
         "s_net MB/s", "cpu speed"],
        rows,
        title=("Table 3 cluster profiles (random throughputs are the "
               "paper's fio numbers; sequential are pure-pattern device "
               "figures — see DESIGN.md)"),
    ))
    assert LOCAL_CLUSTER.disk.random_read_mbps < (
        AMAZON_CLUSTER.disk.random_read_mbps
    )
    assert AMAZON_CLUSTER.cpu.speed < LOCAL_CLUSTER.cpu.speed


def test_table4_datasets(benchmark):
    def collect():
        rows = []
        for name in dataset_names():
            spec = DATASETS[name]
            graph = get_dataset(name)
            rows.append([
                name, spec.kind,
                f"{spec.paper_vertices}/{spec.paper_edges}",
                f"{graph.num_vertices:,}", f"{graph.num_edges:,}",
                f"{graph.average_degree:.1f}", f"{spec.avg_degree}",
                spec.scale, spec.workers, spec.buffer_per_worker,
            ])
        return rows

    rows = once(benchmark, collect)
    emit("table4_datasets", format_table(
        ["graph", "kind", "paper |V|/|E|", "|V|", "|E|", "degree",
         "paper degree", "scale", "workers", "B_i"],
        rows, title="Table 4 dataset stand-ins",
    ))
    for name in dataset_names():
        spec = DATASETS[name]
        graph = get_dataset(name)
        assert abs(graph.average_degree - spec.avg_degree) < (
            0.35 * spec.avg_degree
        ), name

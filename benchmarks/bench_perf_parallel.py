"""Process-pool benchmark: parallelism ∈ {1, 2, 4} wall-clock sweep.

Measures real wall-clock time (not modeled seconds) of the same job
executed in-process (``parallelism=1``) and across a persistent
fork-based worker pool (2 and 4 processes), through both the batched
and vectorized tiers.  Every measured cell asserts byte-identical
``JobMetrics.to_dict()`` output across the sweep, so any speedup is
pure multi-core utilisation, never a change in the modeled experiment.

Two guards, both hardware-gated:

* the 1M-vertex disk-resident push-PageRank cell (vectorized tier, the
  same scale cell ``bench_perf_kernels.py`` runs) must reach >= 2x at
  ``parallelism=4`` — asserted only when the host actually exposes >= 4
  usable CPUs (``os.sched_getaffinity``); on smaller hosts the sweep
  still runs and records ``available_cpus`` so the report is honest
  about what it measured;
* ``parallelism=1`` must not regress the in-process executors: when
  ``BENCH_kernels.json`` exists from the same session, each shared cell
  is compared against it with a 5% (plus small absolute noise) budget.

Results land in ``benchmarks/results/BENCH_parallel.json``.  Skipped
scale cells and unavailable guards are recorded as such — no silent
truncation.
"""

import json
import os
import time

import pytest

from conftest import QUICK, RESULTS_DIR, emit, generated_graph, once
from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.analysis.reporting import format_table
from repro.core.config import JobConfig
from repro.core.engine import run_job
from repro.datasets.generators import social_graph

np = pytest.importorskip(
    "numpy", reason="the vectorized sweep cells need NumPy"
)

PARALLELISMS = (1, 2, 4)
#: guarded wall-clock ratio for the 1M push-PageRank cell at p=4.
MIN_SCALE_SPEEDUP = 2.0
#: parallelism=1 regression budget vs BENCH_kernels (fraction + noise).
MAX_P1_REGRESSION = 0.05
P1_NOISE_SECONDS = 0.1

NUM_VERTICES = 30_000 if QUICK else 100_000
AVG_DEGREE = 10
NUM_WORKERS = 5
BUFFER = 1000
SUPERSTEPS = 6
REPEATS = 2  # best-of, to shave scheduler noise

SCALE_VERTICES = 1_000_000
SCALE_DEGREE = 8
SCALE_SUPERSTEPS = 5


def available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _graph():
    return generated_graph(
        social_graph, NUM_VERTICES, avg_degree=AVG_DEGREE, seed=11
    )


def _dump(result):
    payload = result.metrics.to_dict()
    payload.pop("fallback", None)
    return json.dumps(payload, sort_keys=True)


def _time_job(graph, program_factory, cfg):
    """Best-of-``REPEATS`` wall-clock for one (parallelism, cell)."""
    best = None
    result = None
    for _ in range(REPEATS):
        program = program_factory()
        start = time.perf_counter()
        result = run_job(graph, program, cfg)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def _measure_cell(graph, program_factory, executor, mode):
    base = JobConfig(mode=mode, executor=executor,
                     num_workers=NUM_WORKERS,
                     message_buffer_per_worker=BUFFER,
                     max_supersteps=SUPERSTEPS)
    seconds = {}
    reference = None
    for parallelism in PARALLELISMS:
        elapsed, result = _time_job(
            graph, program_factory, base.but(parallelism=parallelism)
        )
        seconds[parallelism] = round(elapsed, 4)
        if parallelism > 1:
            assert result.runtime.active_parallelism == parallelism, (
                f"pool fell back: {result.runtime.executor_fallback}")
        # the pool must not change the modeled experiment at all
        if reference is None:
            reference = _dump(result)
        else:
            assert _dump(result) == reference, (
                f"parallelism={parallelism} diverged in "
                f"({executor}, {mode})")
    return {
        "executor": executor,
        "mode": mode,
        "seconds": {str(p): s for p, s in seconds.items()},
        "speedup_p4": round(seconds[1] / seconds[4], 3),
    }


def run_matrix():
    graph = _graph()
    cells = [
        ("pagerank", lambda: PageRank(supersteps=SUPERSTEPS),
         "batched", "push"),
        ("pagerank", lambda: PageRank(supersteps=SUPERSTEPS),
         "vectorized", "push"),
        ("pagerank", lambda: PageRank(supersteps=SUPERSTEPS),
         "vectorized", "bpull"),
        ("pagerank", lambda: PageRank(supersteps=SUPERSTEPS),
         "vectorized", "hybrid"),
        ("sssp", lambda: SSSP(source=0), "vectorized", "push"),
    ]
    records = []
    for program_key, factory, executor, mode in cells:
        record = _measure_cell(graph, factory, executor, mode)
        record["program"] = program_key
        records.append(record)
    return records


def run_scale_cell():
    """1M-vertex cell, parallelism 1 vs 4; returns its record (or None).

    The guarded cell of the acceptance gate: disk-resident push
    PageRank through the vectorized tier.  Skipped under QUICK (the
    graph alone takes longer to build than the whole QUICK matrix).
    """
    if QUICK:
        return None
    graph = generated_graph(
        social_graph, SCALE_VERTICES, avg_degree=SCALE_DEGREE, seed=7
    )
    base = JobConfig(
        executor="vectorized", mode="push", num_workers=NUM_WORKERS,
        message_buffer_per_worker=20_000,
        max_supersteps=SCALE_SUPERSTEPS,
    )
    seconds = {}
    reference = None
    for parallelism in (1, 4):
        start = time.perf_counter()
        result = run_job(
            graph, PageRank(supersteps=SCALE_SUPERSTEPS),
            base.but(parallelism=parallelism),
        )
        seconds[parallelism] = round(time.perf_counter() - start, 4)
        if reference is None:
            reference = _dump(result)
        else:
            assert _dump(result) == reference, (
                "1M scale cell diverged under parallelism=4")
    return {
        "program": "pagerank",
        "mode": "push",
        "executor": "vectorized",
        "num_vertices": SCALE_VERTICES,
        "num_edges": graph.num_edges,
        "seconds": {str(p): s for p, s in seconds.items()},
        "speedup_p4": round(seconds[1] / seconds[4], 3),
    }


def _check_p1_regression(records):
    """parallelism=1 vs the in-process kernels bench, when available."""
    kernels_path = RESULTS_DIR / "BENCH_kernels.json"
    if not kernels_path.exists():
        return {"checked": False, "reason": "BENCH_kernels.json absent"}
    kernels = json.loads(kernels_path.read_text(encoding="utf-8"))
    if kernels.get("config", {}).get("quick") != QUICK:
        return {"checked": False,
                "reason": "BENCH_kernels ran at a different size"}
    baseline = {
        (cell["program"], cell["mode"]): cell for cell in kernels["cells"]
    }
    key_of = {"batched": "batched_seconds",
              "vectorized": "vectorized_seconds"}
    checked = []
    for record in records:
        cell = baseline.get((record["program"], record["mode"]))
        if cell is None:
            continue
        expected = cell[key_of[record["executor"]]]
        actual = record["seconds"]["1"]
        budget = expected * (1.0 + MAX_P1_REGRESSION) + P1_NOISE_SECONDS
        checked.append({
            "program": record["program"], "mode": record["mode"],
            "executor": record["executor"],
            "kernels_seconds": expected, "p1_seconds": actual,
        })
        assert actual <= budget, (
            f"parallelism=1 regressed ({record['executor']}, "
            f"{record['mode']}): {actual}s vs kernels {expected}s "
            f"(budget {budget:.4f}s)")
    return {"checked": True, "cells": checked}


def test_parallel_speedup(benchmark, results_dir):
    cpus = available_cpus()
    records, scale = once(
        benchmark, lambda: (run_matrix(), run_scale_cell())
    )
    regression = _check_p1_regression(records)
    rows = [
        [r["program"], r["executor"], r["mode"],
         f"{r['seconds']['1']:.2f}", f"{r['seconds']['2']:.2f}",
         f"{r['seconds']['4']:.2f}", f"{r['speedup_p4']:.2f}x"]
        for r in records
    ]
    emit("parallel", format_table(
        ["program", "executor", "mode", "p=1 (s)", "p=2 (s)",
         "p=4 (s)", "speedup p=4"],
        rows,
        title=(f"Process-pool wall-clock ({NUM_VERTICES} vertices, "
               f"deg {AVG_DEGREE}, {NUM_WORKERS} workers, "
               f"buffer {BUFFER}, {cpus} cpus)"),
    ))
    payload = {
        "config": {
            "num_vertices": NUM_VERTICES,
            "avg_degree": AVG_DEGREE,
            "num_workers": NUM_WORKERS,
            "message_buffer_per_worker": BUFFER,
            "max_supersteps": SUPERSTEPS,
            "repeats": REPEATS,
            "parallelisms": list(PARALLELISMS),
            "quick": QUICK,
            "available_cpus": cpus,
        },
        "cells": records,
        "scale_cell": scale,
        "p1_regression_check": regression,
        "speedup_guard": {
            "min_scale_speedup": MIN_SCALE_SPEEDUP,
            "enforced": scale is not None and cpus >= 4,
        },
    }
    (results_dir / "BENCH_parallel.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    if scale is not None and cpus >= 4:
        assert scale["speedup_p4"] >= MIN_SCALE_SPEEDUP, (
            f"1M push-PageRank parallelism=4 speedup "
            f"{scale['speedup_p4']}x is below the "
            f"{MIN_SCALE_SPEEDUP}x floor on a {cpus}-cpu host")

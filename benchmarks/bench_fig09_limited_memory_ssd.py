"""Fig. 9 — limited memory on the amazon (SSD) cluster.

Same experiments as Fig. 8 but on the SSD profile with weaker virtual
CPUs.  Expected shapes (Section 6.1):

* pull, pushM, b-pull and hybrid all benefit from the faster random
  I/O (speedups roughly 1.7x-3.6x at full scale);
* push does *not* improve — its disk-resident message handling is
  dominated by the CPU-intensive sort-merge, and the amazon cluster's
  virtual CPUs are slower, so push can even regress;
* b-pull / hybrid remain the best overall.
"""

import pytest

from conftest import QUICK, emit, once, run_cell
from repro.algorithms.lpa import LPA
from repro.algorithms.pagerank import PageRank
from repro.algorithms.sa import SA
from repro.algorithms.sssp import SSSP
from repro.analysis.reporting import format_table
from repro.core.config import AMAZON_CLUSTER

GRAPHS = ("wiki", "twi") if QUICK else (
    "livej", "wiki", "orkut", "twi", "fri", "uk"
)

ALGOS = {
    "pagerank": (lambda: PageRank(supersteps=5), "pagerank5",
                 ("push", "pushm", "pull", "bpull", "hybrid")),
    "sssp": (lambda: SSSP(source=0), "sssp0",
             ("push", "pushm", "pull", "bpull", "hybrid")),
    "lpa": (lambda: LPA(supersteps=5), "lpa5",
            ("push", "pull", "bpull", "hybrid")),
    "sa": (lambda: SA(num_sources=3), "sa3",
           ("push", "pull", "bpull", "hybrid")),
}


def run_panel(algo):
    factory, key, modes = ALGOS[algo]
    ssd = {}
    hdd = {}
    for graph in GRAPHS:
        for mode in modes:
            ssd[(graph, mode)] = run_cell(
                graph, factory, key, mode, cluster=AMAZON_CLUSTER
            ).metrics.compute_seconds
            hdd[(graph, mode)] = run_cell(
                graph, factory, key, mode
            ).metrics.compute_seconds
    return ssd, hdd, modes


@pytest.mark.parametrize("algo", sorted(ALGOS))
def test_fig09_runtime(algo, benchmark):
    ssd, hdd, modes = once(benchmark, lambda: run_panel(algo))
    rows = [
        [graph] + [f"{ssd[(graph, mode)]:.3f}" for mode in modes]
        for graph in GRAPHS
    ]
    emit(f"fig09_{algo}", format_table(
        ["graph"] + list(modes), rows,
        title=(f"Fig. 9 runtime of {algo} (modeled s), limited memory, "
               "amazon/SSD cluster"),
    ))
    for graph in GRAPHS:
        # disk-bound engines speed up on SSDs...
        assert ssd[(graph, "pull")] < hdd[(graph, "pull")], (algo, graph)
        assert ssd[(graph, "bpull")] <= hdd[(graph, "bpull")] * 1.02
        # ...but push's sort-merge CPU keeps it from improving much
        push_speedup = hdd[(graph, "push")] / ssd[(graph, "push")]
        pull_speedup = hdd[(graph, "pull")] / ssd[(graph, "pull")]
        assert push_speedup < pull_speedup, (algo, graph)
        # b-pull / hybrid still best overall
        assert ssd[(graph, "bpull")] < ssd[(graph, "pull")], (algo, graph)


def test_fig09_push_does_not_improve(benchmark):
    """The paper's pointed observation: push can even get *worse*."""
    def collect():
        out = {}
        for graph in GRAPHS:
            out[graph] = (
                run_cell(graph, lambda: PageRank(supersteps=5),
                         "pagerank5", "push").metrics.compute_seconds,
                run_cell(graph, lambda: PageRank(supersteps=5),
                         "pagerank5", "push",
                         cluster=AMAZON_CLUSTER).metrics.compute_seconds,
            )
        return out

    results = once(benchmark, collect)
    rows = [
        [graph, f"{hdd:.3f}", f"{ssd:.3f}", f"{hdd / ssd:.2f}x"]
        for graph, (hdd, ssd) in results.items()
    ]
    emit("fig09_push_regression", format_table(
        ["graph", "push HDD (s)", "push SSD (s)", "speedup"],
        rows,
        title="Fig. 9 detail: push barely improves on SSD (PageRank)",
    ))
    for graph, (hdd, ssd) in results.items():
        assert hdd / ssd < 2.5, graph  # nothing like the disk's 15x

"""Fig. 15 — scalability: runtime vs number of computational nodes.

PageRank in limited memory with pushM and hybrid, shrinking the cluster
from 30 to 10 nodes (the per-worker buffer B_i stays fixed, so fewer
nodes = more data and less total buffer per node — the paper's setup).

Expected shape: pushM degrades super-linearly as nodes are removed
(message spill explodes), hybrid sub-linearly (VE-BLOCK reads just grow
proportionally).
"""

import pytest

from conftest import QUICK, emit, once, run_cell
from repro.algorithms.pagerank import PageRank
from repro.analysis.reporting import format_table

GRAPHS = ("twi",) if QUICK else ("twi", "fri", "uk")
WORKERS = (10, 15, 20, 25, 30)


def collect():
    out = {}
    for graph in GRAPHS:
        for mode in ("pushm", "hybrid"):
            for workers in WORKERS:
                result = run_cell(
                    graph, lambda: PageRank(supersteps=5), "pagerank5",
                    mode, num_workers=workers,
                )
                out[(graph, mode, workers)] = (
                    result.metrics.compute_seconds
                )
    return out


def test_fig15_scalability(benchmark):
    data = once(benchmark, collect)
    for mode in ("pushm", "hybrid"):
        rows = [
            [graph] + [
                f"{data[(graph, mode, w)]:.3f}" for w in WORKERS
            ]
            for graph in GRAPHS
        ]
        emit(f"fig15_{mode}", format_table(
            ["graph"] + [f"{w} nodes" for w in WORKERS], rows,
            title=f"Fig. 15 {mode} runtime (modeled s) vs cluster size "
                  "(PageRank, limited memory)",
        ))
    for graph in GRAPHS:
        pushm_blowup = (
            data[(graph, "pushm", 10)] / data[(graph, "pushm", 30)]
        )
        hybrid_blowup = (
            data[(graph, "hybrid", 10)] / data[(graph, "hybrid", 30)]
        )
        linear = 30 / 10
        print(f"\n{graph}: shrinking 30->10 nodes costs pushM "
              f"{pushm_blowup:.1f}x, hybrid {hybrid_blowup:.1f}x "
              f"(linear would be {linear:.1f}x)")
        # pushM super-linear, hybrid sub-linear (or at worst linear)
        assert pushm_blowup > linear, graph
        assert hybrid_blowup < pushm_blowup, graph
        assert hybrid_blowup < linear * 1.2, graph

"""Appendix C — impact of the VE-BLOCK granularity (number of Vblocks).

PageRank (10 supersteps, average reported) and SSSP (run to convergence,
maximum superstep reported) over livej and wiki on 5 nodes, sweeping the
total number of Vblocks from 5 (one per node, the paper's "min") up to
400 — the paper's x-axis.

Expected shapes (Figs. 23-25):

* the memory requirement (buffers + metadata) drops quickly as V grows;
* I/O bytes grow with V — more fragments (Theorem 1) mean more
  auxiliary data and more svertex value reads;
* for SSSP the coarsest granularity wastes I/O on useless edges (whole
  Eblocks are scanned for a handful of responding vertices), so its
  I/O-bytes curve has a turning point near the small-V end.
"""

import pytest

from conftest import emit, once, run_cell
from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.analysis.reporting import format_table

GRAPHS = ("livej", "wiki")
#: Vblocks per worker; x5 workers = the paper's 5..400 total blocks.
PER_WORKER = (1, 10, 20, 40, 80)


def collect(graph):
    out = {}
    for algo_key, factory in (
        ("pagerank", lambda: PageRank(supersteps=10)),
        ("sssp", lambda: SSSP(source=0)),
    ):
        for per_worker in PER_WORKER:
            result = run_cell(
                graph, factory, f"{algo_key}_appc", "bpull",
                num_workers=5, vblocks_per_worker=per_worker,
            )
            steps = result.metrics.supersteps
            total_io = sum(s.io.total for s in steps)
            if algo_key == "pagerank":
                io = total_io / len(steps)
                mem = sum(s.memory_bytes for s in steps) / len(steps)
            else:
                io = max(s.io.total for s in steps)
                mem = max(s.memory_bytes for s in steps)
            out[(algo_key, per_worker)] = (
                mem, io, result.metrics.compute_seconds, total_io
            )
    return out


@pytest.mark.parametrize("graph", GRAPHS)
def test_appc_vblock_granularity(graph, benchmark):
    data = once(benchmark, lambda: collect(graph))
    for metric_idx, (metric, unit, scale) in enumerate((
        ("memory", "KB", 1e3), ("io_bytes", "MB", 1e6),
        ("runtime", "ms", 1e-3),
    )):
        rows = []
        for algo in ("pagerank", "sssp"):
            rows.append([algo] + [
                f"{data[(algo, pw)][metric_idx] / scale:.2f}"
                if metric != "runtime"
                else f"{data[(algo, pw)][metric_idx] * 1e3:.2f}"
                for pw in PER_WORKER
            ])
        emit(f"appc_{metric}_{graph}", format_table(
            ["algorithm"] + [f"V={5 * pw}" for pw in PER_WORKER], rows,
            title=(f"Appendix C {metric} ({unit}) vs number of Vblocks, "
                   f"{graph}"),
        ))
    for algo in ("pagerank", "sssp"):
        memory = [data[(algo, pw)][0] for pw in PER_WORKER]
        io = [data[(algo, pw)][1] for pw in PER_WORKER]
        # Fig. 23/24(a): the buffer memory falls rapidly with V.  At the
        # far end the per-block metadata (one bitmap bit per block,
        # negligible at the paper's scale but not at 1/1000) creeps back
        # in, so monotonicity is asserted over the buffer-dominated part.
        assert all(a >= b for a, b in zip(memory[:4], memory[1:4])), algo
        assert memory[0] > 5 * min(memory), algo
        # Fig. 23/24(b): I/O grows with V from the fragment explosion.
        assert io[-1] > io[1], algo
        assert all(a <= b * 1.02 for a, b in zip(io[1:], io[2:])), algo


def test_appc_sssp_turning_point(benchmark):
    """Fig. 25: SSSP has a turning point — the coarsest granularity is
    not the cheapest because whole-Eblock scans read useless edges
    during the long convergence tail where few vertices respond.  (Our
    sequential scans are fast, so the turning point shows in the
    *total I/O bytes* of the run rather than the modeled runtime.)"""
    data = once(benchmark, lambda: collect("wiki"))
    total_io = [data[("sssp", pw)][3] for pw in PER_WORKER]
    rows = [[f"V={5 * pw}", f"{io / 1e6:.2f}"]
            for pw, io in zip(PER_WORKER, total_io)]
    emit("appc_sssp_turning_point", format_table(
        ["granularity", "total I/O (MB)"], rows,
        title="Fig. 25 counterpart: SSSP/wiki whole-run I/O vs V",
    ))
    best = min(range(len(PER_WORKER)), key=total_io.__getitem__)
    print(f"\nSSSP/wiki best V (by total I/O) = {5 * PER_WORKER[best]} "
          f"(coarsest = {5 * PER_WORKER[0]})")
    assert best != 0, "coarsest granularity should not be optimal for SSSP"
    assert total_io[0] > total_io[best] * 1.3

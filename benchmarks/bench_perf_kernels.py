"""Vectorized-kernel benchmark: NumPy executor vs batched wall-clock.

Like ``bench_perf_hotpath.py`` this measures real wall-clock time, not
modeled seconds: the NumPy-vectorized superstep executor (CSR slicing,
``bincount``/``minimum.at`` folds, dense update rules) against the
batched per-vertex executor.  Every measured cell asserts byte-identical
``JobMetrics.to_dict()`` output, so the speedup is pure
interpreter-overhead removal, not a change in the modeled experiment.

The guarded cell is disk-resident PageRank in push mode at 100k vertices
(30k under ``REPRO_BENCH_QUICK=1``): the vectorized executor must be at
least 3x faster than batched job-level — the ratio includes the common
one-time setup (graph partitioning, adjacency-store build), so the
superstep-only speedup is considerably higher.  The b-pull, hybrid and
SSSP rows are informational.

A scale cell additionally runs a 1M-vertex synthetic graph through the
vectorized executor only (batched would dominate the suite's runtime),
proving the dense path holds up beyond toy sizes.  Skipped under QUICK.

Results land in ``benchmarks/results/BENCH_kernels.json``.
"""

import json
import time

import pytest

from conftest import QUICK, emit, generated_graph, once
from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.analysis.reporting import format_table
from repro.core.config import JobConfig
from repro.core.engine import run_job
from repro.datasets.generators import social_graph

np = pytest.importorskip(
    "numpy", reason="the vectorized executor needs NumPy"
)

#: guarded wall-clock ratio for the push-mode PageRank cell.
MIN_PUSH_SPEEDUP = 3.0

NUM_VERTICES = 30_000 if QUICK else 100_000
AVG_DEGREE = 10
NUM_WORKERS = 5
BUFFER = 1000
SUPERSTEPS = 6
REPEATS = 2  # best-of, to shave scheduler noise

SCALE_VERTICES = 1_000_000
SCALE_DEGREE = 8
SCALE_SUPERSTEPS = 5


def _graph():
    return generated_graph(
        social_graph, NUM_VERTICES, avg_degree=AVG_DEGREE, seed=11
    )


def _time_job(graph, program_factory, cfg):
    """Best-of-``REPEATS`` wall-clock for one (executor, cell)."""
    best = None
    result = None
    for _ in range(REPEATS):
        program = program_factory()
        start = time.perf_counter()
        result = run_job(graph, program, cfg)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def _measure_cell(graph, program_factory, mode):
    base = JobConfig(mode=mode, num_workers=NUM_WORKERS,
                     message_buffer_per_worker=BUFFER,
                     max_supersteps=SUPERSTEPS)
    bat_s, bat = _time_job(graph, program_factory,
                           base.but(executor="batched"))
    vec_s, vec = _time_job(graph, program_factory,
                           base.but(executor="vectorized"))
    assert vec.runtime.active_executor == "vectorized", (
        f"cell fell back to batched: {vec.runtime.executor_fallback}")
    # the kernels must not change the modeled experiment at all
    assert json.dumps(vec.metrics.to_dict(), sort_keys=True) == \
        json.dumps(bat.metrics.to_dict(), sort_keys=True), (
            f"vectorized executor diverged from batched in mode {mode!r}")
    assert vec.values == bat.values
    return {
        "mode": mode,
        "batched_seconds": round(bat_s, 4),
        "vectorized_seconds": round(vec_s, 4),
        "speedup": round(bat_s / vec_s, 3),
    }


def run_matrix():
    graph = _graph()
    cells = [
        ("pagerank", lambda: PageRank(supersteps=SUPERSTEPS), "push"),
        ("pagerank", lambda: PageRank(supersteps=SUPERSTEPS), "bpull"),
        ("pagerank", lambda: PageRank(supersteps=SUPERSTEPS), "hybrid"),
        ("sssp", lambda: SSSP(source=0), "push"),
    ]
    records = []
    for program_key, factory, mode in cells:
        record = _measure_cell(graph, factory, mode)
        record["program"] = program_key
        records.append(record)
    return records


def run_scale_cell():
    """1M-vertex vectorized-only cell; returns its record (or None)."""
    if QUICK:
        return None
    graph = generated_graph(
        social_graph, SCALE_VERTICES, avg_degree=SCALE_DEGREE, seed=7
    )
    cfg = JobConfig(
        executor="vectorized", mode="push", num_workers=NUM_WORKERS,
        message_buffer_per_worker=20_000,
        max_supersteps=SCALE_SUPERSTEPS,
    )
    start = time.perf_counter()
    result = run_job(
        graph, PageRank(supersteps=SCALE_SUPERSTEPS), cfg
    )
    elapsed = time.perf_counter() - start
    assert result.runtime.active_executor == "vectorized"
    steps = result.metrics.to_dict()["supersteps"]
    assert len(steps) == SCALE_SUPERSTEPS
    return {
        "program": "pagerank",
        "mode": "push",
        "num_vertices": SCALE_VERTICES,
        "num_edges": graph.num_edges,
        "vectorized_seconds": round(elapsed, 4),
        "raw_messages": sum(s["raw_messages"] for s in steps),
    }


def test_kernel_speedup(benchmark, results_dir):
    records, scale = once(
        benchmark, lambda: (run_matrix(), run_scale_cell())
    )
    rows = [
        [r["program"], r["mode"], f"{r['batched_seconds']:.2f}",
         f"{r['vectorized_seconds']:.2f}", f"{r['speedup']:.2f}x"]
        for r in records
    ]
    emit("kernels", format_table(
        ["program", "mode", "batched (s)", "vectorized (s)", "speedup"],
        rows,
        title=(f"Vectorized-kernel wall-clock "
               f"({NUM_VERTICES} vertices, deg {AVG_DEGREE}, "
               f"{NUM_WORKERS} workers, buffer {BUFFER})"),
    ))
    payload = {
        "config": {
            "num_vertices": NUM_VERTICES,
            "avg_degree": AVG_DEGREE,
            "num_workers": NUM_WORKERS,
            "message_buffer_per_worker": BUFFER,
            "max_supersteps": SUPERSTEPS,
            "repeats": REPEATS,
            "quick": QUICK,
        },
        "cells": records,
        "scale_cell": scale,
    }
    (results_dir / "BENCH_kernels.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    guarded = next(r for r in records
                   if r["program"] == "pagerank" and r["mode"] == "push")
    if not QUICK:
        assert guarded["speedup"] >= MIN_PUSH_SPEEDUP, (
            f"push-mode PageRank speedup {guarded['speedup']}x is below "
            f"the {MIN_PUSH_SPEEDUP}x floor")
    # every cell must at least not regress
    assert all(r["speedup"] > 1.0 for r in records)

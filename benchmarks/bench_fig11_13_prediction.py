"""Figs. 11-13 — accuracy of the persistence predictor (Section 5.3).

The switcher predicts superstep t+2's metrics with the values measured
at superstep t (Shang & Yu).  These figures report, per superstep, the
ratio predicted/actual for the three Q_t inputs:

* Fig. 11: M_co   (concatenated/combined message savings, from b-pull),
* Fig. 12: C_io(push)   (Eq. 7, from a push run),
* Fig. 13: C_io(b-pull) (Eq. 8, from a b-pull run).

Expected shapes: C_io(push) is very accurate (block-granular edge reads
damp frontier noise), C_io(b-pull) even more so (no message I/O term);
M_co and SA in general are noisy — SA's active set jumps around the
middle supersteps.
"""

import pytest

from conftest import QUICK, emit, once, run_cell
from repro.algorithms.sa import SA
from repro.algorithms.sssp import SSSP
from repro.analysis.costmodel import cio_bpull_of, cio_push_of
from repro.analysis.reporting import format_table

GRAPHS = ("wiki", "twi") if QUICK else (
    "livej", "wiki", "orkut", "twi", "fri", "uk"
)

ALGOS = {
    "sssp": (lambda: SSSP(source=0), "sssp0"),
    "sa": (lambda: SA(num_sources=3), "sa3"),
}

INTERVAL = 2
SHOW = 16  # supersteps displayed, like the paper's x-axis


def ratios(series):
    """predicted (value at t) / actual (value at t+Δt), skipping 0/0."""
    out = []
    for t in range(len(series) - INTERVAL):
        predicted, actual = series[t], series[t + INTERVAL]
        if actual == 0:
            out.append(None)
        else:
            out.append(predicted / actual)
    return out


def collect(algo):
    factory, key = ALGOS[algo]
    mco = {}
    cio_push = {}
    cio_bpull = {}
    for graph in GRAPHS:
        bpull_run = run_cell(graph, factory, key, "bpull")
        push_run = run_cell(graph, factory, key, "push")
        mco[graph] = ratios([s.mco for s in bpull_run.metrics.supersteps])
        cio_push[graph] = ratios(
            [cio_push_of(s) for s in push_run.metrics.supersteps]
        )
        cio_bpull[graph] = ratios(
            [cio_bpull_of(s) for s in bpull_run.metrics.supersteps]
        )
    return mco, cio_push, cio_bpull


def table_for(name, data):
    rows = []
    for graph in GRAPHS:
        series = data[graph][:SHOW]
        rows.append([graph] + [
            "-" if r is None else f"{r:.2f}" for r in series
        ])
    headers = ["graph"] + [f"t{t + 1}" for t in range(SHOW)]
    return format_table(headers, rows,
                        title=f"{name}: predicted/actual per superstep")


def spread(data):
    """Mean absolute log-deviation from a perfect ratio of 1."""
    import math

    devs = [
        abs(math.log(r))
        for series in data.values()
        for r in series
        if r is not None and r > 0
    ]
    return sum(devs) / len(devs) if devs else 0.0


@pytest.mark.parametrize("algo", sorted(ALGOS))
def test_fig11_12_13_prediction(algo, benchmark):
    mco, cio_push, cio_bpull = once(benchmark, lambda: collect(algo))
    emit(f"fig11_mco_{algo}", table_for(f"Fig. 11 Mco ({algo})", mco))
    emit(f"fig12_cio_push_{algo}",
         table_for(f"Fig. 12 Cio(push) ({algo})", cio_push))
    emit(f"fig13_cio_bpull_{algo}",
         table_for(f"Fig. 13 Cio(b-pull) ({algo})", cio_bpull))
    # the paper's accuracy ordering: Cio(b-pull) ~ Cio(push) >> Mco
    assert spread(cio_bpull) <= spread(mco) * 1.1, algo
    assert spread(cio_push) <= spread(mco) * 1.1, algo


def test_sa_noisier_than_sssp(benchmark):
    def collect_spreads():
        out = {}
        for algo in ("sssp", "sa"):
            mco, _p, _b = collect(algo)
            out[algo] = spread(mco)
        return out

    spreads = once(benchmark, collect_spreads)
    print(f"\nMco prediction dispersion: sssp={spreads['sssp']:.3f} "
          f"sa={spreads['sa']:.3f}")
    # SA's sudden active-set jumps make its predictions worse (Fig. 11b)
    assert spreads["sa"] > spreads["sssp"]

"""Fig. 18 — network traffic over time: push vs b-pull.

PageRank with sufficient memory over wiki and orkut.  To make the
comparison fair the b-pull Combiner is disabled (``bpull_combine=False``)
— the reduction that remains is pure message *concatenation* (values for
the same destination share one vertex id).  push ships every message
individually (its sender-side combining is not cost-effective,
Appendix E).

Expected shape: b-pull moves roughly half the bytes push does.
"""

import pytest

from conftest import emit, once, run_cell
from repro.algorithms.pagerank import PageRank
from repro.analysis.reporting import format_table

GRAPHS = ("wiki", "orkut")
SUFFICIENT = dict(message_buffer_per_worker=None, graph_on_disk=False)


def collect():
    out = {}
    for graph in GRAPHS:
        push = run_cell(graph, lambda: PageRank(supersteps=5),
                        "pagerank5", "push", **SUFFICIENT)
        bpull = run_cell(graph, lambda: PageRank(supersteps=5),
                         "pagerank5", "bpull", bpull_combine=False,
                         **SUFFICIENT)
        out[graph] = (push.metrics, bpull.metrics)
    return out


@pytest.mark.parametrize("graph", GRAPHS)
def test_fig18_network_traffic(graph, benchmark):
    data = once(benchmark, collect)
    push, bpull = data[graph]
    rows = []
    for idx in range(max(len(push.traffic_timeline),
                         len(bpull.traffic_timeline))):
        row = [idx + 1]
        for metrics in (push, bpull):
            if idx < len(metrics.traffic_timeline):
                when, nbytes = metrics.traffic_timeline[idx]
                row += [f"{when * 1e3:.2f}", f"{nbytes / 1e3:.1f}"]
            else:
                row += ["-", "-"]
        rows.append(row)
    emit(f"fig18_traffic_{graph}", format_table(
        ["superstep", "push t(ms)", "push KB", "b-pull t(ms)",
         "b-pull KB"],
        rows,
        title=(f"Fig. 18 network traffic over time, {graph} "
               "(b-pull combining disabled)"),
    ))
    total_push = push.total_net_bytes
    total_bpull = bpull.total_net_bytes
    reduction = 1.0 - total_bpull / total_push
    print(f"\n{graph}: b-pull (concatenation only) moves "
          f"{reduction * 100:.1f}% fewer bytes than push")
    # the paper reports ~50% reduction from concatenation alone
    assert 0.25 <= reduction <= 0.60, reduction

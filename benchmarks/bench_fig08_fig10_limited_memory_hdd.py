"""Figs. 8 and 10 — limited memory on the HDD cluster.

The flagship comparison: all six graphs, four algorithms, five engines,
graph data on disk and per-worker message buffers at the paper's scaled
B_i.  Fig. 8 reports runtime, Fig. 10 the total I/O bytes of the
iterations; both come from the same runs (cached by conftest).

Expected shapes (Section 6.1):

* pull is the worst by a wide margin — random, repeated svertex reads;
* push pays for spilled messages; pushM lands in between;
* b-pull/hybrid win overall — up to an order of magnitude over push on
  PageRank over the biggest graph;
* exception: SSSP over the skewed, low-locality twi, where fragment
  overheads make b-pull's I/O *exceed* push's (Fig. 10's observation)
  and hybrid has to switch to stay competitive.
"""

import pytest

from conftest import QUICK, emit, once, run_cell
from repro.algorithms.lpa import LPA
from repro.algorithms.pagerank import PageRank
from repro.algorithms.sa import SA
from repro.algorithms.sssp import SSSP
from repro.analysis.reporting import format_table

GRAPHS = ("wiki", "twi") if QUICK else (
    "livej", "wiki", "orkut", "twi", "fri", "uk"
)

ALGOS = {
    "pagerank": (lambda: PageRank(supersteps=5), "pagerank5",
                 ("push", "pushm", "pull", "bpull", "hybrid")),
    "sssp": (lambda: SSSP(source=0), "sssp0",
             ("push", "pushm", "pull", "bpull", "hybrid")),
    "lpa": (lambda: LPA(supersteps=5), "lpa5",
            ("push", "pull", "bpull", "hybrid")),
    "sa": (lambda: SA(num_sources=3), "sa3",
           ("push", "pull", "bpull", "hybrid")),
}


def run_panel(algo):
    factory, key, modes = ALGOS[algo]
    runtimes = {}
    io_bytes = {}
    for graph in GRAPHS:
        for mode in modes:
            result = run_cell(graph, factory, key, mode)
            runtimes[(graph, mode)] = result.metrics.compute_seconds
            io_bytes[(graph, mode)] = result.metrics.compute_io_bytes
    return runtimes, io_bytes, modes


@pytest.mark.parametrize("algo", sorted(ALGOS))
def test_fig08_runtime(algo, benchmark):
    runtimes, _io, modes = once(benchmark, lambda: run_panel(algo))
    rows = [
        [graph] + [f"{runtimes[(graph, mode)]:.3f}" for mode in modes]
        for graph in GRAPHS
    ]
    emit(f"fig08_{algo}", format_table(
        ["graph"] + list(modes), rows,
        title=(f"Fig. 8 runtime of {algo} (modeled s), limited memory, "
               "HDD cluster"),
    ))
    for graph in GRAPHS:
        pull = runtimes[(graph, "pull")]
        push = runtimes[(graph, "push")]
        bpull = runtimes[(graph, "bpull")]
        hybrid = runtimes[(graph, "hybrid")]
        # pull collapses under random vertex reads
        assert pull > 2.0 * min(push, bpull), (algo, graph)
        # hybrid never loses to the worse fixed transport, and stays
        # within a small factor of the better one (its losses are the
        # Theorem 2 initial mode plus the Δt=2 predictor lag, both of
        # which the paper also pays).
        assert hybrid <= max(push, bpull) * 1.05, (algo, graph)
        assert hybrid <= 3.0 * min(push, bpull), (algo, graph)
        if algo in ("pagerank", "lpa"):
            # broadcast workloads: b-pull decisively beats push
            assert bpull < push, (algo, graph)


def test_fig08_headline_speedups(benchmark):
    """The paper's headline: PageRank over uk, b-pull/hybrid vs push."""
    if QUICK:
        pytest.skip("uk excluded in quick mode")
    runtimes, _io, _modes = once(benchmark, lambda: run_panel("pagerank"))
    speedup = runtimes[("uk", "push")] / runtimes[("uk", "hybrid")]
    pushm_speedup = runtimes[("uk", "pushm")] / runtimes[("uk", "hybrid")]
    print(f"\nPageRank/uk speedups: hybrid vs push {speedup:.1f}x, "
          f"vs pushM {pushm_speedup:.1f}x "
          "(paper: up to 35x / 16x at full scale)")
    assert speedup > 5.0
    assert pushm_speedup > 2.0


@pytest.mark.parametrize("algo", sorted(ALGOS))
def test_fig10_io_bytes(algo, benchmark):
    _runtimes, io_bytes, modes = once(benchmark, lambda: run_panel(algo))
    rows = [
        [graph] + [
            f"{io_bytes[(graph, mode)] / 1e6:.2f}" for mode in modes
        ]
        for graph in GRAPHS
    ]
    emit(f"fig10_{algo}", format_table(
        ["graph"] + list(modes), rows,
        title=(f"Fig. 10 I/O bytes of {algo} (MB), limited memory, "
               "HDD cluster"),
    ))
    for graph in GRAPHS:
        # pull's I/O volume dwarfs everything else
        assert io_bytes[(graph, "pull")] > io_bytes[(graph, "bpull")]
        assert io_bytes[(graph, "pull")] > io_bytes[(graph, "push")]
    if algo == "sssp" and "twi" in GRAPHS:
        # Fig. 10(b): on twi, fragment and svertex overheads erase
        # b-pull's I/O advantage — it exceeds pushM's I/O and closes
        # most of the gap to push (which is why hybrid switches there).
        assert (io_bytes[("twi", "bpull")]
                > io_bytes[("twi", "pushm")])
        twi_ratio = (io_bytes[("twi", "bpull")]
                     / io_bytes[("twi", "push")])
        wiki_ratio = (io_bytes[("wiki", "bpull")]
                      / io_bytes[("wiki", "push")])
        assert twi_ratio > wiki_ratio
        assert twi_ratio > 0.6

"""Fig. 7 — runtime with sufficient memory on the local cluster.

All systems keep graph and message data in memory (no disk charges);
runtime differences come from communication and CPU.  Four algorithms
over the four Fig. 7 graphs (livej, wiki, orkut, twi); pushM only for
the combinable ones (PageRank, SSSP), exactly as in the paper.

Expected shape: differences are small; b-pull = hybrid (hybrid converges
to b-pull when communication dominates Q_t) and they are competitive
with — often better than — pull; push is the slowest of the five.
"""

import pytest

from conftest import QUICK, emit, once, run_cell
from repro.algorithms.lpa import LPA
from repro.algorithms.pagerank import PageRank
from repro.algorithms.sa import SA
from repro.algorithms.sssp import SSSP
from repro.analysis.reporting import format_table

GRAPHS = ("livej", "wiki") if QUICK else ("livej", "wiki", "orkut", "twi")

ALGOS = {
    "pagerank": (lambda: PageRank(supersteps=5), "pagerank5",
                 ("push", "pushm", "pull", "bpull", "hybrid")),
    "sssp": (lambda: SSSP(source=0), "sssp0",
             ("push", "pushm", "pull", "bpull", "hybrid")),
    "lpa": (lambda: LPA(supersteps=5), "lpa5",
            ("push", "pull", "bpull", "hybrid")),
    "sa": (lambda: SA(num_sources=3), "sa3",
           ("push", "pull", "bpull", "hybrid")),
}

SUFFICIENT = dict(message_buffer_per_worker=None, graph_on_disk=False)


def run_panel(algo):
    factory, key, modes = ALGOS[algo]
    table = {}
    for graph in GRAPHS:
        for mode in modes:
            result = run_cell(graph, factory, key, mode, **SUFFICIENT)
            table[(graph, mode)] = result.metrics.compute_seconds
    return table, modes


@pytest.mark.parametrize("algo", sorted(ALGOS))
def test_fig07(algo, benchmark):
    table, modes = once(benchmark, lambda: run_panel(algo))
    rows = []
    for graph in GRAPHS:
        rows.append([graph] + [
            f"{table[(graph, mode)] * 1e3:.2f}" for mode in modes
        ])
    emit(f"fig07_{algo}", format_table(
        ["graph"] + list(modes), rows,
        title=(f"Fig. 7 runtime of {algo} (modeled ms), sufficient "
               "memory, local cluster"),
    ))
    for graph in GRAPHS:
        # With everything in memory the systems are close (Fig. 7's
        # point).  Broadcast algorithms: b-pull wins on communication.
        # Traversal algorithms: b-pull's per-superstep pull-request
        # overhead can offset its gains (the paper sees the same for
        # SSSP over orkut), so only "comparable" is asserted.
        bpull = table[(graph, "bpull")]
        hybrid = table[(graph, "hybrid")]
        push = table[(graph, "push")]
        if algo in ("pagerank", "lpa"):
            assert bpull <= push * 1.05, (algo, graph)
            assert hybrid <= push * 1.1, (algo, graph)
        else:
            assert bpull <= push * 1.6, (algo, graph)
            assert hybrid <= push * 1.6, (algo, graph)

"""VE-BLOCK: the block-centric graph layout behind b-pull (Section 4.1).

Vertices are range-partitioned into ``V`` fixed-size **Vblocks**
``b_1..b_V``; for each pair of blocks ``(i, j)`` a variable-size
**Eblock** ``g_ij`` holds the edges from svertices in ``b_i`` to
dvertices in ``b_j``.  Inside an Eblock, edges sharing a svertex are
clustered into a **fragment** whose auxiliary data (svertex id + edge
count) costs ``S_f`` bytes on disk.

Each Vblock ``b_j`` carries metadata ``X_j`` = (#svertices, total
in-degree, total out-degree, bitmap, responding indicator).  Bit ``i`` of
the bitmap says ``g_ji`` is non-empty; ``res`` says some svertex in
``b_j`` set its responding flag, so the block may need to answer pull
requests this superstep.

Answering a pull request for block ``i`` (Algorithm 2) scans every local
Eblock ``g_ji`` whose metadata passes both checks: the *whole* Eblock is
read sequentially (fragment aux + edges — Appendix C's "useless edges"
effect at coarse granularity), and the svertex *value* of each responding
fragment is read randomly from the Vblock (``IO(V_rr)`` in Eq. 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.graph import Graph, Partition
from repro.storage.disk import SimulatedDisk
from repro.storage.records import RecordSizes

__all__ = ["BlockLayout", "EBlock", "VBlockMeta", "VEBlockStore"]


@dataclass(frozen=True)
class BlockLayout:
    """Global assignment of vertices to Vblocks across the cluster.

    Every worker's local vertex list (in id order) is chopped into
    ``blocks_per_worker[w]`` contiguous chunks; global block ids number
    the chunks worker-by-worker, so blocks of one worker are contiguous.
    """

    num_workers: int
    #: global block id -> owning worker.
    block_owner: Tuple[int, ...]
    #: global block id -> tuple of vertex ids in the block.
    block_vertices: Tuple[Tuple[int, ...], ...]
    #: vertex id -> global block id.
    block_of_vertex: Tuple[int, ...]

    @property
    def num_blocks(self) -> int:
        return len(self.block_owner)

    def blocks_of(self, worker: int) -> List[int]:
        return [
            b for b in range(self.num_blocks) if self.block_owner[b] == worker
        ]

    @staticmethod
    def build(
        partition: Partition, blocks_per_worker: Sequence[int]
    ) -> "BlockLayout":
        """Chop each worker's vertex range into its share of Vblocks."""
        if len(blocks_per_worker) != partition.num_workers:
            raise ValueError("need one block count per worker")
        owner: List[int] = []
        blocks: List[Tuple[int, ...]] = []
        block_of = [0] * partition.num_vertices
        for worker in range(partition.num_workers):
            local = list(partition.vertices_of(worker))
            count = max(1, min(blocks_per_worker[worker], max(1, len(local))))
            base, extra = divmod(len(local), count)
            cursor = 0
            for k in range(count):
                size = base + (1 if k < extra else 0)
                chunk = tuple(local[cursor : cursor + size])
                cursor += size
                block_id = len(blocks)
                blocks.append(chunk)
                owner.append(worker)
                for vid in chunk:
                    block_of[vid] = block_id
        return BlockLayout(
            num_workers=partition.num_workers,
            block_owner=tuple(owner),
            block_vertices=tuple(blocks),
            block_of_vertex=tuple(block_of),
        )


@dataclass
class EBlock:
    """Edges from one source Vblock into one destination Vblock.

    ``fragments`` lists ``(svertex, edges)`` with edges clustered per
    svertex, in svertex-id order (the clustering that makes Pull-Respond
    sequential).
    """

    src_block: int
    dst_block: int
    fragments: List[Tuple[int, List[Tuple[int, float]]]] = field(
        default_factory=list
    )

    @property
    def num_fragments(self) -> int:
        return len(self.fragments)

    @property
    def num_edges(self) -> int:
        return sum(len(edges) for _v, edges in self.fragments)

    def bytes_on_disk(self, sizes: RecordSizes) -> int:
        return sizes.fragments(self.num_fragments) + sizes.edges(self.num_edges)


@dataclass
class VBlockMeta:
    """Per-Vblock metadata ``X_j`` (kept in memory on the owner)."""

    block_id: int
    num_vertices: int
    in_degree: int
    out_degree: int
    #: destination block ids with at least one edge from this block.
    bitmap: Set[int] = field(default_factory=set)
    #: responding indicator, refreshed every superstep.
    res: bool = False

    def memory_bytes(self, num_blocks: int) -> int:
        """Metadata footprint: counters + one bit per block."""
        return 16 + (num_blocks + 7) // 8


class VEBlockStore:
    """Per-worker VE-BLOCK storage with I/O accounting.

    Parameters
    ----------
    graph, partition, worker:
        The worker's slice of the graph.
    layout:
        Global :class:`BlockLayout` (shared by all workers).
    disk:
        The worker's simulated disk.
    sizes:
        Record byte sizes.
    fragment_clustering:
        When False, every edge becomes its own fragment — the ablation
        that shows why clustering matters (Theorem 1 makes fragment count,
        not edge count, the I/O driver).
    """

    def __init__(
        self,
        graph: Graph,
        partition: Partition,
        worker: int,
        layout: BlockLayout,
        disk: SimulatedDisk,
        sizes: RecordSizes,
        fragment_clustering: bool = True,
    ) -> None:
        self._graph = graph
        self._worker = worker
        self._layout = layout
        self._disk = disk
        self._sizes = sizes
        self._local_blocks = layout.blocks_of(worker)
        self._eblocks: Dict[Tuple[int, int], EBlock] = {}
        self.meta: Dict[int, VBlockMeta] = {}
        #: per-vertex number of fragments (distinct destination blocks).
        self._fragments_of_vertex: Dict[int, int] = {}
        self._build(partition, fragment_clustering)
        # Eblocks are immutable once built; precompute the size triple
        # (num_fragments, num_edges, bytes_on_disk) per Eblock and the
        # per-source-block scan totals so the superstep hot paths and the
        # switcher's estimator stop recomputing them via generator sums.
        self._eblock_sizes: Dict[
            Tuple[int, int], Tuple[int, int, int, int, int]
        ] = {
            key: (
                eb.num_fragments,
                eb.num_edges,
                eb.bytes_on_disk(sizes),
                sizes.fragments(eb.num_fragments),
                sizes.edges(eb.num_edges),
            )
            for key, eb in self._eblocks.items()
        }
        self._block_scan_bytes: Dict[int, Tuple[int, int]] = {}
        for src_block in self._local_blocks:
            edge_bytes = 0
            aux_bytes = 0
            for dst_block in self.meta[src_block].bitmap:
                entry = self._eblock_sizes[(src_block, dst_block)]
                aux_bytes += entry[3]
                edge_bytes += entry[4]
            self._block_scan_bytes[src_block] = (edge_bytes, aux_bytes)
        self._total_fragments = sum(
            entry[0] for entry in self._eblock_sizes.values()
        )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self, partition: Partition, clustering: bool) -> None:
        layout = self._layout
        in_degs: Dict[int, int] = {}
        for src_block in self._local_blocks:
            per_dst: Dict[int, List[Tuple[int, List[Tuple[int, float]]]]] = {}
            out_deg = 0
            for vid in layout.block_vertices[src_block]:
                buckets: Dict[int, List[Tuple[int, float]]] = {}
                for dst, weight in self._graph.out_edges(vid):
                    buckets.setdefault(
                        layout.block_of_vertex[dst], []
                    ).append((dst, weight))
                    out_deg += 1
                self._fragments_of_vertex[vid] = len(buckets)
                for dst_block, edges in buckets.items():
                    frags = per_dst.setdefault(dst_block, [])
                    if clustering:
                        frags.append((vid, edges))
                    else:
                        frags.extend((vid, [edge]) for edge in edges)
            for dst_block, frags in per_dst.items():
                self._eblocks[(src_block, dst_block)] = EBlock(
                    src_block=src_block, dst_block=dst_block, fragments=frags
                )
            if not clustering:
                # one fragment per edge: override the per-vertex counts
                for vid in layout.block_vertices[src_block]:
                    self._fragments_of_vertex[vid] = self._graph.out_degree(vid)
            self.meta[src_block] = VBlockMeta(
                block_id=src_block,
                num_vertices=len(layout.block_vertices[src_block]),
                in_degree=0,  # filled below
                out_degree=out_deg,
                bitmap={dst for (_s, dst) in self._eblocks if _s == src_block},
            )
        # in-degrees of local blocks need a pass over all edges once.
        for src in self._graph.vertices():
            for dst, _w in self._graph.out_edges(src):
                blk = layout.block_of_vertex[dst]
                if blk in self.meta:
                    in_degs[blk] = in_degs.get(blk, 0) + 1
        for blk, meta in self.meta.items():
            meta.in_degree = in_degs.get(blk, 0)

    # ------------------------------------------------------------------
    # sizes and loading
    # ------------------------------------------------------------------
    @property
    def local_blocks(self) -> List[int]:
        return self._local_blocks

    @property
    def layout(self) -> BlockLayout:
        return self._layout

    def total_fragments(self) -> int:
        """``f`` — fragments covering all local outgoing edges."""
        return self._total_fragments

    def fragments_of_vertex(self, vid: int) -> int:
        return self._fragments_of_vertex.get(vid, 0)

    def eblock(self, src_block: int, dst_block: int) -> Optional[EBlock]:
        return self._eblocks.get((src_block, dst_block))

    def load_write_bytes(self) -> int:
        """Bytes written to build VE-BLOCK (Vblocks + Eblocks + aux)."""
        vertex_bytes = sum(
            self._sizes.vertices(len(self._layout.block_vertices[b]))
            for b in self._local_blocks
        )
        eblock_bytes = sum(
            entry[2] for entry in self._eblock_sizes.values()
        )
        return vertex_bytes + eblock_bytes

    def charge_load(self) -> None:
        self._disk.write(self.load_write_bytes(), sequential=True)

    def metadata_memory_bytes(self) -> int:
        num_blocks = self._layout.num_blocks
        return sum(m.memory_bytes(num_blocks) for m in self.meta.values())

    # ------------------------------------------------------------------
    # superstep accesses
    # ------------------------------------------------------------------
    def refresh_res(self, responding: Sequence[bool]) -> None:
        """Recompute every local block's ``res`` indicator from flags."""
        # FlagBitset exposes its raw bytearray and an O(1) count; use the
        # count for the two degenerate-but-common cases (nothing or
        # everything responding) and fall back to the per-block scan.
        raw = getattr(responding, "data", responding)
        count = getattr(responding, "true_count", None)
        if count == 0:
            for meta in self.meta.values():
                meta.res = False
            return
        if count == len(raw):
            for meta in self.meta.values():
                meta.res = True
            return
        for blk, meta in self.meta.items():
            meta.res = any(
                map(raw.__getitem__, self._layout.block_vertices[blk])
            )

    def scan_for_request(
        self, dst_block: int, responding: Sequence[bool]
    ) -> Iterator[Tuple[int, List[Tuple[int, float]]]]:
        """Answer a pull request for *dst_block* (Algorithm 2).

        Yields ``(svertex, edges)`` for each responding fragment, charging

        * a sequential read of every scanned Eblock (aux + all edges), and
        * a random read of ``S_v`` per responding fragment (``IO(V_rr)``).

        Blocks whose metadata fails the ``res``/bitmap checks are skipped
        for free — that is the whole point of ``X_j``.
        """
        sizes = self._sizes
        raw = getattr(responding, "data", responding)
        for src_block in self._local_blocks:
            meta = self.meta[src_block]
            if not meta.res or dst_block not in meta.bitmap:
                continue
            eblock = self._eblocks[(src_block, dst_block)]
            self._disk.read(eblock.bytes_on_disk(sizes), sequential=True)
            self._stats_edges += eblock.num_edges
            self._stats_aux += sizes.fragments(eblock.num_fragments)
            self._stats_edge_bytes += sizes.edges(eblock.num_edges)
            for svertex, edges in eblock.fragments:
                if raw[svertex]:
                    self._disk.read(sizes.vertex_value, sequential=False)
                    self._stats_vrr += sizes.vertex_value
                    yield svertex, edges

    def collect_for_request(
        self, dst_block: int, responding: Sequence[bool]
    ) -> List[Tuple[int, List[Tuple[int, float]]]]:
        """Batched :meth:`scan_for_request` for the optimized executor.

        Charges and yields exactly what :meth:`scan_for_request` does —
        the same Eblocks sequentially read in the same order, the same
        ``S_v`` random-read bytes per responding fragment — but uses the
        precomputed Eblock sizes, aggregates the random reads into one
        bulk charge, and returns a list instead of resuming a generator
        per fragment.  Byte counters come out identical; only the Python
        overhead differs.
        """
        raw = getattr(responding, "data", responding)
        out: List[Tuple[int, List[Tuple[int, float]]]] = []
        out_append = out.append
        eblocks = self._eblocks
        eblock_sizes = self._eblock_sizes
        seq_bytes = 0
        for src_block in self._local_blocks:
            meta = self.meta[src_block]
            if not meta.res or dst_block not in meta.bitmap:
                continue
            key = (src_block, dst_block)
            _nfrag, nedge, disk_bytes, aux_bytes, edge_bytes = (
                eblock_sizes[key]
            )
            seq_bytes += disk_bytes
            self._stats_edges += nedge
            self._stats_aux += aux_bytes
            self._stats_edge_bytes += edge_bytes
            for fragment in eblocks[key].fragments:
                if raw[fragment[0]]:
                    out_append(fragment)
        if seq_bytes:
            self._disk.charge(seq_read=seq_bytes)
        if out:
            vrr_bytes = len(out) * self._sizes.vertex_value
            self._disk.charge(random_read=vrr_bytes)
            self._stats_vrr += vrr_bytes
        return out

    def begin_superstep_stats(self) -> None:
        """Reset the per-superstep scan statistics."""
        self._stats_edges = 0
        self._stats_aux = 0
        self._stats_edge_bytes = 0
        self._stats_vrr = 0

    # scan statistics, populated by scan_for_request
    _stats_edges: int = 0
    _stats_aux: int = 0
    _stats_edge_bytes: int = 0
    _stats_vrr: int = 0

    @property
    def scan_stats(self) -> Tuple[int, int, int, int]:
        """(edges scanned, aux bytes, edge bytes, vrr bytes) this superstep."""
        return (
            self._stats_edges,
            self._stats_aux,
            self._stats_edge_bytes,
            self._stats_vrr,
        )

    def charge_block_update(self, block_id: int) -> int:
        """Charge read+write of a whole Vblock's records (``IO(V_t)``).

        Returns the vertex-record bytes involved (read + written).
        """
        nbytes = self._sizes.vertices(len(self._layout.block_vertices[block_id]))
        self._disk.read(nbytes, sequential=True)
        self._disk.write(nbytes, sequential=True)
        return 2 * nbytes

    # ------------------------------------------------------------------
    # estimation (used by hybrid while running push; Section 5.3)
    # ------------------------------------------------------------------
    def estimate_bpull_scan(
        self, responding: Sequence[bool]
    ) -> Tuple[int, int, int]:
        """Bytes b-pull *would* scan given these responding flags.

        Returns ``(edge_bytes, aux_bytes, vrr_bytes)``: all Eblocks of
        blocks containing a responding svertex are scanned in full, and
        each responding fragment costs one random ``S_v`` read.
        """
        sizes = self._sizes
        raw = getattr(responding, "data", responding)
        fragments_of = self._fragments_of_vertex
        edge_bytes = 0
        aux_bytes = 0
        vrr_bytes = 0
        for src_block in self._local_blocks:
            block_vertices = self._layout.block_vertices[src_block]
            if not any(map(raw.__getitem__, block_vertices)):
                continue
            block_edge_bytes, block_aux_bytes = self._block_scan_bytes[
                src_block
            ]
            edge_bytes += block_edge_bytes
            aux_bytes += block_aux_bytes
            vrr_bytes += sizes.vertex_value * sum(
                fragments_of[v] for v in block_vertices if raw[v]
            )
        return edge_bytes, aux_bytes, vrr_bytes

"""LRU vertex cache — the disk extension of the pull baseline.

The paper modifies GraphLab PowerGraph to keep vertices on disk behind an
LRU cache of ``B_i`` vertices (Section 6, Appendix F).  A cache miss
costs one random read of the vertex record; evicting a dirty entry costs
one random write.  The miss storm this produces when the working set
exceeds the cache is exactly what makes ``pull`` collapse in Fig. 10 and
Table 5's ``ext-edge-v2.5`` row.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.storage.disk import SimulatedDisk
from repro.storage.records import RecordSizes

__all__ = ["LRUVertexCache"]


#: A point lookup cannot read less than a storage block; missing a 16-byte
#: vertex record still transfers (and seeks for) a whole block.  This
#: read amplification is what makes pull's on-demand svertex access so
#: much more expensive than push's message I/O at equal logical bytes
#: (Fig. 10's 4-10x gap).
DEFAULT_BLOCK_BYTES = 512


class LRUVertexCache:
    """Accounting-only LRU over vertex records.

    ``capacity=None`` disables the disk entirely (memory-resident
    vertices: Table 5's ``original`` / ``ext-mem`` / ``ext-edge``
    scenarios).
    """

    def __init__(
        self,
        capacity: Optional[int],
        sizes: RecordSizes,
        disk: SimulatedDisk,
        block_bytes: int = DEFAULT_BLOCK_BYTES,
    ) -> None:
        self._capacity = capacity
        self._sizes = sizes
        self._disk = disk
        self._block_bytes = max(block_bytes, sizes.vertex_record)
        self._entries: "OrderedDict[int, bool]" = OrderedDict()  # vid -> dirty
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def access(self, vid: int, dirty: bool = False) -> bool:
        """Touch vertex *vid*; returns True on a hit.

        Misses charge a random read of the vertex record; a dirty
        eviction charges a random write.
        """
        if self._capacity is None:
            self.hits += 1
            return True
        if vid in self._entries:
            self.hits += 1
            self._entries.move_to_end(vid)
            if dirty:
                self._entries[vid] = True
            return True
        self.misses += 1
        self._disk.read(self._block_bytes, sequential=False)
        if len(self._entries) >= self._capacity:
            _evicted, was_dirty = self._entries.popitem(last=False)
            self.evictions += 1
            if was_dirty:
                self._disk.write(self._block_bytes, sequential=False)
        self._entries[vid] = dirty
        return False

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def capacity(self) -> Optional[int]:
        """Configured capacity in vertices (None = unlimited/no disk)."""
        return self._capacity

    @property
    def resident(self) -> int:
        return len(self._entries)

    @property
    def memory_bytes(self) -> int:
        return self._sizes.vertex_record * len(self._entries)

"""Adjacency-list graph store — the layout used by the push family.

Giraph keeps each partition as an adjacency list: a sequence of
``(id, val, |Vo|, Vo)`` records, physically stored in *blocks*.  During
a superstep the worker reads the out-edge lists of sending vertices at
block granularity: touching one vertex in a block pulls in the whole
block's edges (the paper relies on this in Section 6.2 — it is why
``C_io(push)`` is insensitive to active-vertex fluctuations and predicts
so well).  The charged bytes are ``IO(E_t)`` in Eq. 7; updated vertex
values are charged as sequential writes.

The store holds no data of its own — vertex values live in the worker and
edges in the shared :class:`~repro.core.graph.Graph`; the store's job is
byte accounting against the worker's :class:`SimulatedDisk`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.core.graph import Graph
from repro.storage.disk import SimulatedDisk
from repro.storage.records import RecordSizes

__all__ = ["AdjacencyStore", "DEFAULT_ADJ_BLOCK_VERTICES"]

#: vertices per adjacency block (Giraph-style physical storage rows).
DEFAULT_ADJ_BLOCK_VERTICES = 64


class AdjacencyStore:
    """Per-worker adjacency-list storage with block-granular accounting."""

    def __init__(
        self,
        graph: Graph,
        vertices: Iterable[int],
        disk: SimulatedDisk,
        sizes: RecordSizes,
        block_vertices: int = DEFAULT_ADJ_BLOCK_VERTICES,
    ) -> None:
        self._graph = graph
        self._vertices = list(vertices)
        self._disk = disk
        self._sizes = sizes
        self._block_vertices = max(1, block_vertices)
        # vid -> block index, block index -> total edge bytes
        self._block_of: Dict[int, int] = {}
        self._block_edge_bytes: List[int] = []
        for idx, vid in enumerate(self._vertices):
            block = idx // self._block_vertices
            self._block_of[vid] = block
            if block == len(self._block_edge_bytes):
                self._block_edge_bytes.append(0)
            self._block_edge_bytes[block] += sizes.edges(
                graph.out_degree(vid)
            )
        self._touched: Set[int] = set()

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def load_write_bytes(self) -> int:
        """Bytes written to build this store (Fig. 16's ``adj`` bar)."""
        num_edges = sum(self._graph.out_degree(v) for v in self._vertices)
        return self._sizes.vertices(len(self._vertices)) + self._sizes.edges(
            num_edges
        )

    def charge_load(self) -> None:
        """Charge the sequential write of the freshly built store."""
        self._disk.write(self.load_write_bytes(), sequential=True)

    # ------------------------------------------------------------------
    # superstep accesses
    # ------------------------------------------------------------------
    def read_vertex(self, vid: int) -> None:
        """Charge reading one vertex record (part of ``IO(V_t)``)."""
        self._disk.read(self._sizes.vertex_record, sequential=True)

    def write_vertex(self, vid: int) -> None:
        """Charge writing one updated vertex record."""
        self._disk.write(self._sizes.vertex_record, sequential=True)

    def begin_superstep(self) -> None:
        """Forget which adjacency blocks this superstep has read."""
        self._touched.clear()

    def read_out_edges(self, vid: int) -> Tuple[List[Tuple[int, float]], int]:
        """Return *vid*'s out-edges plus the bytes newly charged.

        The first touch of an adjacency block in a superstep reads the
        whole block sequentially; later touches are free (the block is
        already streaming through memory).
        """
        charged = 0
        block = self._block_of.get(vid)
        if block is not None and block not in self._touched:
            self._touched.add(block)
            charged = self._block_edge_bytes[block]
            self._disk.read(charged, sequential=True)
        return self._graph.out_edges(vid), charged

    def estimate_edge_bytes(self, responding) -> int:
        """Bytes one push superstep would read given responding flags."""
        blocks = {
            self._block_of[v]
            for v in self._vertices
            if responding[v]
        }
        return sum(self._block_edge_bytes[b] for b in blocks)

    @property
    def num_local_edges(self) -> int:
        return sum(self._graph.out_degree(v) for v in self._vertices)

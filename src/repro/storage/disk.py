"""Simulated block device with byte-accurate I/O accounting.

The paper's cost model (Eqs. 4, 7, 8, 11) is expressed entirely in bytes
moved per I/O class (random read, random write, sequential read, sequential
write) divided by per-class throughputs measured with ``fio`` (Table 3).
We therefore do not emulate seeks or queues; we count bytes per class and
convert to modeled seconds with a :class:`DiskProfile`.

Every worker owns one :class:`SimulatedDisk`.  Storage structures charge
their accesses against it, and the engine snapshots / resets the counters
once per superstep to produce per-superstep I/O metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "DiskProfile",
    "HDD_PROFILE",
    "SSD_PROFILE",
    "IOCounters",
    "SimulatedDisk",
]

_MB = 1024.0 * 1024.0


@dataclass(frozen=True)
class DiskProfile:
    """Per-class disk throughputs plus network throughput, in MB/s.

    The defaults below are the paper's Table 3 values, measured with
    ``fio-2.0.13`` (mixed random/sequential, 50% reads) and ``iperf-2.0.5``.

    Attributes
    ----------
    name:
        Human-readable profile name (``"local-hdd"`` / ``"amazon-ssd"``).
    random_read_mbps / random_write_mbps / seq_read_mbps:
        Disk throughputs ``s_rr`` / ``s_rw`` / ``s_sr``.
    seq_write_mbps:
        Not reported separately in Table 3; defaults to the sequential
        read throughput, which is what a 50%-mix fio run implies.
    network_mbps:
        Network throughput ``s_net``.
    """

    name: str
    random_read_mbps: float
    random_write_mbps: float
    seq_read_mbps: float
    seq_write_mbps: float
    network_mbps: float

    def io_seconds(self, counters: "IOCounters") -> float:
        """Modeled seconds to perform all I/O recorded in *counters*."""
        return (
            counters.random_read / (self.random_read_mbps * _MB)
            + counters.random_write / (self.random_write_mbps * _MB)
            + counters.seq_read / (self.seq_read_mbps * _MB)
            + counters.seq_write / (self.seq_write_mbps * _MB)
        )

    def net_seconds(self, nbytes: int) -> float:
        """Modeled seconds to move *nbytes* across the network."""
        return nbytes / (self.network_mbps * _MB)


#: Table 3, "local" cluster: 7,200 RPM HDDs.  Random throughputs are the
#: paper's fio numbers (mixed-load, which is what scattered accesses see);
#: the sequential throughput is a realistic pure-pattern figure for a
#: 7,200 RPM drive — Table 3's 2.358 MB/s is a *mixed* 50%-random
#: measurement and would make a plain scan 40x slower than the hardware
#: the paper ran on, crushing every push-vs-b-pull runtime ratio.
HDD_PROFILE = DiskProfile(
    name="local-hdd",
    random_read_mbps=1.177,
    random_write_mbps=1.182,
    seq_read_mbps=90.0,
    seq_write_mbps=90.0,
    network_mbps=112.0,
)

#: Table 3, "amazon" cluster: SSDs (same reasoning for the sequential
#: figure; random throughputs are Table 3's).
SSD_PROFILE = DiskProfile(
    name="amazon-ssd",
    random_read_mbps=18.177,
    random_write_mbps=18.194,
    seq_read_mbps=250.0,
    seq_write_mbps=250.0,
    network_mbps=116.0,
)


@dataclass
class IOCounters:
    """Bytes moved, by I/O class."""

    random_read: int = 0
    random_write: int = 0
    seq_read: int = 0
    seq_write: int = 0

    @property
    def read(self) -> int:
        return self.random_read + self.seq_read

    @property
    def write(self) -> int:
        return self.random_write + self.seq_write

    @property
    def total(self) -> int:
        return self.read + self.write

    def add(self, other: "IOCounters") -> None:
        self.random_read += other.random_read
        self.random_write += other.random_write
        self.seq_read += other.seq_read
        self.seq_write += other.seq_write

    def copy(self) -> "IOCounters":
        return IOCounters(
            random_read=self.random_read,
            random_write=self.random_write,
            seq_read=self.seq_read,
            seq_write=self.seq_write,
        )

    def __add__(self, other: "IOCounters") -> "IOCounters":
        out = self.copy()
        out.add(other)
        return out


@dataclass
class SimulatedDisk:
    """Accounting-only disk device owned by one worker.

    ``read``/``write`` take a byte count and whether the access pattern is
    sequential.  ``enabled=False`` models the memory-sufficient scenario
    (Fig. 7) in which graph and message data are memory-resident and no
    I/O is charged at all.
    """

    enabled: bool = True
    counters: IOCounters = field(default_factory=IOCounters)

    def read(self, nbytes: int, sequential: bool) -> None:
        if not self.enabled or nbytes <= 0:
            return
        if sequential:
            self.counters.seq_read += nbytes
        else:
            self.counters.random_read += nbytes

    def write(self, nbytes: int, sequential: bool) -> None:
        if not self.enabled or nbytes <= 0:
            return
        if sequential:
            self.counters.seq_write += nbytes
        else:
            self.counters.random_write += nbytes

    def charge(
        self,
        *,
        random_read: int = 0,
        random_write: int = 0,
        seq_read: int = 0,
        seq_write: int = 0,
    ) -> None:
        """Bulk-charge pre-aggregated byte counts, one call per superstep.

        Equivalent to the corresponding sequence of :meth:`read` /
        :meth:`write` calls — the counters are plain byte sums, so
        callers that know their totals up front (e.g. ``n`` vertex
        records updated this superstep) can charge them in a single call
        instead of ``2n`` per-record calls on the hot path.
        """
        if not self.enabled:
            return
        counters = self.counters
        if random_read > 0:
            counters.random_read += random_read
        if random_write > 0:
            counters.random_write += random_write
        if seq_read > 0:
            counters.seq_read += seq_read
        if seq_write > 0:
            counters.seq_write += seq_write

    def snapshot(self) -> IOCounters:
        """Return a copy of the counters accumulated so far."""
        return self.counters.copy()

    def delta_since(self, before: IOCounters) -> IOCounters:
        """Bytes charged since *before* (a prior :meth:`snapshot`).

        The executors bracket every superstep with a snapshot/delta
        pair; the delta feeds both the superstep metrics and the
        per-worker ``disk`` trace instants.
        """
        counters = self.counters
        return IOCounters(
            random_read=counters.random_read - before.random_read,
            random_write=counters.random_write - before.random_write,
            seq_read=counters.seq_read - before.seq_read,
            seq_write=counters.seq_write - before.seq_write,
        )

    def drain(self) -> IOCounters:
        """Return the counters accumulated so far and reset them to zero."""
        out = self.counters
        self.counters = IOCounters()
        return out

"""Receiver-side message stores for the push family.

:class:`SpillingMessageStore` models Giraph: a worker keeps at most
``B_i`` incoming messages in memory and spills the rest to local disk.
Spills are *random* writes (messages arrive in arbitrary destination
order — the poor temporal locality the paper blames), and ``load()``
reads spilled bytes back sequentially after Giraph's sort-merge, which
also costs CPU per spilled message.

:class:`OnlineMessageStore` models MOCgraph's message online computing:
the memory budget caches *vertices* (hot = highest in-degree, emulating
MOCgraph's hot-aware re-partitioning); a message to a memory-resident
vertex is folded into an in-memory accumulator immediately (zero disk
bytes), and only messages to disk-resident vertices spill.  Requires a
commutative/associative combiner, which is why MOCgraph is absent from
the LPA and SA experiments.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.storage.disk import SimulatedDisk
from repro.storage.records import RecordSizes

__all__ = ["SpillingMessageStore", "OnlineMessageStore", "LoadResult"]


class LoadResult:
    """Outcome of draining a message store at the start of a superstep."""

    __slots__ = ("messages", "spilled_read", "spilled_count")

    def __init__(
        self,
        messages: Dict[int, List[Any]],
        spilled_read: int,
        spilled_count: int,
    ) -> None:
        self.messages = messages          #: dst vertex -> message values
        self.spilled_read = spilled_read  #: bytes read back from disk
        self.spilled_count = spilled_count


class SpillingMessageStore:
    """Giraph-style receiver buffer with disk spill.

    Parameters
    ----------
    capacity:
        ``B_i`` in messages; ``None`` = unlimited (sufficient memory).
    combine:
        Optional receiver-side Combiner.  Giraph's Combiner only works on
        memory-resident messages; combined messages do not consume extra
        buffer slots.  The paper's experiments run push *without* it by
        default (Section 5.1: not cost-effective at the sender, optional
        at the receiver), so the engine passes ``None`` unless
        ``receiver_combine`` is set.
    """

    def __init__(
        self,
        capacity: Optional[int],
        sizes: RecordSizes,
        disk: SimulatedDisk,
        combine: Optional[Callable[[Any, Any], Any]] = None,
    ) -> None:
        self._capacity = capacity
        self._sizes = sizes
        self._disk = disk
        self._combine = combine
        self._mem: Dict[int, List[Any]] = {}
        self._spill: Dict[int, List[Any]] = {}
        self._mem_count = 0
        self._spill_count = 0
        self.total_deposited = 0
        self.total_spilled = 0

    # ------------------------------------------------------------------
    def deposit(self, dst: int, value: Any) -> None:
        """Receive one message for vertex *dst*."""
        self.total_deposited += 1
        if self._combine is not None and dst in self._mem:
            bucket = self._mem[dst]
            bucket[0] = self._combine(bucket[0], value)
            return
        if self._capacity is None or self._mem_count < self._capacity:
            self._mem.setdefault(dst, []).append(value)
            self._mem_count += 1
            return
        # Buffer full: spill to disk.  Random write — incoming messages
        # have no destination locality.
        self._spill.setdefault(dst, []).append(value)
        self._spill_count += 1
        self.total_spilled += 1
        self._disk.write(self._sizes.message, sequential=False)

    def load(self) -> LoadResult:
        """Drain the store (the push family's ``load()``).

        Spilled bytes are charged as sequential reads (post sort-merge).
        """
        spilled_count = self._spill_count
        spilled_read = self._sizes.messages(spilled_count)
        if spilled_read:
            self._disk.read(spilled_read, sequential=True)
        merged = self._mem
        for dst, values in self._spill.items():
            merged.setdefault(dst, []).extend(values)
        self._mem = {}
        self._spill = {}
        self._mem_count = 0
        self._spill_count = 0
        return LoadResult(merged, spilled_read, spilled_count)

    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        return self._mem_count + self._spill_count

    @property
    def memory_bytes(self) -> int:
        """Bytes of buffered in-memory messages (Fig. 14d accounting)."""
        return self._sizes.messages(self._mem_count)

    @property
    def spilled_pending(self) -> int:
        return self._spill_count


class OnlineMessageStore:
    """MOCgraph-style store: online computing for hot vertices."""

    def __init__(
        self,
        hot_vertices: Iterable[int],
        sizes: RecordSizes,
        disk: SimulatedDisk,
        combine: Callable[[Any, Any], Any],
    ) -> None:
        self._hot = frozenset(hot_vertices)
        self._sizes = sizes
        self._disk = disk
        self._combine = combine
        self._acc: Dict[int, Any] = {}
        self._spill: Dict[int, List[Any]] = {}
        self._spill_count = 0
        self.total_deposited = 0
        self.total_spilled = 0

    def deposit(self, dst: int, value: Any) -> None:
        self.total_deposited += 1
        if dst in self._hot:
            if dst in self._acc:
                self._acc[dst] = self._combine(self._acc[dst], value)
            else:
                self._acc[dst] = value
            return
        self._spill.setdefault(dst, []).append(value)
        self._spill_count += 1
        self.total_spilled += 1
        self._disk.write(self._sizes.message, sequential=False)

    def load(self) -> LoadResult:
        spilled_count = self._spill_count
        spilled_read = self._sizes.messages(spilled_count)
        if spilled_read:
            self._disk.read(spilled_read, sequential=True)
        merged: Dict[int, List[Any]] = {
            dst: [value] for dst, value in self._acc.items()
        }
        for dst, values in self._spill.items():
            merged.setdefault(dst, []).extend(values)
        self._acc = {}
        self._spill = {}
        self._spill_count = 0
        return LoadResult(merged, spilled_read, spilled_count)

    @property
    def pending_count(self) -> int:
        return len(self._acc) + self._spill_count

    @property
    def memory_bytes(self) -> int:
        return self._sizes.messages(len(self._acc))

    @property
    def spilled_pending(self) -> int:
        return self._spill_count

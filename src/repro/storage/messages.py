"""Receiver-side message stores for the push family.

:class:`SpillingMessageStore` models Giraph: a worker keeps at most
``B_i`` incoming messages in memory and spills the rest to local disk.
Spills are *random* writes (messages arrive in arbitrary destination
order — the poor temporal locality the paper blames), and ``load()``
reads spilled bytes back sequentially after Giraph's sort-merge, which
also costs CPU per spilled message.

:class:`OnlineMessageStore` models MOCgraph's message online computing:
the memory budget caches *vertices* (hot = highest in-degree, emulating
MOCgraph's hot-aware re-partitioning); a message to a memory-resident
vertex is folded into an in-memory accumulator immediately (zero disk
bytes), and only messages to disk-resident vertices spill.  Requires a
commutative/associative combiner, which is why MOCgraph is absent from
the LPA and SA experiments.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.storage.disk import SimulatedDisk
from repro.storage.records import RecordSizes

__all__ = ["SpillingMessageStore", "OnlineMessageStore", "LoadResult"]


class LoadResult:
    """Outcome of draining a message store at the start of a superstep."""

    __slots__ = ("messages", "spilled_read", "spilled_count")

    def __init__(
        self,
        messages: Dict[int, List[Any]],
        spilled_read: int,
        spilled_count: int,
    ) -> None:
        self.messages = messages          #: dst vertex -> message values
        self.spilled_read = spilled_read  #: bytes read back from disk
        self.spilled_count = spilled_count


class SpillingMessageStore:
    """Giraph-style receiver buffer with disk spill.

    Parameters
    ----------
    capacity:
        ``B_i`` in messages; ``None`` = unlimited (sufficient memory).
    combine:
        Optional receiver-side Combiner.  Giraph's Combiner only works on
        memory-resident messages; combined messages do not consume extra
        buffer slots.  The paper's experiments run push *without* it by
        default (Section 5.1: not cost-effective at the sender, optional
        at the receiver), so the engine passes ``None`` unless
        ``receiver_combine`` is set.
    """

    def __init__(
        self,
        capacity: Optional[int],
        sizes: RecordSizes,
        disk: SimulatedDisk,
        combine: Optional[Callable[[Any, Any], Any]] = None,
    ) -> None:
        self._capacity = capacity
        self._sizes = sizes
        self._disk = disk
        self._combine = combine
        self._mem: Dict[int, List[Any]] = {}
        self._spill: Dict[int, List[Any]] = {}
        self._mem_count = 0
        self._spill_count = 0
        self.total_deposited = 0
        self.total_spilled = 0

    # ------------------------------------------------------------------
    def deposit(self, dst: int, value: Any) -> None:
        """Receive one message for vertex *dst*."""
        self.total_deposited += 1
        if self._combine is not None and dst in self._mem:
            bucket = self._mem[dst]
            bucket[0] = self._combine(bucket[0], value)
            return
        if self._capacity is None or self._mem_count < self._capacity:
            self._mem.setdefault(dst, []).append(value)
            self._mem_count += 1
            return
        # Buffer full: spill to disk.  Random write — incoming messages
        # have no destination locality.
        self._spill.setdefault(dst, []).append(value)
        self._spill_count += 1
        self.total_spilled += 1
        self._disk.write(self._sizes.message, sequential=False)

    def deposit_many(self, messages: List[Any]) -> None:
        """Receive a batch of ``(dst, value)`` pairs.

        Semantically identical to calling :meth:`deposit` per pair (same
        combine decisions, same spill boundary, same charged bytes) but
        with the per-message attribute lookups hoisted out of the loop —
        the receiver side of the push hot path.
        """
        self.total_deposited += len(messages)
        mem = self._mem
        combine = self._combine
        capacity = self._capacity
        mem_count = self._mem_count
        spilled = 0
        if combine is None:
            # Without a receiver combiner the mem/spill decision is
            # purely positional: the first ``capacity - mem_count``
            # messages fit, the rest spill — so split once instead of
            # re-testing the capacity per message.
            if capacity is None:
                fits = len(messages)
            elif mem_count < capacity:
                fits = min(len(messages), capacity - mem_count)
            else:
                fits = 0
            for dst, value in messages[:fits] if fits < len(
                messages
            ) else messages:
                if dst in mem:
                    mem[dst].append(value)
                else:
                    mem[dst] = [value]
            mem_count += fits
            if fits < len(messages):
                spill = self._spill
                for dst, value in messages[fits:]:
                    if dst in spill:
                        spill[dst].append(value)
                    else:
                        spill[dst] = [value]
                spilled = len(messages) - fits
        else:
            for dst, value in messages:
                if dst in mem:
                    bucket = mem[dst]
                    bucket[0] = combine(bucket[0], value)
                    continue
                if capacity is None or mem_count < capacity:
                    mem[dst] = [value]
                    mem_count += 1
                    continue
                self._spill.setdefault(dst, []).append(value)
                spilled += 1
        self._mem_count = mem_count
        if spilled:
            self._spill_count += spilled
            self.total_spilled += spilled
            self._disk.charge(
                random_write=spilled * self._sizes.message
            )

    def deposit_fanout(self, groups: List[Any], count: int) -> None:
        """Receive ``count`` messages given as ``(dsts, value)`` groups.

        Uniform-message programs send one identical value to many
        destinations; the batched executor ships the fan-out groups
        instead of flattened pairs.  Semantically identical to calling
        :meth:`deposit` for every ``(dst, value)`` pair in nested order —
        same positional mem/spill split, same charged bytes.
        """
        self.total_deposited += count
        mem = self._mem
        combine = self._combine
        capacity = self._capacity
        mem_count = self._mem_count
        spilled = 0
        if combine is None:
            spill = self._spill
            room = None if capacity is None else capacity - mem_count
            for dsts, value in groups:
                k = len(dsts)
                if room is None or room >= k:
                    for dst in dsts:
                        if dst in mem:
                            mem[dst].append(value)
                        else:
                            mem[dst] = [value]
                    mem_count += k
                    if room is not None:
                        room -= k
                elif room <= 0:
                    for dst in dsts:
                        if dst in spill:
                            spill[dst].append(value)
                        else:
                            spill[dst] = [value]
                    spilled += k
                else:
                    # group straddles the buffer boundary
                    for dst in dsts[:room]:
                        if dst in mem:
                            mem[dst].append(value)
                        else:
                            mem[dst] = [value]
                    for dst in dsts[room:]:
                        if dst in spill:
                            spill[dst].append(value)
                        else:
                            spill[dst] = [value]
                    mem_count += room
                    spilled += k - room
                    room = 0
        else:
            for dsts, value in groups:
                for dst in dsts:
                    if dst in mem:
                        bucket = mem[dst]
                        bucket[0] = combine(bucket[0], value)
                        continue
                    if capacity is None or mem_count < capacity:
                        mem[dst] = [value]
                        mem_count += 1
                        continue
                    self._spill.setdefault(dst, []).append(value)
                    spilled += 1
        self._mem_count = mem_count
        if spilled:
            self._spill_count += spilled
            self.total_spilled += spilled
            self._disk.charge(
                random_write=spilled * self._sizes.message
            )

    def load(self) -> LoadResult:
        """Drain the store (the push family's ``load()``).

        Spilled bytes are charged as sequential reads (post sort-merge).
        """
        spilled_count = self._spill_count
        spilled_read = self._sizes.messages(spilled_count)
        if spilled_read:
            self._disk.read(spilled_read, sequential=True)
        merged = self._mem
        for dst, values in self._spill.items():
            merged.setdefault(dst, []).extend(values)
        self._mem = {}
        self._spill = {}
        self._mem_count = 0
        self._spill_count = 0
        return LoadResult(merged, spilled_read, spilled_count)

    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        return self._mem_count + self._spill_count

    @property
    def memory_bytes(self) -> int:
        """Bytes of buffered in-memory messages (Fig. 14d accounting)."""
        return self._sizes.messages(self._mem_count)

    @property
    def spilled_pending(self) -> int:
        return self._spill_count


class OnlineMessageStore:
    """MOCgraph-style store: online computing for hot vertices."""

    def __init__(
        self,
        hot_vertices: Iterable[int],
        sizes: RecordSizes,
        disk: SimulatedDisk,
        combine: Callable[[Any, Any], Any],
    ) -> None:
        self._hot = frozenset(hot_vertices)
        self._sizes = sizes
        self._disk = disk
        self._combine = combine
        self._acc: Dict[int, Any] = {}
        self._spill: Dict[int, List[Any]] = {}
        self._spill_count = 0
        self.total_deposited = 0
        self.total_spilled = 0

    def deposit(self, dst: int, value: Any) -> None:
        self.total_deposited += 1
        if dst in self._hot:
            if dst in self._acc:
                self._acc[dst] = self._combine(self._acc[dst], value)
            else:
                self._acc[dst] = value
            return
        self._spill.setdefault(dst, []).append(value)
        self._spill_count += 1
        self.total_spilled += 1
        self._disk.write(self._sizes.message, sequential=False)

    def deposit_many(self, messages: List[Any]) -> None:
        """Batched :meth:`deposit` — see ``SpillingMessageStore``."""
        for dst, value in messages:
            self.deposit(dst, value)

    def deposit_fanout(self, groups: List[Any], count: int) -> None:
        """Nested-form :meth:`deposit` — see ``SpillingMessageStore``."""
        for dsts, value in groups:
            for dst in dsts:
                self.deposit(dst, value)

    def load(self) -> LoadResult:
        spilled_count = self._spill_count
        spilled_read = self._sizes.messages(spilled_count)
        if spilled_read:
            self._disk.read(spilled_read, sequential=True)
        merged: Dict[int, List[Any]] = {
            dst: [value] for dst, value in self._acc.items()
        }
        for dst, values in self._spill.items():
            merged.setdefault(dst, []).extend(values)
        self._acc = {}
        self._spill = {}
        self._spill_count = 0
        return LoadResult(merged, spilled_read, spilled_count)

    @property
    def pending_count(self) -> int:
        return len(self._acc) + self._spill_count

    @property
    def memory_bytes(self) -> int:
        return self._sizes.messages(len(self._acc))

    @property
    def spilled_pending(self) -> int:
        return self._spill_count

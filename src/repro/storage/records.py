"""On-disk record layouts and their byte sizes.

The paper's Theorem 2 proof reasons about the average sizes ``S_m``
(message), ``S_v`` (vertex value), ``S_e`` (edge) and ``S_f`` (fragment
auxiliary data).  We fix a Java-ish layout so that all engines charge
identical, comparable byte counts:

========================  =====  =========================================
record                    bytes  layout
========================  =====  =========================================
vertex id                  4     int32
vertex value               8     double / long
vertex record             16     id(4) + value(8) + out-degree(4)
edge                       8     dst id(4) + weight-or-meta(4)
message                   12     dst id(4) + value(8)
concatenated msg value     8     value only; dst id amortised over group
fragment auxiliary data    8     svertex id(4) + edge count(4)
pull request               8     Vblock id(4) + requester(4)
========================  =====  =========================================

These constants satisfy the Theorem 2 premises ``S_m >= S_v``,
``S_m >= S_f`` and ``S_m >= S_e``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RecordSizes", "DEFAULT_SIZES"]


@dataclass(frozen=True)
class RecordSizes:
    """Byte sizes of every record the engines move to disk or network."""

    vertex_id: int = 4
    vertex_value: int = 8
    edge: int = 8
    message: int = 12
    message_value: int = 8
    fragment_aux: int = 8
    pull_request: int = 8

    @property
    def vertex_record(self) -> int:
        """One adjacency/Vblock vertex entry: ``(id, val, |Vo|)``."""
        return self.vertex_id + self.vertex_value + 4

    def messages(self, count: int) -> int:
        """Bytes of *count* plain (un-concatenated) messages."""
        return count * self.message

    def concatenated(self, values: int, groups: int) -> int:
        """Bytes of *values* message values shipped in *groups* groups.

        Each group shares one destination-vertex id, so the id is paid
        once per group instead of once per value.
        """
        return values * self.message_value + groups * self.vertex_id

    def combined(self, groups: int) -> int:
        """Bytes of *groups* fully combined messages (one per group)."""
        return groups * self.message

    def edges(self, count: int) -> int:
        return count * self.edge

    def vertices(self, count: int) -> int:
        return count * self.vertex_record

    def fragments(self, count: int) -> int:
        return count * self.fragment_aux


#: The layout used everywhere unless a test overrides it.
DEFAULT_SIZES = RecordSizes()

"""Responding-flag bitsets with a maintained popcount.

The engine consults the responding flags on every superstep boundary
(``responding_count`` for halting, ``swap_flags`` to roll the double
buffer) and the pull paths index them once per fragment.  The seed
implementation stored them as ``List[bool]`` and paid two O(n) costs per
superstep: a Python-level scan to count the flags and a fresh
``[False] * n`` allocation on every swap.

:class:`FlagBitset` replaces that with a ``bytearray`` (one byte per
vertex, value 0/1) plus a count maintained on every mutation:

* ``responding_count`` becomes O(1) (read the maintained count);
* ``swap_flags`` becomes allocation-free (swap the two objects and zero
  the spare buffer in place at C speed);
* hot loops index ``.data`` — the raw ``bytearray`` — directly, which is
  as fast as the old list indexing and beats a ``__getitem__`` method
  call by an order of magnitude.

One byte per flag (rather than one bit) is deliberate: Python-level bit
twiddling costs far more CPU than the 8x memory it saves, and n bytes is
already negligible next to the vertex-value list.  The *modeled*
checkpoint size still charges a packed bitset (``(n + 7) // 8`` bytes)
— the representation here is a host-side implementation detail, not part
of the cost model.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

__all__ = ["FlagBitset"]


class FlagBitset:
    """A fixed-size set of boolean flags over a ``bytearray``.

    Indexing returns real ``bool`` objects (so ``flags[v] is True``
    works, matching the old list-of-bool behaviour); assignment accepts
    any truthy value and keeps :attr:`true_count` exact.
    """

    __slots__ = ("data", "_count", "_zeros")

    def __init__(self, size: int) -> None:
        self.data = bytearray(size)
        self._count = 0
        # persistent zero template: clearing is a C-level slice copy with
        # no per-clear allocation.
        self._zeros = bytes(size)

    # ------------------------------------------------------------------
    @classmethod
    def from_iterable(cls, flags: Iterable[bool]) -> "FlagBitset":
        values = bytes(1 if f else 0 for f in flags)
        out = cls(len(values))
        out.data[:] = values
        out._count = sum(values)
        return out

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.data)

    def __getitem__(self, index: int) -> bool:
        return bool(self.data[index])

    def __setitem__(self, index: int, value: object) -> None:
        old = self.data[index]
        new = 1 if value else 0
        if old != new:
            self.data[index] = new
            self._count += new - old

    def __iter__(self) -> Iterator[bool]:
        return map(bool, self.data)

    def __repr__(self) -> str:
        return (
            f"FlagBitset(size={len(self.data)}, "
            f"true_count={self._count})"
        )

    # ------------------------------------------------------------------
    @property
    def true_count(self) -> int:
        """Number of set flags — O(1), maintained on every mutation."""
        return self._count

    def clear(self) -> None:
        """Reset every flag to False in place (no reallocation)."""
        if self._count:
            self.data[:] = self._zeros
            self._count = 0

    def add_to_count(self, delta: int) -> None:
        """Account *delta* flags set directly through :attr:`data`.

        Executors on the hot path write ``data[vid] = 1`` without the
        ``__setitem__`` method-call overhead; they must only ever flip
        0 -> 1 bytes (each vertex is updated at most once per superstep)
        and report how many they flipped through this method so the
        maintained count stays exact.
        """
        self._count += delta

    def numpy_view(self, xp):
        """Writable ``uint8`` NumPy view over the raw flag bytes.

        *xp* is the NumPy module (passed in so this class stays
        importable without it).  The view aliases :attr:`data`, so the
        hot-path discipline of :meth:`add_to_count` applies: only flip
        0 -> 1 bytes through it and report how many.  Views must be
        re-derived after :meth:`~repro.core.runtime.Runtime.swap_flags`
        — the engine swaps the underlying objects every superstep.
        """
        return xp.frombuffer(self.data, dtype=xp.uint8)

    def to_list(self) -> List[bool]:
        """Plain ``List[bool]`` copy (checkpoint snapshots)."""
        return [bool(b) for b in self.data]

"""Job configuration: execution mode, memory budgets, hardware profiles.

A :class:`JobConfig` fully determines a run (the simulator is
deterministic), so every experiment in ``benchmarks/`` is expressed as a
set of configs over a set of graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional

from repro.storage.disk import DiskProfile, HDD_PROFILE, SSD_PROFILE
from repro.storage.records import DEFAULT_SIZES, RecordSizes

__all__ = [
    "CpuModel",
    "ClusterProfile",
    "LOCAL_CLUSTER",
    "AMAZON_CLUSTER",
    "FaultPlan",
    "JobConfig",
    "MODES",
]

#: Execution modes accepted by :func:`repro.run_job`.
MODES = ("push", "pushm", "pull", "bpull", "hybrid")


@dataclass(frozen=True)
class CpuModel:
    """Per-operation CPU costs in modeled seconds.

    ``sortmerge_per_spilled_message`` models Giraph's sort-merge handling
    of disk-resident messages, which the paper identifies as
    computation-intensive — it is why push does *not* speed up on the
    amazon/SSD cluster (Section 6.1).  ``speed`` scales all CPU costs;
    the amazon cluster's virtual CPUs are slower than the local cluster's
    physical ones.
    """

    update: float = 5e-7
    per_message: float = 2e-7
    per_edge: float = 2e-8
    sortmerge_per_spilled_message: float = 1e-5
    per_lru_miss: float = 1e-7
    load_parse_per_edge: float = 5e-8
    speed: float = 1.0

    def seconds(self, *, updates: int = 0, messages: int = 0, edges: int = 0,
                spilled: int = 0, lru_misses: int = 0) -> float:
        raw = (
            updates * self.update
            + messages * self.per_message
            + edges * self.per_edge
            + spilled * self.sortmerge_per_spilled_message
            + lru_misses * self.per_lru_miss
        )
        return raw / self.speed


@dataclass(frozen=True)
class ClusterProfile:
    """Hardware profile of a cluster: disk/network throughputs + CPU."""

    name: str
    disk: DiskProfile
    cpu: CpuModel

    def with_cpu(self, **kwargs) -> "ClusterProfile":
        return replace(self, cpu=replace(self.cpu, **kwargs))


#: Table 3 "local" cluster: HDDs, physical CPUs.
LOCAL_CLUSTER = ClusterProfile(name="local", disk=HDD_PROFILE, cpu=CpuModel())

#: Table 3 "amazon" cluster: SSDs, weaker virtual CPUs.
AMAZON_CLUSTER = ClusterProfile(
    name="amazon", disk=SSD_PROFILE, cpu=CpuModel(speed=0.6)
)


@dataclass(frozen=True)
class FaultPlan:
    """Inject a worker failure once, for fault-tolerance tests.

    HybridGraph's recovery policy is recompute-from-scratch (Appendix A);
    the engine restarts the job when the failure fires.
    """

    worker: int
    superstep: int


@dataclass(frozen=True)
class JobConfig:
    """Everything that parameterises one job run.

    Parameters mirror the paper's experimental knobs:

    * ``mode`` — push (Giraph), pushm (MOCgraph), pull (GraphLab
      PowerGraph + disk extension), bpull, hybrid.
    * ``message_buffer_per_worker`` — ``B_i``, the number of messages a
      worker may hold in memory before spilling (push family).  ``None``
      means unlimited (the "sufficient memory" scenario).  The pull
      baseline and pushM reuse the same budget to cache vertices.
    * ``graph_on_disk`` — the limited-memory scenario stores vertices and
      edges on (simulated) disk; False keeps everything memory-resident.
    * ``vblocks_per_worker`` — ``V_i``; ``None`` derives it from Eq. 5
      (combinable programs) or Eq. 6 (concatenation only).
    * ``sending_threshold_bytes`` — network package size (Appendix E).
    * ``switching_interval`` — Δt of the hybrid predictor (paper: 2).
    """

    mode: str = "hybrid"
    num_workers: int = 5
    partition: str = "range"  # "range" | "hash"
    message_buffer_per_worker: Optional[int] = None
    graph_on_disk: bool = True
    cluster: ClusterProfile = LOCAL_CLUSTER
    sizes: RecordSizes = DEFAULT_SIZES
    vblocks_per_worker: Optional[int] = None
    sending_threshold_bytes: int = 4096
    max_supersteps: Optional[int] = None
    switching_enabled: bool = True
    switching_interval: int = 2
    #: extension: only change transport when |Q_t| exceeds this fraction
    #: of the superstep's modeled duration.  0.0 reproduces the paper's
    #: pure sign rule; a few percent suppresses flip-flops in the
    #: near-zero early supersteps where the predicted gain cannot repay
    #: the switch overhead.
    switching_deadband: float = 0.0
    receiver_combine: bool = False
    sender_combine: bool = False  # pushM+com variant (Appendix E)
    #: set False to disable the Combiner in b-pull while keeping
    #: concatenation (the Fig. 18 network-traffic comparison does this).
    bpull_combine: bool = True
    prepull: bool = True  # b-pull pre-pulls the next Vblock (Section 4.3)
    #: vertices per physical adjacency block; push reads edges at this
    #: granularity (Section 6.2's block-insensitivity of C_io(push)).
    adjacency_block_vertices: int = 64
    #: asynchronous iteration (push family only): messages produced by a
    #: worker become visible to later workers within the same superstep,
    #: accelerating convergence of monotonic algorithms (those with
    #: ``async_safe = True``, e.g. SSSP/WCC).  The paper runs everything
    #: synchronously and notes async support as an extension.
    asynchronous: bool = False
    lru_capacity_vertices: Optional[int] = None  # pull baseline; None -> B_i
    vertices_on_disk_for_pull: bool = True  # Table 5 ext-edge keeps them in memory
    fragment_clustering: bool = True  # ablation: False = one fragment per edge
    fault: Optional[FaultPlan] = None
    #: superstep executor implementation.  ``"batched"`` (default) is the
    #: optimized hot path (aggregated disk charges, bitset flags, bucketed
    #: routing); ``"reference"`` is the per-vertex-accounting oracle in
    #: :mod:`repro.core.modes.reference`; ``"vectorized"`` runs dense
    #: NumPy kernels over a CSR view (:mod:`repro.core.modes.vectorized`)
    #: and transparently falls back to ``"batched"`` when NumPy is
    #: missing or the job shape has no vectorized path.  All tiers
    #: produce byte-identical :class:`JobMetrics` — the equivalence
    #: tests run every job through all of them.
    executor: str = "batched"
    #: number of OS processes executing each superstep's per-worker
    #: halves concurrently (:mod:`repro.core.modes.parallel`).
    #: Orthogonal to ``executor``: both the batched and vectorized tiers
    #: can run their per-worker phases across a persistent process pool;
    #: the coordinator folds the per-process shards in fixed worker-id
    #: order, so metrics stay byte-identical to ``parallelism=1``.
    #: Values above ``num_workers`` are clamped; job shapes without a
    #: parallel path (reference executor, pull/pushm, asynchronous
    #: iteration, platforms without ``fork``/``shared_memory``) fall
    #: back to in-process execution with the reason recorded in
    #: ``Runtime.executor_fallback``.
    parallelism: int = 1
    #: snapshot the iteration state every N supersteps and recover from
    #: the latest snapshot instead of recomputing from scratch — the
    #: lightweight fault tolerance the paper leaves as future work
    #: (Appendix A).  None keeps the paper's recompute-from-scratch.
    checkpoint_interval: Optional[int] = None
    #: observability (``repro.obs``): ``None``/``False`` — tracing off
    #: (the job shares the zero-overhead null tracer); ``True`` — record
    #: to an in-memory ring buffer, readable via ``JobResult.trace``; a
    #: path string — additionally stream JSONL events to that file; a
    #: :class:`repro.obs.TraceConfig` or a ready
    #: :class:`repro.obs.Tracer` — full control over sinks.  Tracing
    #: never perturbs the model: metrics are byte-identical either way.
    trace: Any = None

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}; expected one of {MODES}")
        if self.num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if self.partition not in ("range", "hash"):
            raise ValueError("partition must be 'range' or 'hash'")
        if self.switching_interval < 1:
            raise ValueError("switching_interval must be >= 1")
        if self.checkpoint_interval is not None and self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if self.asynchronous and self.mode not in ("push", "pushm"):
            raise ValueError(
                "asynchronous iteration is only supported by the push "
                "family (push/pushm)"
            )
        if self.executor not in ("batched", "reference", "vectorized"):
            raise ValueError(
                f"unknown executor {self.executor!r}; expected "
                "'batched', 'reference', or 'vectorized'"
            )
        if not isinstance(self.parallelism, int) or self.parallelism < 1:
            raise ValueError(
                f"parallelism must be an integer >= 1, got "
                f"{self.parallelism!r}"
            )

    # Convenience -------------------------------------------------------
    @property
    def total_message_buffer(self) -> Optional[int]:
        """Cluster-wide ``B`` = Σ B_i (None when unlimited)."""
        if self.message_buffer_per_worker is None:
            return None
        return self.message_buffer_per_worker * self.num_workers

    @property
    def memory_sufficient(self) -> bool:
        return self.message_buffer_per_worker is None and not self.graph_on_disk

    def lru_capacity(self) -> Optional[int]:
        if self.lru_capacity_vertices is not None:
            return self.lru_capacity_vertices
        return self.message_buffer_per_worker

    def but(self, **kwargs) -> "JobConfig":
        """A copy with some fields replaced (config sweeps read nicely)."""
        return replace(self, **kwargs)

"""Job configuration: execution mode, memory budgets, hardware profiles.

A :class:`JobConfig` fully determines a run (the simulator is
deterministic), so every experiment in ``benchmarks/`` is expressed as a
set of configs over a set of graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional, Tuple, Union

from repro.storage.disk import DiskProfile, HDD_PROFILE, SSD_PROFILE
from repro.storage.records import DEFAULT_SIZES, RecordSizes

__all__ = [
    "CpuModel",
    "ClusterProfile",
    "LOCAL_CLUSTER",
    "AMAZON_CLUSTER",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSchedule",
    "JobConfig",
    "MODES",
]

#: Execution modes accepted by :func:`repro.run_job`.
MODES = ("push", "pushm", "pull", "bpull", "hybrid")


@dataclass(frozen=True)
class CpuModel:
    """Per-operation CPU costs in modeled seconds.

    ``sortmerge_per_spilled_message`` models Giraph's sort-merge handling
    of disk-resident messages, which the paper identifies as
    computation-intensive — it is why push does *not* speed up on the
    amazon/SSD cluster (Section 6.1).  ``speed`` scales all CPU costs;
    the amazon cluster's virtual CPUs are slower than the local cluster's
    physical ones.
    """

    update: float = 5e-7
    per_message: float = 2e-7
    per_edge: float = 2e-8
    sortmerge_per_spilled_message: float = 1e-5
    per_lru_miss: float = 1e-7
    load_parse_per_edge: float = 5e-8
    speed: float = 1.0

    def seconds(self, *, updates: int = 0, messages: int = 0, edges: int = 0,
                spilled: int = 0, lru_misses: int = 0) -> float:
        raw = (
            updates * self.update
            + messages * self.per_message
            + edges * self.per_edge
            + spilled * self.sortmerge_per_spilled_message
            + lru_misses * self.per_lru_miss
        )
        return raw / self.speed


@dataclass(frozen=True)
class ClusterProfile:
    """Hardware profile of a cluster: disk/network throughputs + CPU."""

    name: str
    disk: DiskProfile
    cpu: CpuModel

    def with_cpu(self, **kwargs) -> "ClusterProfile":
        return replace(self, cpu=replace(self.cpu, **kwargs))


#: Table 3 "local" cluster: HDDs, physical CPUs.
LOCAL_CLUSTER = ClusterProfile(name="local", disk=HDD_PROFILE, cpu=CpuModel())

#: Table 3 "amazon" cluster: SSDs, weaker virtual CPUs.
AMAZON_CLUSTER = ClusterProfile(
    name="amazon", disk=SSD_PROFILE, cpu=CpuModel(speed=0.6)
)


#: Fault kinds understood by the injector (see ``docs/RESILIENCE.md``):
#:
#: * ``"crash"`` — the worker raises at the superstep barrier
#:   (HybridGraph's baseline failure model, Appendix A);
#: * ``"kill"`` — like crash, but under ``parallelism > 1`` the engine
#:   SIGKILLs the child process owning the worker first, so recovery is
#:   exercised against genuine OS-level death;
#: * ``"straggler"`` — the worker's modeled seconds for that superstep
#:   are inflated by ``factor`` (no restart; stretches the barrier);
#: * ``"checkpoint_write"`` — the next snapshot attempt fails after
#:   paying its modeled write cost (the snapshot is not retained);
#: * ``"checkpoint_corrupt"`` — the newest retained snapshot (in memory
#:   and on disk) is corrupted, forcing recovery to fall back to the
#:   previous valid one, or to scratch.
FAULT_KINDS = (
    "crash",
    "kill",
    "straggler",
    "checkpoint_write",
    "checkpoint_corrupt",
)


@dataclass(frozen=True)
class FaultPlan:
    """One planned fault: *kind* fires at *superstep*, hitting *worker*.

    ``repeat`` makes the fault fire again on re-execution of the same
    superstep after a restart (up to ``repeat`` times total) — the
    classic "fails again during recovery" scenario.  ``factor`` only
    applies to ``kind="straggler"``.  The default kind reproduces the
    original one-shot worker crash, so ``FaultPlan(worker, superstep)``
    keeps its historical meaning.
    """

    worker: int
    superstep: int
    kind: str = "crash"
    factor: float = 4.0
    repeat: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if not isinstance(self.worker, int) or self.worker < 0:
            raise ValueError(
                f"fault worker must be an integer >= 0, got {self.worker!r}"
            )
        if not isinstance(self.superstep, int) or self.superstep < 1:
            raise ValueError(
                f"fault superstep must be an integer >= 1, got "
                f"{self.superstep!r}"
            )
        if not self.factor > 0:
            raise ValueError(f"straggler factor must be > 0, got {self.factor!r}")
        if not isinstance(self.repeat, int) or self.repeat < 1:
            raise ValueError(
                f"fault repeat must be an integer >= 1, got {self.repeat!r}"
            )


@dataclass(frozen=True)
class FaultSchedule:
    """Multiple planned faults plus a seeded probabilistic chaos mode.

    ``faults`` fire deterministically (see :class:`FaultPlan`).  When
    ``chaos_probability`` > 0, each superstep additionally draws from a
    :class:`random.Random` seeded with ``chaos_seed`` — the RNG lives in
    the injector, never in global state, so a given (schedule, job)
    pair always produces the same fault sequence.  Chaos stops after
    ``chaos_max_faults`` injected faults so seeded runs terminate.
    """

    faults: Tuple[FaultPlan, ...] = ()
    chaos_probability: float = 0.0
    chaos_seed: int = 0
    chaos_kinds: Tuple[str, ...] = ("crash",)
    chaos_max_faults: int = 3

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        object.__setattr__(self, "chaos_kinds", tuple(self.chaos_kinds))
        for plan in self.faults:
            if not isinstance(plan, FaultPlan):
                raise ValueError(
                    f"FaultSchedule.faults entries must be FaultPlan, "
                    f"got {plan!r}"
                )
        if (
            not isinstance(self.chaos_probability, (int, float))
            or isinstance(self.chaos_probability, bool)
            or not 0.0 <= self.chaos_probability <= 1.0
        ):
            raise ValueError(
                f"chaos_probability must be within [0, 1], got "
                f"{self.chaos_probability!r}"
            )
        if not self.chaos_kinds:
            raise ValueError("chaos_kinds must not be empty")
        for kind in self.chaos_kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown chaos fault kind {kind!r}; expected one of "
                    f"{FAULT_KINDS}"
                )
        if not isinstance(self.chaos_max_faults, int) or self.chaos_max_faults < 0:
            raise ValueError(
                f"chaos_max_faults must be an integer >= 0, got "
                f"{self.chaos_max_faults!r}"
            )

    @property
    def empty(self) -> bool:
        return not self.faults and self.chaos_probability == 0.0


@dataclass(frozen=True)
class JobConfig:
    """Everything that parameterises one job run.

    Parameters mirror the paper's experimental knobs:

    * ``mode`` — push (Giraph), pushm (MOCgraph), pull (GraphLab
      PowerGraph + disk extension), bpull, hybrid.
    * ``message_buffer_per_worker`` — ``B_i``, the number of messages a
      worker may hold in memory before spilling (push family).  ``None``
      means unlimited (the "sufficient memory" scenario).  The pull
      baseline and pushM reuse the same budget to cache vertices.
    * ``graph_on_disk`` — the limited-memory scenario stores vertices and
      edges on (simulated) disk; False keeps everything memory-resident.
    * ``vblocks_per_worker`` — ``V_i``; ``None`` derives it from Eq. 5
      (combinable programs) or Eq. 6 (concatenation only).
    * ``sending_threshold_bytes`` — network package size (Appendix E).
    * ``switching_interval`` — Δt of the hybrid predictor (paper: 2).
    """

    mode: str = "hybrid"
    num_workers: int = 5
    partition: str = "range"  # "range" | "hash"
    message_buffer_per_worker: Optional[int] = None
    graph_on_disk: bool = True
    cluster: ClusterProfile = LOCAL_CLUSTER
    sizes: RecordSizes = DEFAULT_SIZES
    vblocks_per_worker: Optional[int] = None
    sending_threshold_bytes: int = 4096
    max_supersteps: Optional[int] = None
    switching_enabled: bool = True
    switching_interval: int = 2
    #: extension: only change transport when |Q_t| exceeds this fraction
    #: of the superstep's modeled duration.  0.0 reproduces the paper's
    #: pure sign rule; a few percent suppresses flip-flops in the
    #: near-zero early supersteps where the predicted gain cannot repay
    #: the switch overhead.
    switching_deadband: float = 0.0
    receiver_combine: bool = False
    sender_combine: bool = False  # pushM+com variant (Appendix E)
    #: set False to disable the Combiner in b-pull while keeping
    #: concatenation (the Fig. 18 network-traffic comparison does this).
    bpull_combine: bool = True
    prepull: bool = True  # b-pull pre-pulls the next Vblock (Section 4.3)
    #: vertices per physical adjacency block; push reads edges at this
    #: granularity (Section 6.2's block-insensitivity of C_io(push)).
    adjacency_block_vertices: int = 64
    #: asynchronous iteration (push family only): messages produced by a
    #: worker become visible to later workers within the same superstep,
    #: accelerating convergence of monotonic algorithms (those with
    #: ``async_safe = True``, e.g. SSSP/WCC).  The paper runs everything
    #: synchronously and notes async support as an extension.
    asynchronous: bool = False
    lru_capacity_vertices: Optional[int] = None  # pull baseline; None -> B_i
    vertices_on_disk_for_pull: bool = True  # Table 5 ext-edge keeps them in memory
    fragment_clustering: bool = True  # ablation: False = one fragment per edge
    #: fault injection: a single :class:`FaultPlan` (one planned fault)
    #: or a :class:`FaultSchedule` (multiple planned faults + seeded
    #: chaos mode).  None disables injection.
    fault: Optional[Union[FaultPlan, FaultSchedule]] = None
    #: superstep executor implementation.  ``"batched"`` (default) is the
    #: optimized hot path (aggregated disk charges, bitset flags, bucketed
    #: routing); ``"reference"`` is the per-vertex-accounting oracle in
    #: :mod:`repro.core.modes.reference`; ``"vectorized"`` runs dense
    #: NumPy kernels over a CSR view (:mod:`repro.core.modes.vectorized`)
    #: and transparently falls back to ``"batched"`` when NumPy is
    #: missing or the job shape has no vectorized path.  All tiers
    #: produce byte-identical :class:`JobMetrics` — the equivalence
    #: tests run every job through all of them.
    executor: str = "batched"
    #: number of OS processes executing each superstep's per-worker
    #: halves concurrently (:mod:`repro.core.modes.parallel`).
    #: Orthogonal to ``executor``: both the batched and vectorized tiers
    #: can run their per-worker phases across a persistent process pool;
    #: the coordinator folds the per-process shards in fixed worker-id
    #: order, so metrics stay byte-identical to ``parallelism=1``.
    #: Values above ``num_workers`` are clamped; job shapes without a
    #: parallel path (reference executor, pull/pushm, asynchronous
    #: iteration, platforms without ``fork``/``shared_memory``) fall
    #: back to in-process execution with the reason recorded in
    #: ``Runtime.executor_fallback``.
    parallelism: int = 1
    #: snapshot the iteration state every N supersteps and recover from
    #: the latest snapshot instead of recomputing from scratch — the
    #: lightweight fault tolerance the paper leaves as future work
    #: (Appendix A).  None keeps the paper's recompute-from-scratch.
    checkpoint_interval: Optional[int] = None
    #: restarts the recovery engine will attempt before re-raising the
    #: :class:`~repro.cluster.fault.WorkerFailure` to the caller.
    max_restarts: int = 3
    #: modeled seconds charged to the clock before restart *n* as
    #: ``backoff * 2**(n-1)`` (exponential backoff).  0.0 — the default —
    #: restarts immediately, preserving historical runtimes.
    restart_backoff_seconds: float = 0.0
    #: directory for durable checkpoint files
    #: (:mod:`repro.cluster.checkpoint_store`).  None keeps snapshots
    #: in the coordinator's memory only.  The modeled write cost is
    #: identical either way.
    checkpoint_dir: Optional[str] = None
    #: keep-last-K retention for snapshots (durable files and the
    #: in-memory log); older snapshots are dropped.
    checkpoint_keep: int = 2
    #: resume a previously killed job from the newest valid snapshot in
    #: this directory (implies durable checkpointing into it unless
    #: ``checkpoint_dir`` points elsewhere).
    resume_from: Optional[str] = None
    #: real (wall-clock) seconds the coordinator waits on a pool child's
    #: pipe before declaring it hung and re-forking the pool
    #: (:mod:`repro.core.modes.parallel`).  Purely operational — never
    #: part of the modeled experiment.
    pool_round_timeout_seconds: float = 300.0
    #: observability (``repro.obs``): ``None``/``False`` — tracing off
    #: (the job shares the zero-overhead null tracer); ``True`` — record
    #: to an in-memory ring buffer, readable via ``JobResult.trace``; a
    #: path string — additionally stream JSONL events to that file; a
    #: :class:`repro.obs.TraceConfig` or a ready
    #: :class:`repro.obs.Tracer` — full control over sinks.  Tracing
    #: never perturbs the model: metrics are byte-identical either way.
    trace: Any = None

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}; expected one of {MODES}")
        if self.num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if self.partition not in ("range", "hash"):
            raise ValueError("partition must be 'range' or 'hash'")
        if self.switching_interval < 1:
            raise ValueError("switching_interval must be >= 1")
        if self.checkpoint_interval is not None and self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if self.asynchronous and self.mode not in ("push", "pushm"):
            raise ValueError(
                "asynchronous iteration is only supported by the push "
                "family (push/pushm)"
            )
        if self.executor not in ("batched", "reference", "vectorized"):
            raise ValueError(
                f"unknown executor {self.executor!r}; expected "
                "'batched', 'reference', or 'vectorized'"
            )
        if not isinstance(self.parallelism, int) or self.parallelism < 1:
            raise ValueError(
                f"parallelism must be an integer >= 1, got "
                f"{self.parallelism!r}"
            )
        if self.fault is not None and not isinstance(
            self.fault, (FaultPlan, FaultSchedule)
        ):
            raise ValueError(
                f"fault must be a FaultPlan or FaultSchedule, got "
                f"{self.fault!r}"
            )
        if not isinstance(self.max_restarts, int) or self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be an integer >= 0, got "
                f"{self.max_restarts!r}"
            )
        if self.restart_backoff_seconds < 0:
            raise ValueError(
                f"restart_backoff_seconds must be >= 0, got "
                f"{self.restart_backoff_seconds!r}"
            )
        if not isinstance(self.checkpoint_keep, int) or self.checkpoint_keep < 1:
            raise ValueError(
                f"checkpoint_keep must be an integer >= 1, got "
                f"{self.checkpoint_keep!r}"
            )
        if not self.pool_round_timeout_seconds > 0:
            raise ValueError(
                f"pool_round_timeout_seconds must be > 0, got "
                f"{self.pool_round_timeout_seconds!r}"
            )

    # Convenience -------------------------------------------------------
    @property
    def total_message_buffer(self) -> Optional[int]:
        """Cluster-wide ``B`` = Σ B_i (None when unlimited)."""
        if self.message_buffer_per_worker is None:
            return None
        return self.message_buffer_per_worker * self.num_workers

    @property
    def memory_sufficient(self) -> bool:
        return self.message_buffer_per_worker is None and not self.graph_on_disk

    def lru_capacity(self) -> Optional[int]:
        if self.lru_capacity_vertices is not None:
            return self.lru_capacity_vertices
        return self.message_buffer_per_worker

    def but(self, **kwargs) -> "JobConfig":
        """A copy with some fields replaced (config sweeps read nicely)."""
        return replace(self, **kwargs)

"""The BSP engine: master loop, superstep scheduling, halting, recovery.

``run_job`` is the library's main entry point.  It plays the paper's
Master (Appendix A): it schedules supersteps, enforces the barrier
(implicit — supersteps are executed to completion before the next
starts), consults the Switcher for hybrid jobs, detects injected faults
and recovers by recomputation, and assembles :class:`JobMetrics`.

Superstep mechanics (Section 5.2): a superstep's *input* mechanism is
determined by the previous superstep's mode (push leaves messages in the
receiver stores; b-pull leaves responding flags), its *output* mechanism
by its own mode.  A mode change therefore automatically executes the
correct switch superstep of Fig. 6:

=============  =============  =======  ========
prev mode      current mode   input    output
=============  =============  =======  ========
push           push           stored   push
push           bpull          stored   flag   (switch: load+update only)
bpull          push           pull     push   (switch: pull+update+push)
bpull          bpull          pull     flag
=============  =============  =======  ========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.core.api import VertexProgram
from repro.core.config import JobConfig
from repro.core.graph import Graph
from repro.core.metrics import JobMetrics
from repro.core.modes.common import run_superstep
from repro.core.modes.parallel import (
    kill_pool_worker,
    run_superstep_parallel,
)
from repro.core.modes.pull import run_pull_superstep
from repro.core.modes.reference import run_superstep_reference
from repro.core.modes.vectorized import run_superstep_vectorized
from repro.core.runtime import Runtime
from repro.core.switching import FixedController, HybridController
from repro.cluster.checkpoint import (
    CheckpointLog,
    restore_checkpoint,
    take_checkpoint,
)
from repro.cluster.fault import FaultInjector, WorkerFailure
from repro.obs.events import CAT_ENGINE

__all__ = ["JobResult", "run_job"]


@dataclass
class JobResult:
    """Final vertex values plus the full metrics of the run."""

    values: List[Any]
    metrics: JobMetrics
    #: the runtime, exposed for tests and ablations that poke internals.
    runtime: Runtime
    #: the job's :class:`repro.obs.Tracer` when tracing was enabled via
    #: ``JobConfig(trace=...)``, else None.  File sinks are already
    #: flushed; the in-memory events remain readable (``.events``,
    #: ``.summary()``, ``.export_chrome(path)``).
    trace: Optional[Any] = None

    def value_of(self, vid: int) -> Any:
        return self.values[vid]


def run_job(
    graph: Graph, program: VertexProgram, config: Optional[JobConfig] = None
) -> JobResult:
    """Run *program* over *graph* under *config* and return the result.

    See :class:`~repro.core.config.JobConfig` for the execution modes and
    memory knobs; the default runs the hybrid engine on 5 workers with
    disk-resident graph data.
    """
    config = config or JobConfig()
    rt = Runtime(graph, program, config)
    rt.setup()
    injector = FaultInjector(config.fault, config.num_workers)
    tracer = rt.tracer
    # run_job owns (and closes) tracers it built from a spec; a ready
    # Tracer instance passed in stays under the caller's control.
    owns_tracer = tracer is not config.trace
    if tracer.enabled:
        tracer.span(
            "load_graph", cat=CAT_ENGINE, start=tracer.clock,
            dur=rt.load_metrics.elapsed_seconds,
            args={
                "structures": rt.load_metrics.structures,
                "io_bytes": rt.load_metrics.io.total,
                "cpu_seconds": rt.load_metrics.cpu_seconds,
            },
        )
        tracer.advance(rt.load_metrics.elapsed_seconds)

    metrics = JobMetrics(
        mode=config.mode,
        graph_name=graph.name,
        program_name=program.name,
        num_workers=config.num_workers,
        load=rt.load_metrics,
        max_restarts=config.max_restarts,
    )
    if rt.executor_fallback is not None:
        metrics.fallback = {
            "requested_executor": config.executor,
            "active_executor": rt.active_executor,
            "requested_parallelism": config.parallelism,
            "active_parallelism": rt.active_parallelism,
            "reason": rt.executor_fallback,
        }

    if config.mode == "hybrid":
        controller: Any = HybridController(
            rt,
            enabled=config.switching_enabled,
            interval=config.switching_interval,
            deadband=config.switching_deadband,
        )
    else:
        controller = FixedController(config.mode)

    restarts = 0
    start_superstep = 0
    prev_mode: Optional[str] = None
    ckpt_log = CheckpointLog(keep_last=config.checkpoint_keep)
    store = None
    store_dir = config.checkpoint_dir or config.resume_from
    if store_dir is not None:
        from repro.cluster.checkpoint_store import CheckpointStore

        store = CheckpointStore(store_dir, keep_last=config.checkpoint_keep)

    if config.resume_from is not None:
        from repro.cluster.checkpoint_store import CheckpointStore

        resume_store = (
            store
            if config.checkpoint_dir in (None, config.resume_from)
            else CheckpointStore(
                config.resume_from, keep_last=config.checkpoint_keep
            )
        )
        snapshot = resume_store.load_latest()
        if snapshot is not None:
            checkpoint = snapshot.checkpoint
            controller = restore_checkpoint(rt, checkpoint)
            ckpt_log.add(checkpoint)
            if resume_store is store:
                # the resumed-from snapshot joins this run's lineage so
                # a failure before the first new save can fall back to
                # it through the owned-only recovery path.
                store.adopt(snapshot.path)
            if snapshot.metrics is not None:
                # continue the original run's metrics wholesale; only
                # the fields owned by *this* process are re-stamped.
                restored = snapshot.metrics
                restored.fallback = metrics.fallback
                restored.max_restarts = config.max_restarts
                metrics = restored
            start_superstep = checkpoint.superstep
            prev_mode = checkpoint.prev_mode
            metrics.resumed_from = checkpoint.superstep
            if tracer.enabled:
                tracer.instant(
                    "resume", cat=CAT_ENGINE,
                    superstep=checkpoint.superstep,
                    args={"path": str(snapshot.path),
                          "skipped": list(snapshot.skipped)},
                )

    try:
        while True:
            try:
                _iterate(rt, controller, metrics, injector, start_superstep,
                         prev_mode, ckpt_log, store)
                break
            except WorkerFailure as failure:
                # the pool's processes hold pre-failure state; drop them
                # before rewinding — the next parallel superstep re-forks
                # from the restored coordinator.
                rt.shutdown_pool()
                restarts += 1
                if restarts > config.max_restarts:
                    raise
                if tracer.enabled:
                    tracer.instant(
                        "fault", cat=CAT_ENGINE, superstep=failure.superstep,
                        worker=failure.worker,
                        args={"restarts": restarts, "kind": failure.kind},
                    )
                # pick the newest valid snapshot: the durable store when
                # one is configured (real CRC validation, corrupt files
                # skipped), else the in-memory log.  A checkpoint_corrupt
                # fault invalidates both views of the same snapshot, so
                # the two sources always agree on the fallback.  The
                # durable search is owned-only and bounded by the failed
                # superstep: stale files a previous run left in the
                # directory can neither leap recovery forward past the
                # failure nor shadow this run's own snapshots.
                checkpoint = None
                if store is not None:
                    durable = store.load_latest(
                        max_superstep=failure.superstep - 1,
                        owned_only=True,
                    )
                    if durable is not None:
                        checkpoint = durable.checkpoint
                else:
                    checkpoint = ckpt_log.best()
                resume_after = checkpoint.superstep if checkpoint else 0
                downtime = (
                    config.restart_backoff_seconds * (2 ** (restarts - 1))
                )
                metrics.recoveries.append({
                    "restart": restarts,
                    "superstep": failure.superstep,
                    "worker": failure.worker,
                    "kind": failure.kind,
                    "policy": "checkpoint" if checkpoint else "scratch",
                    "resume_after": resume_after,
                    "rework_supersteps":
                        len(metrics.supersteps) - resume_after,
                    "rework_seconds": sum(
                        s.elapsed_seconds
                        for s in metrics.supersteps[resume_after:]
                    ),
                    "downtime_seconds": downtime,
                })
                tracer.advance(downtime)
                if checkpoint is not None:
                    # lightweight recovery: resume after the snapshot
                    controller = restore_checkpoint(rt, checkpoint)
                    _rewind_metrics(metrics, checkpoint.superstep)
                    start_superstep = checkpoint.superstep
                    prev_mode = checkpoint.prev_mode
                    metrics.recovered_from = checkpoint.superstep
                    if tracer.enabled:
                        tracer.instant(
                            "restart", cat=CAT_ENGINE,
                            superstep=checkpoint.superstep,
                            args={"policy": "checkpoint",
                                  "resume_after": checkpoint.superstep,
                                  "restart": restarts,
                                  "downtime_seconds": downtime,
                                  "rework_seconds":
                                      metrics.recoveries[-1]
                                      ["rework_seconds"]},
                        )
                else:
                    # the paper's policy: recompute from scratch
                    rt.reset_for_restart()
                    _reset_metrics(metrics)
                    start_superstep = 0
                    prev_mode = None
                    if tracer.enabled:
                        tracer.instant(
                            "restart", cat=CAT_ENGINE,
                            args={"policy": "scratch",
                                  "restart": restarts,
                                  "downtime_seconds": downtime,
                                  "rework_seconds":
                                      metrics.recoveries[-1]
                                      ["rework_seconds"]},
                        )
                    if config.mode == "hybrid":
                        controller = HybridController(
                            rt,
                            enabled=config.switching_enabled,
                            interval=config.switching_interval,
                            deadband=config.switching_deadband,
                        )
    finally:
        rt.shutdown_pool()
    metrics.restarts = restarts
    if isinstance(controller, HybridController):
        metrics.q_trace = [q for _t, q in controller.q_trace]
    _build_traffic_timeline(rt, metrics)
    if owns_tracer:
        tracer.close()
    return JobResult(
        values=rt.values, metrics=metrics, runtime=rt,
        trace=tracer if tracer.enabled else None,
    )


def _rewind_metrics(metrics: JobMetrics, superstep: int) -> None:
    """Drop per-superstep records past a restored checkpoint.

    The re-executed supersteps append fresh entries; anything recorded
    after the snapshot — including checkpoints themselves — is stale
    and would double up (or misreport snapshots that no longer exist).
    """
    del metrics.supersteps[superstep:]
    del metrics.mode_trace[superstep:]
    metrics.checkpoints = [
        entry for entry in metrics.checkpoints if entry[0] <= superstep
    ]
    metrics.checkpoint_failures = [
        entry for entry in metrics.checkpoint_failures
        if entry[0] <= superstep
    ]


def _reset_metrics(metrics: JobMetrics) -> None:
    """Recompute-from-scratch recovery: drop every per-superstep record."""
    metrics.supersteps.clear()
    metrics.mode_trace.clear()
    metrics.checkpoints.clear()
    metrics.checkpoint_failures.clear()


def _inject_faults(
    rt: Runtime,
    injector: FaultInjector,
    metrics: JobMetrics,
    superstep: int,
    ckpt_log: CheckpointLog,
    store: Optional[Any] = None,
) -> tuple:
    """Evaluate the schedule at this superstep attempt and act on it.

    Returns ``(straggler_factors, checkpoint_write_fails)``; checkpoint
    corruption is applied to ``ckpt_log``/``store`` immediately, and
    crash-class faults abort the attempt by raising
    :class:`WorkerFailure` *after* every fault fired this superstep is
    recorded and applied — so e.g. a checkpoint corruption scheduled
    together with a kill lands before the restart and forces recovery
    back to the previous valid snapshot.
    """
    fired = injector.fire(superstep)
    if not fired:
        return {}, False
    tracer = rt.tracer
    stragglers: dict = {}
    ckpt_write_fails = False
    crash = None
    for fault in fired:
        metrics.faults.append({
            "superstep": fault.superstep,
            "worker": fault.worker,
            "kind": fault.kind,
            "source": fault.source,
            "factor": fault.factor,
        })
        if fault.kind == "straggler":
            stragglers[fault.worker] = (
                stragglers.get(fault.worker, 1.0) * fault.factor
            )
            if tracer.enabled:
                tracer.instant(
                    "fault", cat=CAT_ENGINE, superstep=superstep,
                    worker=fault.worker,
                    args={"kind": fault.kind, "source": fault.source,
                          "factor": fault.factor},
                )
        elif fault.kind == "checkpoint_write":
            ckpt_write_fails = True
            if tracer.enabled:
                tracer.instant(
                    "fault", cat=CAT_ENGINE, superstep=superstep,
                    worker=fault.worker,
                    args={"kind": fault.kind, "source": fault.source},
                )
        elif fault.kind == "checkpoint_corrupt":
            if tracer.enabled:
                tracer.instant(
                    "fault", cat=CAT_ENGINE, superstep=superstep,
                    worker=fault.worker,
                    args={"kind": fault.kind, "source": fault.source},
                )
            corrupted = ckpt_log.corrupt_latest()
            if store is not None:
                store.corrupt_latest(owned_only=True)
            if tracer.enabled and corrupted is not None:
                tracer.instant(
                    "checkpoint_corrupted", cat=CAT_ENGINE,
                    superstep=superstep,
                    args={"snapshot_superstep": corrupted},
                )
        elif crash is None:  # crash | kill: first one wins
            crash = fault
    if crash is not None:
        # the crash-class "fault" instant is emitted by run_job's
        # recovery handler (it carries the restart counter).
        if crash.kind == "kill" and rt.active_parallelism > 1:
            # genuine OS-level death of the child owning the worker;
            # raises WorkerFailure once the child is gone.
            kill_pool_worker(rt, crash.worker, superstep)
        raise WorkerFailure(crash.worker, superstep, kind=crash.kind)
    return stragglers, ckpt_write_fails


def _apply_stragglers(rt: Runtime, step, stragglers: dict) -> None:
    """Inflate the afflicted workers' modeled seconds, then re-barrier.

    Applied to the finished :class:`SuperstepMetrics` — after the
    executor ran, before the engine advances the clock — so every
    executor tier sees the identical inflation and stays
    byte-identical.  The executor's trace spans keep their
    pre-inflation durations; the stretch shows up as the gap before
    the next superstep's spans (the straggler stall *is* dead time).
    """
    tracer = rt.tracer
    for worker, factor in stragglers.items():
        if worker in step.worker_seconds:
            step.worker_seconds[worker] *= factor
            if tracer.enabled:
                tracer.instant(
                    "straggler", cat=CAT_ENGINE,
                    superstep=step.superstep, worker=worker,
                    args={"factor": factor,
                          "worker_seconds": step.worker_seconds[worker]},
                )
    if step.worker_seconds:
        step.elapsed_seconds = max(step.worker_seconds.values())


def _iterate(
    rt: Runtime,
    controller: Any,
    metrics: JobMetrics,
    injector: FaultInjector,
    start_superstep: int = 0,
    prev_mode: Optional[str] = None,
    ckpt_log: Optional[CheckpointLog] = None,
    store: Optional[Any] = None,
) -> None:
    """The superstep loop, up to convergence or the superstep budget.

    ``start_superstep``/``prev_mode`` support resuming from a checkpoint;
    ``ckpt_log`` (the in-memory keep-last-K snapshot log) is updated in
    place whenever a snapshot is taken, so the recovery path in
    :func:`run_job` can reach the newest ones even though the loop exits
    via an exception; ``store`` is the optional durable
    :class:`~repro.cluster.checkpoint_store.CheckpointStore`.
    """
    config = rt.config
    tracer = rt.tracer
    if ckpt_log is None:
        ckpt_log = CheckpointLog(keep_last=config.checkpoint_keep)
    if config.executor == "reference":
        superstep_fn = run_superstep_reference
    elif rt.active_parallelism > 1:
        # branches on rt.active_executor internally: both the batched
        # and vectorized tiers run their per-worker phases on the pool.
        superstep_fn = run_superstep_parallel
    elif rt.active_executor == "vectorized":
        # active_executor, not config.executor: the runtime may have
        # downgraded a vectorized request to batched (see Runtime).
        superstep_fn = run_superstep_vectorized
    else:
        superstep_fn = run_superstep
    superstep = start_superstep
    while superstep < rt.max_supersteps:
        superstep += 1
        stragglers, ckpt_write_fails = _inject_faults(
            rt, injector, metrics, superstep, ckpt_log, store
        )
        mode = controller.mode_for(superstep)
        if mode == "pull":
            step = run_pull_superstep(rt, superstep)
        else:
            in_mech = "stored" if (prev_mode or mode) == "push" else "pull"
            out_mech = "push" if mode == "push" else "flag"
            label = mode
            if prev_mode is not None and prev_mode != mode:
                label = f"{prev_mode}->{mode}"
                if tracer.enabled:
                    tracer.instant(
                        "mode_switch", cat=CAT_ENGINE, superstep=superstep,
                        args={"from": prev_mode, "to": mode},
                    )
            step = superstep_fn(rt, superstep, in_mech, out_mech, label)
        if stragglers:
            _apply_stragglers(rt, step, stragglers)
        mode_label = step.mode
        if config.mode == "pushm":
            mode_label = step.mode = "pushm"
        metrics.supersteps.append(step)
        metrics.mode_trace.append(mode_label)
        metrics.executed_supersteps += 1
        # the executor emitted this superstep's spans at the old clock;
        # move the modeled clock past the barrier (no-op when disabled).
        tracer.advance(step.elapsed_seconds)
        # publish this superstep's aggregator totals for the next one
        rt.ctx.aggregates = dict(step.aggregates)
        controller.observe(rt, step)
        has_flags = rt.responding_count() > 0
        rt.swap_flags()
        pending = rt.pending_messages() > 0
        prev_mode = mode
        if superstep == 1 and rt.program.all_active:
            stop = False
        elif step.updated_vertices == 0 and superstep > 1:
            stop = True
        else:
            stop = not has_flags and not pending
        verdict = rt.program.converged(rt.ctx)
        if verdict is not None:
            stop = verdict
        if stop:
            break
        if (
            config.checkpoint_interval is not None
            and superstep % config.checkpoint_interval == 0
            and superstep < rt.max_supersteps  # last superstep: pointless
        ):
            checkpoint = take_checkpoint(rt, superstep, mode, controller)
            write_seconds = checkpoint.write_seconds(
                config.cluster.disk.seq_write_mbps
            )
            if ckpt_write_fails:
                # the write cost was paid, but no snapshot survives —
                # recovery will have to reach further back.
                metrics.checkpoint_failures.append(
                    (superstep, checkpoint.nbytes, write_seconds)
                )
                if tracer.enabled:
                    tracer.instant(
                        "checkpoint_failed", cat=CAT_ENGINE,
                        superstep=superstep,
                        args={"nbytes": checkpoint.nbytes},
                    )
            else:
                ckpt_log.add(checkpoint)
                metrics.checkpoints.append(
                    (superstep, checkpoint.nbytes, write_seconds)
                )
                if store is not None:
                    # metrics are bundled so resume_from can continue
                    # the original run's records seamlessly.  Modeled
                    # cost is charged above regardless — durability is
                    # operational, never part of the experiment.
                    store.save(checkpoint, metrics)
            tracer.advance(write_seconds)


def _build_traffic_timeline(rt: Runtime, metrics: JobMetrics) -> None:
    """Cumulative (modeled seconds, net bytes this superstep) samples."""
    clock = rt.load_metrics.elapsed_seconds
    timeline = []
    for step in metrics.supersteps:
        clock += step.elapsed_seconds
        timeline.append((clock, step.net_bytes))
    metrics.traffic_timeline = timeline

"""Job runtime: workers, shared vertex state, and storage setup.

The simulator executes a distributed job deterministically in one
process.  Each :class:`Worker` owns a slice of the vertices, a simulated
disk, and the storage structures its execution mode needs; vertex values
and responding flags live in runtime-wide arrays for speed, with
ownership discipline enforced by the mode implementations (a worker only
reads/writes state of vertices it owns, except through the explicitly
charged access paths).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

from repro.core.api import ProgramContext, VertexProgram
from repro.core.config import JobConfig
from repro.core.flags import FlagBitset
from repro.core.graph import Graph, Partition, hash_partition, range_partition
from repro.core.metrics import LoadMetrics
from repro.cluster.network import SimulatedNetwork
from repro.obs.tracer import resolve_tracer
from repro.storage.adjacency import AdjacencyStore
from repro.storage.disk import SimulatedDisk
from repro.storage.messages import OnlineMessageStore, SpillingMessageStore
from repro.storage.veblock import BlockLayout, VEBlockStore
from repro.storage.vertex_cache import LRUVertexCache

__all__ = ["Worker", "Runtime", "choose_vblocks_per_worker"]


def choose_vblocks_per_worker(
    graph: Graph,
    partition: Partition,
    worker: int,
    buffer_messages: Optional[int],
    combinable: bool,
    in_degrees: Optional[Sequence[int]] = None,
) -> int:
    """Pick ``V_i`` from the memory budget (Eqs. 5 and 6, Section 4.3).

    For combinable programs, ``V_i = (2 n_i + n_i T) / B_i`` (receive
    buffer is pre-pulled twice, send buffer has ``T`` sub-buffers); for
    concatenation-only programs the receive buffer must hold one value
    per in-edge, so ``V_i = Σ in-degree / B_i``.  The paper sets ``V`` as
    small as possible subject to the buffers fitting, hence the ceiling.

    ``in_degrees`` may be supplied to avoid re-scanning the edges for
    every worker (only consulted on the Eq. 6 path).
    """
    n_i = partition.size_of(worker)
    if buffer_messages is None or n_i == 0:
        return 1
    t = partition.num_workers
    if combinable:
        needed = 2 * n_i + n_i * t
    else:
        if in_degrees is None:
            in_degrees = graph.in_degrees()
        needed = sum(
            in_degrees[v] for v in partition.vertices_of(worker)
        )
    return max(1, math.ceil(needed / buffer_messages))


@dataclass
class Worker:
    """One computational node of the simulated cluster."""

    worker_id: int
    vertices: List[int]
    disk: SimulatedDisk
    adjacency: Optional[AdjacencyStore] = None
    veblock: Optional[VEBlockStore] = None
    message_store: Any = None  # Spilling- or OnlineMessageStore
    vertex_cache: Optional[LRUVertexCache] = None

    def memory_bytes(self) -> int:
        """Buffered message bytes + metadata (the Fig. 14d/23 metric)."""
        total = 0
        if self.message_store is not None:
            total += self.message_store.memory_bytes
        if self.veblock is not None:
            total += self.veblock.metadata_memory_bytes()
        if self.vertex_cache is not None:
            total += self.vertex_cache.memory_bytes
        return total


class Runtime:
    """All mutable state of one running job."""

    def __init__(
        self, graph: Graph, program: VertexProgram, config: JobConfig
    ) -> None:
        self.graph = graph
        self.program = program
        self.config = config
        if config.partition == "range":
            self.partition = range_partition(
                graph.num_vertices, config.num_workers
            )
        else:
            self.partition = hash_partition(
                graph.num_vertices, config.num_workers
            )
        self.max_supersteps = (
            config.max_supersteps
            if config.max_supersteps is not None
            else (program.default_max_supersteps or 10_000)
        )
        self.ctx = ProgramContext(
            num_vertices=graph.num_vertices,
            superstep=0,
            out_degree=graph.out_degree,
            max_supersteps=self.max_supersteps,
        )
        #: observability handle (``repro.obs``); the shared no-op null
        #: tracer unless ``config.trace`` asks for one, so every
        #: instrumentation site can guard on ``tracer.enabled`` without
        #: a None check.
        self.tracer = resolve_tracer(config.trace)
        self.network = SimulatedNetwork(
            num_workers=config.num_workers,
            profile=config.cluster.disk,
            sending_threshold_bytes=config.sending_threshold_bytes,
            request_bytes=config.sizes.pull_request,
        )
        self.network.tracer = self.tracer
        self.workers: List[Worker] = []
        self.layout: Optional[BlockLayout] = None
        self.reverse: Optional[List[List]] = None
        # shared vertex state
        self.values: List[Any] = []
        self.resp_prev: FlagBitset = FlagBitset(0)
        self.resp_next: FlagBitset = FlagBitset(0)
        #: vertex id -> owning worker, precomputed so the message-routing
        #: hot path pays a C-level list index instead of a method call.
        self.owner_of: List[int] = [
            self.partition.owner(v) for v in range(graph.num_vertices)
        ]
        self.load_metrics = LoadMetrics()
        self._in_degree_cache: Optional[List[int]] = None
        #: reusable executor containers (inbox / staging buffers), keyed
        #: by purpose; the mode executors clear them in place each
        #: superstep instead of reallocating — see modes/common.py.
        self.scratch: dict = {}
        # per-vertex push fan-out is O(E) to build; defer it to first
        # access (see the push_fanout property) so jobs that never take
        # the batched uniform-push path — b-pull jobs, vectorized jobs —
        # skip the cost entirely.
        self._push_fanout: Optional[List[tuple]] = None
        self._push_fanout_built = False
        #: executor actually driving supersteps.  ``"vectorized"`` jobs
        #: that cannot run dense (no NumPy, program without dense rules,
        #: scalar-only feature in play, ...) transparently downgrade to
        #: ``"batched"``; the reason is kept for observability but is
        #: deliberately NOT part of JobMetrics — the byte-identity oracle
        #: compares executors on the same payload.
        self.active_executor: str = config.executor
        self.executor_fallback: Optional[str] = None
        if config.executor == "vectorized":
            # imported lazily: modes.common imports this module, and
            # modes.vectorized imports modes.common.
            from repro.core.modes.vectorized import fallback_reason

            reason = fallback_reason(program, config)
            if reason is not None:
                self.active_executor = "batched"
                self.executor_fallback = reason
        #: processes actually driving supersteps.  ``parallelism > 1``
        #: downgrades to 1 (in-process) for job shapes without a
        #: parallel path; like the executor downgrade, the reason lands
        #: in ``executor_fallback``.  Values above ``num_workers`` are
        #: clamped silently (extra processes would idle).
        self.active_parallelism: int = 1
        self._pool: Any = None
        if config.parallelism > 1:
            from repro.core.modes.parallel import parallel_fallback_reason

            reason = parallel_fallback_reason(self)
            if reason is None:
                self.active_parallelism = min(
                    config.parallelism, config.num_workers
                )
            elif self.executor_fallback is None:
                self.executor_fallback = reason
            else:
                self.executor_fallback = (
                    f"{self.executor_fallback}; {reason}"
                )
        self._init_state()

    def shutdown_pool(self) -> None:
        """Tear down the parallel worker pool, if one is running.

        Called by the engine on job completion and before every
        recovery rewind (the pool's processes hold pre-failure state;
        the next parallel superstep re-forks from the restored
        coordinator).  No-op when no pool is active.
        """
        if self._pool is not None:
            pool, self._pool = self._pool, None
            pool.close()

    @property
    def push_fanout(self) -> Optional[List[tuple]]:
        """For uniform-message programs on push-capable modes: vertex id
        -> ((dst_worker, (dst, dst, ...)), ...), the out-neighbors
        grouped by owning worker.  The batched executor stages one
        (dsts, payload) group per (vertex, worker) pair instead of one
        (dst, payload) tuple per edge.  None when not applicable; built
        lazily on first access and cached for the job's lifetime (the
        graph is immutable once a Runtime holds it).
        """
        if not self._push_fanout_built:
            self._push_fanout_built = True
            if self.program.uniform_messages and self.needs_adjacency():
                owner_of = self.owner_of
                graph = self.graph
                fanout: List[tuple] = []
                for v in range(graph.num_vertices):
                    groups: dict = {}
                    for dst, _w in graph.out_edges(v):
                        wid = owner_of[dst]
                        if wid in groups:
                            groups[wid].append(dst)
                        else:
                            groups[wid] = [dst]
                    fanout.append(
                        tuple(
                            (wid, tuple(dsts))
                            for wid, dsts in sorted(groups.items())
                        )
                    )
                self._push_fanout = fanout
        return self._push_fanout

    # ------------------------------------------------------------------
    def _init_state(self) -> None:
        n = self.graph.num_vertices
        self.ctx.superstep = 0
        self.values = [
            self.program.initial_value(v, self.ctx) for v in range(n)
        ]
        self.resp_prev = FlagBitset(n)
        self.resp_next = FlagBitset(n)

    def reset_for_restart(self) -> None:
        """Recompute-from-scratch recovery: drop all iteration state."""
        self._init_state()
        # executor scratch (inbox buffers, cached dense state) refers to
        # the discarded value/store objects — drop it wholesale.
        self.scratch.clear()
        # discard traffic samples of the thrown-away supersteps so the
        # Fig. 18 timeline only reflects work that counts.
        self.network.clear_timeline()
        for worker in self.workers:
            if worker.message_store is not None:
                worker.message_store.load()  # drain without using the result
            if worker.vertex_cache is not None:
                self._reset_cache(worker)

    def _reset_cache(self, worker: Worker) -> None:
        worker.vertex_cache = LRUVertexCache(
            capacity=worker.vertex_cache.capacity,
            sizes=self.config.sizes,
            disk=worker.disk,
        )

    # ------------------------------------------------------------------
    # setup / loading
    # ------------------------------------------------------------------
    def needs_adjacency(self) -> bool:
        return self.config.mode in ("push", "pushm", "hybrid")

    def needs_veblock(self) -> bool:
        return self.config.mode in ("bpull", "hybrid")

    def setup(self) -> None:
        """Build workers and their storage; account the loading phase."""
        cfg = self.config
        graph = self.graph
        # planned faults name workers; the schedule cannot know the
        # cluster size, so the bound is checked here.
        from repro.cluster.fault import as_schedule

        for plan in as_schedule(cfg.fault).faults:
            if plan.worker >= cfg.num_workers:
                raise ValueError(
                    f"fault plan names worker {plan.worker}, but the "
                    f"job runs {cfg.num_workers} workers"
                )
        if self.needs_veblock():
            counts = []
            in_degrees = (
                None if self.program.combinable else self._in_degrees()
            )
            for w in range(cfg.num_workers):
                if cfg.vblocks_per_worker is not None:
                    counts.append(cfg.vblocks_per_worker)
                else:
                    counts.append(
                        choose_vblocks_per_worker(
                            graph,
                            self.partition,
                            w,
                            cfg.message_buffer_per_worker,
                            self.program.combinable,
                            in_degrees=in_degrees,
                        )
                    )
            self.layout = BlockLayout.build(self.partition, counts)
        if cfg.mode == "pull":
            self.reverse = graph.reverse_adjacency()

        fresh_messages = self._make_message_store
        for w in range(cfg.num_workers):
            local = list(self.partition.vertices_of(w))
            disk = SimulatedDisk(enabled=cfg.graph_on_disk)
            worker = Worker(worker_id=w, vertices=local, disk=disk)
            if self.needs_adjacency():
                worker.adjacency = AdjacencyStore(
                    graph, local, disk, cfg.sizes,
                    block_vertices=cfg.adjacency_block_vertices,
                )
            if self.needs_veblock():
                worker.veblock = VEBlockStore(
                    graph,
                    self.partition,
                    w,
                    self.layout,
                    disk,
                    cfg.sizes,
                    fragment_clustering=cfg.fragment_clustering,
                )
            if cfg.mode in ("push", "pushm", "hybrid"):
                worker.message_store = fresh_messages(worker)
            if cfg.mode == "pull":
                capacity = (
                    cfg.lru_capacity()
                    if cfg.vertices_on_disk_for_pull
                    else None
                )
                worker.vertex_cache = LRUVertexCache(
                    capacity=capacity, sizes=cfg.sizes, disk=disk
                )
            self.workers.append(worker)
        self._account_loading()

    def _make_message_store(self, worker: Worker):
        cfg = self.config
        if cfg.mode == "pushm":
            if not self.program.combinable:
                raise ValueError(
                    "pushm (MOCgraph online computing) requires a "
                    "combinable program; "
                    f"{self.program.name} is not"
                )
            hot = self._hot_vertices(worker)
            return OnlineMessageStore(
                hot, cfg.sizes, worker.disk, self.program.combine
            )
        if self.active_executor == "vectorized":
            # receiver_combine falls back to batched before we get here,
            # so the array store never needs a combine function.
            from repro.core.modes.vectorized import VectorizedMessageStore

            return VectorizedMessageStore(
                capacity=cfg.message_buffer_per_worker,
                sizes=cfg.sizes,
                disk=worker.disk,
            )
        combine = (
            self.program.combine
            if (cfg.receiver_combine and self.program.combinable)
            else None
        )
        return SpillingMessageStore(
            capacity=cfg.message_buffer_per_worker,
            sizes=cfg.sizes,
            disk=worker.disk,
            combine=combine,
        )

    def _hot_vertices(self, worker: Worker) -> List[int]:
        """MOCgraph keeps the highest in-degree vertices memory-resident."""
        budget = self.config.message_buffer_per_worker
        if budget is None:
            return worker.vertices
        in_degs = self._in_degrees()
        ranked = sorted(worker.vertices, key=lambda v: (-in_degs[v], v))
        return ranked[:budget]

    def _in_degrees(self) -> List[int]:
        if self._in_degree_cache is None:
            self._in_degree_cache = self.graph.in_degrees()
        return self._in_degree_cache

    # ------------------------------------------------------------------
    def _account_loading(self) -> None:
        """Charge the graph-loading phase (Fig. 16's cost model).

        Building the adjacency list writes the records once.  Building
        VE-BLOCK additionally external-sorts the edges into
        (block, svertex) order: write temp runs, read them back, write
        the final Eblocks with fragment auxiliary data — more bytes and
        more CPU than adj, as Fig. 16 shows.
        """
        cfg = self.config
        cpu_total = 0.0
        worker_seconds = []
        structures = []
        if self.needs_adjacency():
            structures.append("adj")
        if self.needs_veblock():
            structures.append("veblock")
        for worker in self.workers:
            cpu = 0.0
            before = worker.disk.snapshot()
            if worker.adjacency is not None:
                worker.adjacency.charge_load()
                cpu += (
                    worker.adjacency.num_local_edges
                    * cfg.cluster.cpu.load_parse_per_edge
                )
            if worker.veblock is not None:
                num_edges = sum(
                    self.graph.out_degree(v) for v in worker.vertices
                )
                edge_bytes = cfg.sizes.edges(num_edges)
                worker.disk.write(edge_bytes, sequential=True)  # temp runs
                worker.disk.read(edge_bytes, sequential=True)   # sort read
                worker.veblock.charge_load()                     # final layout
                cpu += (
                    2.0
                    * num_edges
                    * cfg.cluster.cpu.load_parse_per_edge
                )
            cpu /= cfg.cluster.cpu.speed
            delta = worker.disk.snapshot()
            delta.random_read -= before.random_read
            delta.random_write -= before.random_write
            delta.seq_read -= before.seq_read
            delta.seq_write -= before.seq_write
            self.load_metrics.io.add(delta)
            cpu_total += cpu
            worker_seconds.append(cfg.cluster.disk.io_seconds(delta) + cpu)
        self.load_metrics.structures = "+".join(structures) or "none"
        self.load_metrics.cpu_seconds = cpu_total
        self.load_metrics.elapsed_seconds = (
            max(worker_seconds) if worker_seconds else 0.0
        )

    # ------------------------------------------------------------------
    # helpers used by the modes
    # ------------------------------------------------------------------
    def owner(self, vid: int) -> int:
        return self.owner_of[vid]

    def swap_flags(self) -> None:
        """Roll the flag double-buffer, allocation-free.

        The spare buffer (last superstep's ``resp_prev``) is cleared in
        place and becomes the new ``resp_next``; no O(n) list is built.
        """
        self.resp_prev, self.resp_next = self.resp_next, self.resp_prev
        self.resp_next.clear()

    def responding_count(self) -> int:
        """Flags set this superstep — O(1) via the maintained count."""
        return self.resp_next.true_count

    def pending_messages(self) -> int:
        return sum(
            w.message_store.pending_count
            for w in self.workers
            if w.message_store is not None
        )

    def total_fragments(self) -> int:
        return sum(
            w.veblock.total_fragments()
            for w in self.workers
            if w.veblock is not None
        )

"""Vertex-centric programming API with decoupled compute functions.

The paper's key enabler for seamless push/b-pull switching (Section 5.2)
is decoupling Pregel's ``compute()`` into:

* ``load()``   — fetch messages received in the previous superstep (push),
* ``update()`` — consume messages and produce the new vertex value,
* ``pushRes()``/``pullRes()`` — generate outgoing messages from the new /
  stored vertex value.

For that decoupling to be *correct* the outgoing message for an edge must
be a pure function of the source vertex's value and the edge — never of
transient compute() state.  This module encodes exactly that contract:

* :meth:`VertexProgram.update` consumes messages and returns the new value
  plus the *responding* decision (``setResFlag`` in the paper);
* :meth:`VertexProgram.message_value` produces the message for one
  out-edge from ``(value, edge)`` alone.

Every execution mode (push, pushM, pull, b-pull, hybrid) drives the same
program object, which is what makes the cross-mode equivalence tests
meaningful.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

__all__ = [
    "ProgramContext",
    "UpdateResult",
    "VectorizedRules",
    "VertexProgram",
]


@dataclass
class ProgramContext:
    """Read-only facts a program may use during a superstep.

    ``out_degree`` is a callable because PageRank divides its rank by the
    out-degree when emitting messages; the engine backs it with the graph.
    """

    num_vertices: int
    superstep: int
    out_degree: Callable[[int], int]
    max_supersteps: int
    #: cluster-wide aggregator totals from the *previous* superstep
    #: (Pregel-style aggregators; empty before superstep 2).
    aggregates: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class UpdateResult:
    """Outcome of one vertex update.

    Attributes
    ----------
    value:
        The vertex's new value (may equal the old one).
    respond:
        Whether the vertex should send messages to its out-neighbors —
        the paper's ``setResFlag``.  Push-style modes send immediately;
        pull-style modes record the flag and respond on demand in the
        next superstep.
    """

    value: Any
    respond: bool


class VectorizedRules:
    """Optional dense NumPy kernels backing ``executor="vectorized"``.

    A program that wants the vectorized executor returns an instance
    from :meth:`VertexProgram.vectorized`.  The contract is strict: each
    kernel must reproduce the scalar methods **bit-for-bit** — the
    engine's equivalence oracle compares full metric dumps and final
    values byte-identically, so "close enough" floating point is a bug.
    In practice that means:

    * express the update as the *same* sequence of elementwise IEEE-754
      operations the scalar ``update()`` performs (e.g. PageRank's
      ``base + damping * acc``, never an algebraically equal variant);
    * message payloads must have the same dtype as the vertex values
      (the executor's accumulators inherit it);
    * ``combine`` declares the dense reduction: ``"sum"`` folds with
      ``np.bincount``/``np.add.at`` (sequential left folds, matching
      Python's ``sum``), ``"min"`` with ``np.minimum.at``.

    All kernels receive the NumPy module as ``xp`` so this class — and
    the programs defining rules — import cleanly on NumPy-less hosts,
    where the engine transparently falls back to the batched executor.
    """

    #: dense reduction matching :meth:`VertexProgram.combine`:
    #: ``"sum"`` or ``"min"``.
    combine: str = "sum"

    def initially_active_mask(self, ctx: ProgramContext, xp) -> Optional[Any]:
        """Bool mask of vertices active in superstep 1, or None.

        None (the default) makes the executor derive the mask from
        :meth:`VertexProgram.initially_active`.
        """
        return None

    def update_dense(
        self, ctx: ProgramContext, targets, values, acc, has_message, xp
    ):
        """Dense :meth:`VertexProgram.update` over the *targets* vertices.

        ``values`` holds their pre-update values, ``acc`` the combined
        incoming messages (the combiner's identity where ``has_message``
        is False).  Returns ``(new_values, respond)`` where ``respond``
        is a bool array aligned with *targets* or a plain bool scalar.
        """
        raise NotImplementedError

    def aggregate_dense(
        self, ctx: ProgramContext, targets, old_values, new_values, xp
    ) -> Optional[Dict[str, Any]]:
        """Dense :meth:`VertexProgram.aggregate`: key -> contribution array."""
        return None

    def source_payloads(self, ctx: ProgramContext, values, out_degrees, xp):
        """Uniform-message payload per source vertex.

        ``values``/``out_degrees`` are aligned arrays over an arbitrary
        subset of vertices chosen by the executor (the full graph for
        b-pull gathers, each worker's responding vertices for push
        staging — which must see that worker's *post-update* values).
        The kernel must therefore be elementwise.  Returns
        ``(payloads, valid)`` aligned with the input; ``valid`` may be
        None (every payload valid) or a bool mask marking sources whose
        :meth:`VertexProgram.message_value` would return non-None.
        Only consulted when ``uniform_messages`` is set.
        """
        raise NotImplementedError

    def edge_payloads(self, ctx: ProgramContext, values, sources, weights, xp):
        """Per-edge payloads for non-uniform programs.

        ``sources``/``weights`` are aligned per edge.  Returns
        ``(payloads, valid)`` with the same None-semantics as
        :meth:`source_payloads`, aligned with the input edges.
        """
        raise NotImplementedError


class VertexProgram(ABC):
    """Base class for the iterative graph algorithms.

    Subclasses set:

    * ``name`` — report label;
    * ``combinable`` — True iff messages are commutative + associative,
      enabling the Combiner (PageRank, SSSP, WCC); LPA and SA are not;
    * ``all_active`` — True for Always-Active-Style algorithms (PageRank,
      LPA) where every vertex updates every superstep even without
      incoming messages;
    * ``default_max_supersteps`` — fixed round count for non-converging
      algorithms (0 means run until no vertex responds).
    """

    name: str = "program"
    combinable: bool = False
    all_active: bool = False
    default_max_supersteps: int = 0
    #: True iff ``message_value`` ignores the destination and edge weight
    #: — the payload depends only on ``(vid, value, ctx)`` — so one call
    #: per source vertex produces the message for *all* its out-edges
    #: (PageRank's rank share, WCC/LPA's label broadcast).  Executors use
    #: this to hoist the call out of the per-edge loop; the modeled
    #: message counts and bytes are unchanged.
    uniform_messages: bool = False
    #: True iff the algorithm converges to the same fixed point under
    #: asynchronous message delivery (monotonic updates such as SSSP's
    #: min-distance or WCC's min-label).  Required by
    #: ``JobConfig(asynchronous=True)``.
    async_safe: bool = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @abstractmethod
    def initial_value(self, vid: int, ctx: ProgramContext) -> Any:
        """Value of vertex *vid* before superstep 1."""

    def initially_active(self, vid: int, ctx: ProgramContext) -> bool:
        """Whether *vid* runs update() in superstep 1 (default: all do)."""
        return True

    @abstractmethod
    def update(
        self,
        vid: int,
        value: Any,
        messages: Sequence[Any],
        ctx: ProgramContext,
    ) -> UpdateResult:
        """Consume *messages*, return the new value and responding flag."""

    @abstractmethod
    def message_value(
        self,
        vid: int,
        value: Any,
        dst: int,
        weight: float,
        ctx: ProgramContext,
    ) -> Optional[Any]:
        """Message for edge ``(vid, dst, weight)``; None suppresses it.

        Must depend only on the arguments — this is the pullRes contract.
        """

    def vectorized(self) -> Optional[VectorizedRules]:
        """Dense NumPy kernels for ``executor="vectorized"``, or None.

        Returning None (the default) routes the job to the batched
        executor — the correct answer for programs whose update cannot
        be expressed through a sum/min dense combine (e.g. LPA's
        majority vote).
        """
        return None

    # ------------------------------------------------------------------
    # combining
    # ------------------------------------------------------------------
    def converged(self, ctx: ProgramContext) -> Optional[bool]:
        """Master-side convergence override, consulted after a superstep.

        ``ctx.aggregates`` holds the superstep's totals.  Return True to
        stop the job, False to keep iterating even though no vertex
        responded (Multi-Phase-Style algorithms go quiet for one
        superstep between phases), or None (default) to use the engine's
        standard halting rule.
        """
        return None

    # ------------------------------------------------------------------
    # aggregators (Pregel-style, master-side per-superstep reduction)
    # ------------------------------------------------------------------
    def aggregate(
        self, vid: int, old_value: Any, new_value: Any, ctx: ProgramContext
    ) -> Optional[Dict[str, float]]:
        """Per-vertex aggregator contributions after update().

        Returned values are summed cluster-wide by the master; the totals
        of superstep *t* are visible to every vertex in superstep *t+1*
        via ``ctx.aggregates``.  Return None (the default) to contribute
        nothing.  Receiving both the pre- and post-update values makes
        convergence aggregators (max/mean delta) one-liners.
        """
        return None

    def combine(self, a: Any, b: Any) -> Any:
        """Combine two message values (only called when ``combinable``)."""
        raise NotImplementedError(
            f"{self.name} declared combinable but does not implement combine()"
        )

    def combine_all(self, values: List[Any]) -> Any:
        """Fold a non-empty list of message values with :meth:`combine`."""
        acc = values[0]
        for val in values[1:]:
            acc = self.combine(acc, val)
        return acc

"""Shared superstep executor for the push family, b-pull, and hybrid.

Section 5.2's decoupling means every superstep is an (input, output)
pair:

* input ``"stored"`` — messages were pushed here last superstep; drain
  the receiver-side store (``load()``);
* input ``"pull"``   — run the block-centric Pull-Request/Pull-Respond
  protocol (Algorithms 1 and 2) against the responding flags set last
  superstep;
* output ``"push"``  — call ``pushRes()`` immediately after ``update()``
  and route messages to receiver stores for the next superstep;
* output ``"flag"``  — only record the responding flags (``setResFlag``);
  messages will be pulled on demand next superstep.

Pure push = (stored, push); pure b-pull = (pull, flag); the two switch
supersteps of Fig. 6 are (pull, push) and (stored, flag).  Because
``message_value`` is a pure function of (source value, edge), all four
combinations produce identical vertex trajectories — the property the
cross-mode equivalence tests assert.

This module is the *batched* executor: modeled costs are identical to
:mod:`repro.core.modes.reference` (the per-vertex-accounting oracle),
but the host-side work per superstep is much cheaper:

* ``IO(V_t)`` is charged with one :meth:`SimulatedDisk.charge` call per
  worker (``n`` updated records at once) instead of a read/write pair
  per vertex;
* outgoing messages are staged directly into per-destination-worker
  buckets (one C-level ``owner_of`` index per message), so routing never
  regroups a flat list;
* Pull-Respond uses :meth:`VEBlockStore.collect_for_request`, which
  charges each request's fragment reads in bulk;
* programs with ``uniform_messages`` evaluate ``message_value`` once per
  source vertex instead of once per out-edge;
* the inbox/staging containers live on ``Runtime.scratch`` and are
  cleared in place instead of reallocated every superstep.

The equivalence guard in ``tests/core/test_hotpath_equivalence.py``
asserts ``JobMetrics.to_dict()`` of both executors is byte-identical.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.core.metrics import SuperstepMetrics
from repro.core.runtime import Runtime
from repro.obs.instrument import derive_phases, emit_superstep_events
from repro.storage.disk import IOCounters

__all__ = [
    "run_superstep",
    "bpull_gather",
    "finalize_superstep_metrics",
    "phase2_for_worker",
    "collect_triple",
]

#: shared immutable empty inbox for vertices without messages.
_NO_MESSAGES: Tuple[Any, ...] = ()


def _staged_flows(rt: Runtime) -> List[List[List[Tuple[int, Any]]]]:
    """Per-source, per-destination-worker staging buckets (reused)."""
    flows = rt.scratch.get("staged_flows")
    num_workers = len(rt.workers)
    if flows is None or len(flows) != num_workers:
        flows = [
            [[] for _ in range(num_workers)] for _ in range(num_workers)
        ]
        rt.scratch["staged_flows"] = flows
    else:
        for per_src in flows:
            for bucket in per_src:
                if bucket:
                    bucket.clear()
    return flows


def _pull_inbox(rt: Runtime) -> Dict[int, Dict[int, List[Any]]]:
    """Per-worker pull inboxes (outer and inner dicts reused)."""
    inbox = rt.scratch.get("pull_inbox")
    if inbox is None or len(inbox) != len(rt.workers):
        inbox = {w.worker_id: {} for w in rt.workers}
        rt.scratch["pull_inbox"] = inbox
    else:
        for per_worker in inbox.values():
            per_worker.clear()
    return inbox


def run_superstep(
    rt: Runtime,
    superstep: int,
    in_mech: str,
    out_mech: str,
    mode_label: str,
) -> SuperstepMetrics:
    """Execute one BSP superstep and return its metrics."""
    if in_mech not in ("stored", "pull"):
        raise ValueError(f"unknown input mechanism {in_mech!r}")
    if out_mech not in ("push", "flag"):
        raise ValueError(f"unknown output mechanism {out_mech!r}")

    cfg = rt.config
    sizes = cfg.sizes
    program = rt.program
    ctx = rt.ctx
    ctx.superstep = superstep
    rt.network.begin_superstep(superstep)
    metrics = SuperstepMetrics(superstep=superstep, mode=mode_label)
    # Asynchronous iteration: each worker routes its messages as soon as
    # it finishes updating, so workers processed later in the same
    # superstep already see them — faster convergence for monotonic
    # (async_safe) algorithms.
    async_mode = (
        cfg.asynchronous and in_mech == "stored" and out_mech == "push"
    )
    if cfg.asynchronous and not program.async_safe:
        raise ValueError(
            f"{program.name} is not async_safe; asynchronous iteration "
            "needs monotonic updates"
        )

    disk_before = {w.worker_id: w.disk.snapshot() for w in rt.workers}
    spilled_before = {
        w.worker_id: (
            w.message_store.total_spilled if w.message_store else 0
        )
        for w in rt.workers
    }

    # per-worker CPU inputs
    updates_of: Dict[int, int] = {w.worker_id: 0 for w in rt.workers}
    msgs_gen_of: Dict[int, int] = {w.worker_id: 0 for w in rt.workers}
    edges_of: Dict[int, int] = {w.worker_id: 0 for w in rt.workers}
    spill_read_of: Dict[int, int] = {w.worker_id: 0 for w in rt.workers}
    pull_memory_of: Dict[int, int] = {w.worker_id: 0 for w in rt.workers}

    # ------------------------------------------------------------------
    # Phase 0/1: obtain this superstep's messages.
    # ------------------------------------------------------------------
    pushing = out_mech == "push"
    if pushing:
        for worker in rt.workers:
            if worker.adjacency is not None:
                worker.adjacency.begin_superstep()

    inbox: Dict[int, Dict[int, List[Any]]] = {}
    if in_mech == "pull" and superstep > 1:
        inbox = bpull_gather(
            rt, metrics, msgs_gen_of, edges_of, pull_memory_of
        )
    elif in_mech == "stored" and not async_mode:
        for worker in rt.workers:
            if worker.message_store is None:
                raise RuntimeError(
                    f"mode {mode_label} needs a message store on "
                    f"worker {worker.worker_id}"
                )
            result = worker.message_store.load()
            inbox[worker.worker_id] = result.messages
            metrics.io_message_read += result.spilled_read
            spill_read_of[worker.worker_id] = result.spilled_count
    # in_mech == "pull" and superstep == 1: nothing to pull yet.

    # ------------------------------------------------------------------
    # Phase 2: update vertices; stage outgoing messages if pushing.
    # ------------------------------------------------------------------
    staged = _staged_flows(rt)
    uniform = program.uniform_messages
    # uniform programs stage (dsts, payload) fan-out groups instead of
    # one (dst, payload) pair per edge; see Runtime.push_fanout.
    fanout = rt.push_fanout if (uniform and pushing) else None
    aggregates = metrics.aggregates
    vertex_record = sizes.vertex_record

    for worker in rt.workers:
        wid = worker.worker_id
        if async_mode:
            result = worker.message_store.load()
            inbox[wid] = result.messages
            metrics.io_message_read += result.spilled_read
            spill_read_of[wid] = result.spilled_count
        msgs = inbox.get(wid) or {}
        flows = staged[wid]
        targets, n_respond, raw_staged, edges_scanned, edge_bytes = (
            phase2_for_worker(
                rt, worker, superstep, msgs, pushing, fanout, flows,
                aggregates=aggregates,
            )
        )
        rt.resp_next.add_to_count(n_respond)
        updates_of[wid] = len(targets)
        msgs_gen_of[wid] += raw_staged
        metrics.raw_messages += raw_staged
        edges_of[wid] += edges_scanned
        metrics.edges_scanned += edges_scanned
        metrics.io_edges_push += edge_bytes
        if targets:
            metrics.io_vertex += 2 * len(targets) * vertex_record
        if async_mode:
            _route_flows(rt, wid, flows, metrics, fanout is not None)

    # ------------------------------------------------------------------
    # Phase 3: route staged messages (push output only).
    # ------------------------------------------------------------------
    if pushing and not async_mode:
        for worker in rt.workers:
            _route_flows(rt, worker.worker_id, staged[worker.worker_id],
                         metrics, fanout is not None)

    # ------------------------------------------------------------------
    # Metrics assembly.
    # ------------------------------------------------------------------
    finalize_superstep_metrics(
        rt, metrics, in_mech, out_mech,
        disk_before, spilled_before,
        updates_of, msgs_gen_of, edges_of, spill_read_of, pull_memory_of,
    )
    return metrics


def phase2_for_worker(
    rt: Runtime,
    worker,
    superstep: int,
    msgs: Dict[int, List[Any]],
    pushing: bool,
    fanout,
    flows: List[List[Any]],
    aggregates: Dict[str, float] = None,
    agg_stream: List[Tuple[str, float]] = None,
):
    """Run ``update()`` (+``pushRes()`` staging) for one worker's targets.

    This is the per-worker half of Phase 2, shared verbatim between the
    sequential executor loop and the process-pool shards of
    :mod:`repro.core.modes.parallel`.  It mutates only worker-owned
    state — ``rt.values`` of owned vertices, the ``rt.resp_next``
    *bytes* (the count is the caller's), the worker's disk/adjacency,
    and the staged *flows* buckets.  Cross-worker folds stay with the
    caller: aggregator contributions either fold inline into
    *aggregates* (sequential) or append to *agg_stream* in emission
    order so the coordinator can replay the identical left fold
    (parallel shards).

    Returns ``(targets, n_respond, raw_staged, edges_scanned,
    edge_bytes)``.
    """
    program = rt.program
    ctx = rt.ctx
    values = rt.values
    resp_raw = rt.resp_next.data
    owner_of = rt.owner_of
    update = program.update
    aggregate = program.aggregate
    message_value = program.message_value
    sizes = rt.config.sizes
    vertex_record = sizes.vertex_record
    edge_record = sizes.edge

    if superstep == 1:
        # initially-active vertices, plus any that already received
        # messages (possible under asynchronous delivery).
        initial = {
            v
            for v in worker.vertices
            if program.initially_active(v, ctx)
        }
        targets: List[int] = sorted(initial | set(msgs.keys()))
    elif program.all_active:
        targets = worker.vertices
    else:
        targets = sorted(msgs.keys())

    flow_append = [bucket.append for bucket in flows]
    msgs_get = msgs.get
    adjacency = worker.adjacency
    read_out_edges = adjacency.read_out_edges if adjacency else None
    n_respond = 0
    raw_staged = 0
    edges_scanned = 0
    edge_bytes = 0
    for vid in targets:
        old_value = values[vid]
        result = update(
            vid, old_value, msgs_get(vid, _NO_MESSAGES), ctx
        )
        new_value = result.value
        values[vid] = new_value
        respond = result.respond
        if respond:
            resp_raw[vid] = 1
            n_respond += 1
        contribution = aggregate(vid, old_value, new_value, ctx)
        if contribution:
            if agg_stream is None:
                for agg_key, agg_val in contribution.items():
                    aggregates[agg_key] = (
                        aggregates.get(agg_key, 0.0) + agg_val
                    )
            else:
                agg_stream.extend(contribution.items())
        if pushing and respond:
            if read_out_edges is None:
                raise RuntimeError(
                    "push output requires an adjacency store"
                )
            edges, charged = read_out_edges(vid)
            if charged:
                edges_scanned += charged // edge_record
                edge_bytes += charged
            if fanout is not None:
                if edges:
                    payload = message_value(
                        vid, new_value, edges[0][0], edges[0][1], ctx
                    )
                    if payload is not None:
                        for dst_wid, dsts in fanout[vid]:
                            flow_append[dst_wid]((dsts, payload))
                        raw_staged += len(edges)
            else:
                for dst, weight in edges:
                    payload = message_value(
                        vid, new_value, dst, weight, ctx
                    )
                    if payload is None:
                        continue
                    flow_append[owner_of[dst]]((dst, payload))
                    raw_staged += 1
    # IO(V_t): every updated vertex record is read and rewritten —
    # one aggregated charge per worker per superstep.
    if targets:
        record_bytes = len(targets) * vertex_record
        worker.disk.charge(
            seq_read=record_bytes, seq_write=record_bytes
        )
    return targets, n_respond, raw_staged, edges_scanned, edge_bytes


def finalize_superstep_metrics(
    rt: Runtime,
    metrics: SuperstepMetrics,
    in_mech: str,
    out_mech: str,
    disk_before: Dict[int, Any],
    spilled_before: Dict[int, int],
    updates_of: Dict[int, int],
    msgs_gen_of: Dict[int, int],
    edges_of: Dict[int, int],
    spill_read_of: Dict[int, int],
    pull_memory_of: Dict[int, int],
) -> None:
    """Fold per-worker counters into the superstep's cost metrics.

    Shared by the batched and vectorized executors so the modeled-cost
    assembly — per-worker disk deltas, spill accounting, CPU/IO/network
    seconds, memory peaks, and trace emission — cannot drift between
    them.  Mutates *metrics* in place.
    """
    cfg = rt.config
    sizes = cfg.sizes
    metrics.updated_vertices = sum(updates_of.values())
    metrics.responding_vertices = rt.responding_count()
    net = rt.network.end_superstep()
    metrics.net_bytes = net.total_bytes
    metrics.net_transfer_units += net.transfer_units
    metrics.pull_requests = net.requests
    metrics.net_packages = net.packages
    metrics.blocking_seconds = max(
        net.worker_seconds.values(), default=0.0
    )

    cpu_model = cfg.cluster.cpu
    tracer = rt.tracer
    disk_deltas: Dict[int, IOCounters] = {}
    elapsed = 0.0
    for worker in rt.workers:
        wid = worker.worker_id
        delta = worker.disk.delta_since(disk_before[wid])
        metrics.io.add(delta)
        if tracer.enabled:
            disk_deltas[wid] = delta
        spilled_now = (
            worker.message_store.total_spilled if worker.message_store else 0
        )
        spilled_here = spilled_now - spilled_before[wid]
        metrics.spilled_messages += spilled_here
        metrics.io_message_spill += sizes.messages(spilled_here)
        cpu = cpu_model.seconds(
            updates=updates_of[wid],
            messages=msgs_gen_of[wid],
            edges=edges_of[wid],
            spilled=spill_read_of[wid],
        )
        metrics.cpu_seconds += cpu
        io_seconds = cfg.cluster.disk.io_seconds(delta)
        net_seconds = net.worker_seconds.get(wid, 0.0)
        total = cpu + io_seconds + net_seconds
        metrics.worker_seconds[wid] = total
        elapsed = max(elapsed, total)
        metrics.memory_bytes += worker.memory_bytes() + pull_memory_of[wid]
    metrics.elapsed_seconds = elapsed
    if tracer.enabled:
        emit_superstep_events(
            rt, metrics,
            derive_phases(cfg, metrics, in_mech, out_mech),
            disk_deltas,
        )


def _route_flows(
    rt: Runtime,
    src_wid: int,
    flows: List[List[Any]],
    metrics: SuperstepMetrics,
    fanout_form: bool,
) -> None:
    """Ship one worker's staged per-destination buckets.

    Same flow order, network charges, combine decisions, and deposit
    order as the reference ``_route_pushed`` (flows are visited in
    ascending ``(src, dst)`` order there too); buckets are cleared in
    place for reuse by the next superstep.  With ``fanout_form`` the
    buckets hold ``(dsts, payload)`` groups (uniform-message programs)
    instead of ``(dst, payload)`` pairs.

    Plain push ships every message individually (Section 5.1: Giraph and
    GPS do not concatenate/combine at the sender — poor destination
    locality makes it not cost-effective).  ``sender_combine`` enables
    the pushM+com variant of Appendix E, which combines within each
    threshold-sized send buffer.
    """
    cfg = rt.config
    sizes = cfg.sizes
    program = rt.program
    combining = cfg.sender_combine and program.combinable
    transfer = rt.network.transfer
    for dst_wid, messages in enumerate(flows):
        if not messages:
            continue
        store = rt.workers[dst_wid].message_store
        if fanout_form:
            count = 0
            for dsts, _payload in messages:
                count += len(dsts)
            if combining:
                flat = [
                    (dst, payload)
                    for dsts, payload in messages
                    for dst in dsts
                ]
                shipped = _combine_within_threshold(
                    flat, program.combine, sizes.message,
                    cfg.sending_threshold_bytes,
                )
                transfer(
                    src_wid, dst_wid, sizes.messages(len(shipped)),
                    units=len(shipped),
                )
                if src_wid != dst_wid:
                    metrics.mco += count - len(shipped)
                store.deposit_many(shipped)
            else:
                transfer(
                    src_wid, dst_wid, sizes.messages(count), units=count
                )
                store.deposit_fanout(messages, count)
        else:
            if combining:
                shipped = _combine_within_threshold(
                    messages, program.combine, sizes.message,
                    cfg.sending_threshold_bytes,
                )
            else:
                shipped = messages
            transfer(
                src_wid, dst_wid, sizes.messages(len(shipped)),
                units=len(shipped),
            )
            if src_wid != dst_wid:
                metrics.mco += len(messages) - len(shipped)
            store.deposit_many(shipped)
        messages.clear()


def _combine_within_threshold(
    messages: List[Tuple[int, Any]],
    combine,
    message_bytes: int,
    threshold_bytes: int,
) -> List[Tuple[int, Any]]:
    """Combine messages sharing a destination inside one send buffer.

    Once the buffer reaches the sending threshold it is flushed, so
    messages for the same vertex that straddle a flush cannot be
    combined — exactly the limitation Appendix E demonstrates.
    """
    capacity = max(1, threshold_bytes // message_bytes)
    shipped: List[Tuple[int, Any]] = []
    buffer: Dict[int, Any] = {}
    for dst, payload in messages:
        if dst in buffer:
            buffer[dst] = combine(buffer[dst], payload)
            continue
        buffer[dst] = payload
        if len(buffer) >= capacity:
            shipped.extend(sorted(buffer.items()))
            buffer = {}
    shipped.extend(sorted(buffer.items()))
    return shipped


def bpull_gather(
    rt: Runtime,
    metrics: SuperstepMetrics,
    msgs_gen_of: Dict[int, int],
    edges_of: Dict[int, int],
    pull_memory_of: Dict[int, int],
) -> Dict[int, Dict[int, List[Any]]]:
    """Run Pull-Request (Alg. 1) + Pull-Respond (Alg. 2) for one superstep.

    Every worker requests messages for each of its Vblocks from every
    worker; responders use the Vblock metadata to skip irrelevant blocks,
    scan matching Eblocks sequentially, and generate messages only for
    responding fragments.  Messages are concatenated (or fully combined,
    when the program allows) per sub-buffer before crossing the network,
    and consumed immediately at the receiver — no message ever touches
    disk, which is the whole point of b-pull.

    Returns ``inbox[worker_id][vertex] -> [message values]`` where values
    have already been combined per sender when the program is combinable.
    """
    cfg = rt.config
    sizes = cfg.sizes
    program = rt.program
    ctx = rt.ctx
    combinable = program.combinable and cfg.bpull_combine
    flags = rt.resp_prev
    values = rt.values
    message_value = program.message_value
    combine = program.combine if combinable else None
    uniform = program.uniform_messages
    inbox = _pull_inbox(rt)
    # Uniform programs: the payload depends only on the source vertex and
    # its (fixed-within-gather) value, so memoize one payload per
    # responding vertex for the whole gather instead of recomputing it
    # for every fragment the vertex appears in.
    payload_of: Dict[int, Any] = {}

    for worker in rt.workers:
        if worker.veblock is None:
            raise RuntimeError("b-pull requires VE-BLOCK storage")
        worker.veblock.begin_superstep_stats()
        worker.veblock.refresh_res(flags)

    send_buffer_peak: Dict[int, int] = {w.worker_id: 0 for w in rt.workers}
    recv_block_peak: Dict[int, int] = {w.worker_id: 0 for w in rt.workers}

    for requester in rt.workers:
        rx = requester.worker_id
        local_inbox = inbox[rx]
        for block_id in requester.veblock.local_blocks:
            block_received = 0
            for responder in rt.workers:
                ry = responder.worker_id
                rt.network.send_request(rx, ry)
                got = collect_triple(
                    responder, block_id, flags, values, ctx,
                    message_value, combine if combinable else None,
                    uniform, payload_of, sizes,
                )
                if got is None:
                    continue
                buffer, nvalues, ngroups, nbytes, units = got
                metrics.raw_messages += nvalues
                msgs_gen_of[ry] += nvalues
                if nbytes > send_buffer_peak[ry]:
                    send_buffer_peak[ry] = nbytes
                rt.network.transfer(ry, rx, nbytes, units=units)
                if ry != rx:
                    metrics.mco += nvalues - ngroups
                block_received += nbytes
                if combinable:
                    for dst, combined in sorted(buffer.items()):
                        if dst in local_inbox:
                            local_inbox[dst].append(combined)
                        else:
                            local_inbox[dst] = [combined]
                else:
                    for dst, payloads in sorted(buffer.items()):
                        if dst in local_inbox:
                            local_inbox[dst].extend(payloads)
                        else:
                            local_inbox[dst] = list(payloads)
            if block_received > recv_block_peak[rx]:
                recv_block_peak[rx] = block_received
    # scan statistics -> metrics
    for worker in rt.workers:
        edges_scanned, aux_bytes, edge_bytes, vrr_bytes = (
            worker.veblock.scan_stats
        )
        metrics.edges_scanned += edges_scanned
        edges_of[worker.worker_id] += edges_scanned
        metrics.io_fragments += aux_bytes
        metrics.io_edges_bpull += edge_bytes
        metrics.io_vrr += vrr_bytes
        # Memory: the receive buffer holds one block's messages (two with
        # pre-pulling) plus the largest send sub-buffer (Section 4.3).
        factor = 2 if cfg.prepull else 1
        pull_memory_of[worker.worker_id] += (
            factor * recv_block_peak[worker.worker_id]
            + send_buffer_peak[worker.worker_id]
        )
    return inbox


#: unique sentinel for the pull-payload memo (None is a legal payload).
_MISSING = object()


def collect_triple(
    responder,
    block_id: int,
    flags,
    values: List[Any],
    ctx,
    message_value,
    combine,
    uniform: bool,
    payload_of: Dict[int, Any],
    sizes,
):
    """Pull-Respond for one (requested Vblock, responder) pair.

    The per-triple half of :func:`bpull_gather`, shared verbatim with
    the process-pool shards of :mod:`repro.core.modes.parallel`: scans
    the responder's matching Eblocks (charging its disk), builds the
    per-destination send buffer, and sizes the transfer.  *combine* is
    the program's combiner or None for concatenation-only programs;
    *payload_of* memoizes uniform payloads per source vertex across the
    whole gather (each source belongs to exactly one responder, so
    per-responder shards see the same memo hits the sequential loop
    does).

    Returns None when the responder contributes nothing, else
    ``(buffer, nvalues, ngroups, nbytes, units)`` where *buffer* maps
    ``dst -> combined value`` (combining) or ``dst -> [payloads]``
    (concatenation).
    """
    fragments = responder.veblock.collect_for_request(block_id, flags)
    if not fragments:
        return None
    nvalues = 0
    if combine is not None:
        # Combine incrementally while filling the buffer — the same
        # left-to-right fold ``combine_all`` would apply to the
        # per-destination list, without materialising the list.
        cbuffer: Dict[int, Any] = {}
        if uniform:
            for svertex, edges in fragments:
                payload = payload_of.get(svertex, _MISSING)
                if payload is _MISSING:
                    payload = message_value(
                        svertex, values[svertex],
                        edges[0][0], edges[0][1], ctx,
                    )
                    payload_of[svertex] = payload
                if payload is None:
                    continue
                for dst, _weight in edges:
                    if dst in cbuffer:
                        cbuffer[dst] = combine(cbuffer[dst], payload)
                    else:
                        cbuffer[dst] = payload
                nvalues += len(edges)
        else:
            for svertex, edges in fragments:
                svalue = values[svertex]
                for dst, weight in edges:
                    payload = message_value(
                        svertex, svalue, dst, weight, ctx
                    )
                    if payload is None:
                        continue
                    if dst in cbuffer:
                        cbuffer[dst] = combine(cbuffer[dst], payload)
                    else:
                        cbuffer[dst] = payload
                    nvalues += 1
        if not cbuffer:
            return None
        ngroups = len(cbuffer)
        return cbuffer, nvalues, ngroups, sizes.combined(ngroups), ngroups
    buffer: Dict[int, List[Any]] = {}
    if uniform:
        for svertex, edges in fragments:
            payload = payload_of.get(svertex, _MISSING)
            if payload is _MISSING:
                payload = message_value(
                    svertex, values[svertex],
                    edges[0][0], edges[0][1], ctx,
                )
                payload_of[svertex] = payload
            if payload is None:
                continue
            for dst, _weight in edges:
                if dst in buffer:
                    buffer[dst].append(payload)
                else:
                    buffer[dst] = [payload]
            nvalues += len(edges)
    else:
        for svertex, edges in fragments:
            svalue = values[svertex]
            for dst, weight in edges:
                payload = message_value(
                    svertex, svalue, dst, weight, ctx
                )
                if payload is None:
                    continue
                if dst in buffer:
                    buffer[dst].append(payload)
                else:
                    buffer[dst] = [payload]
                nvalues += 1
    if not buffer:
        return None
    ngroups = len(buffer)
    nbytes = sizes.concatenated(nvalues, ngroups)
    return buffer, nvalues, ngroups, nbytes, nvalues

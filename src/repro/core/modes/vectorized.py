"""NumPy-vectorized superstep executor (the third executor tier).

Same modeled costs as :mod:`repro.core.modes.common` (batched) and
:mod:`repro.core.modes.reference` (oracle), computed from dense kernels
over a CSR view of the graph instead of per-vertex Python loops:

* frontier selection reads the :class:`~repro.core.flags.FlagBitset`
  bytes as a bool array;
* push fan-out slices the CSR row ranges of responding vertices and
  routes by one ``owner_of`` take;
* ``sum``/``min`` message combining folds with ``np.bincount`` /
  ``np.minimum.at`` — **sequential** C folds that reproduce Python's
  left-fold ``sum``/``min`` bit-for-bit (``np.sum``'s pairwise
  summation would not, and must never be used for value-affecting
  totals here);
* the program's update/message rules run as dense array expressions via
  the optional :class:`~repro.core.api.VectorizedRules` interface.

The equivalence contract is strict: ``JobMetrics.to_dict()`` must be
byte-identical to the other executors for every (input, output)
mechanism combination, including hybrid's switch supersteps.  Where the
batched executor's float accumulation order is observable (aggregator
folds, per-pair b-pull combines followed by a per-vertex fold over pair
results, the network's per-flow timing accumulation), this module
reproduces the exact same fold structure rather than a mathematically
equal one.

NumPy is optional: :func:`fallback_reason` reports why a job cannot run
vectorized (no NumPy, non-combinable program, no dense rules, …) and the
:class:`~repro.core.runtime.Runtime` transparently downgrades to the
batched executor.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

try:  # NumPy is an optional dependency of this tier only.
    import numpy as _numpy
except ImportError:  # pragma: no cover - exercised via np=None in tests
    _numpy = None

#: module-global NumPy handle; tests monkeypatch this to None to drive
#: the NumPy-less fallback path on hosts that do have NumPy.
np = _numpy

from repro.core.api import VertexProgram
from repro.core.metrics import SuperstepMetrics
from repro.core.modes.common import finalize_superstep_metrics
from repro.storage.messages import LoadResult

__all__ = [
    "fallback_reason",
    "run_superstep_vectorized",
    "VectorizedMessageStore",
    "compute_worker_update",
    "apply_update_shard",
    "triple_contribution",
]

#: dense combines the executor knows how to fold.
_DENSE_COMBINES = ("sum", "min")


def fallback_reason(program, config) -> Optional[str]:
    """Why this job cannot run vectorized, or None when it can.

    The decision is made once per job (job shape and program class do
    not change mid-run); a non-None reason downgrades the runtime's
    ``active_executor`` to ``"batched"``.
    """
    if np is None:
        return "NumPy is not installed"
    if config.mode not in ("push", "bpull", "hybrid"):
        return f"mode {config.mode!r} has no vectorized path"
    if config.asynchronous:
        return "asynchronous iteration is scalar-only"
    if config.sender_combine:
        return "sender_combine (pushM+com) is scalar-only"
    if config.receiver_combine:
        return "receiver_combine is scalar-only"
    if not program.combinable:
        return f"{program.name} is not combinable"
    if config.mode in ("bpull", "hybrid") and not config.bpull_combine:
        return "b-pull without combining is scalar-only"
    rules = program.vectorized()
    if rules is None:
        return f"{program.name} provides no vectorized rules"
    if rules.combine not in _DENSE_COMBINES:
        return f"unsupported dense combine {rules.combine!r}"
    return None


class VectorizedMessageStore:
    """Array-chunk receiver store with SpillingMessageStore's cost model.

    Holds deposited messages as ``(dst_array, payload_array)`` chunks in
    arrival order.  Charges are identical to a combine-less
    :class:`~repro.storage.messages.SpillingMessageStore` fed the same
    message stream: the mem/spill split is purely positional (the first
    ``capacity`` messages fit, the rest spill as random writes), and
    ``load`` reads the spilled bytes back sequentially.  The vectorized
    executor only runs without receiver combining, so no combine
    parameter exists here.
    """

    def __init__(self, capacity: Optional[int], sizes, disk) -> None:
        self._capacity = capacity
        self._sizes = sizes
        self._disk = disk
        self._chunks: List[Tuple[Any, Any]] = []
        self._total = 0
        self._spill_count = 0
        self.total_deposited = 0
        self.total_spilled = 0

    # ------------------------------------------------------------------
    def deposit_arrays(self, dsts, payloads) -> None:
        """Receive one aligned (dst, payload) array pair."""
        count = len(dsts)
        if count == 0:
            return
        self.total_deposited += count
        capacity = self._capacity
        if capacity is not None:
            over_before = self._total - capacity
            if over_before < 0:
                over_before = 0
            over_after = self._total + count - capacity
            if over_after < 0:
                over_after = 0
            spilled = over_after - over_before
            if spilled:
                self._spill_count += spilled
                self.total_spilled += spilled
                self._disk.charge(
                    random_write=spilled * self._sizes.message
                )
        self._total += count
        self._chunks.append((dsts, payloads))

    def load_arrays(self) -> Tuple[Any, Any, int, int]:
        """Drain to ``(dsts, payloads, spilled_read, spilled_count)``.

        The concatenated arrays preserve deposit order, which is the
        per-destination message order the scalar store's ``load()``
        produces (its mem/spill split is a single positional cutoff, so
        the mem-then-spill merge per vertex equals stream order).
        """
        spilled_count = self._spill_count
        spilled_read = self._sizes.messages(spilled_count)
        if spilled_read:
            self._disk.read(spilled_read, sequential=True)
        chunks = self._chunks
        self._chunks = []
        self._total = 0
        self._spill_count = 0
        if not chunks:
            return None, None, spilled_read, spilled_count
        if len(chunks) == 1:
            dsts, payloads = chunks[0]
        else:
            dsts = np.concatenate([c[0] for c in chunks])
            payloads = np.concatenate([c[1] for c in chunks])
        return dsts, payloads, spilled_read, spilled_count

    def load(self) -> LoadResult:
        """Scalar-compatible drain (restart/recovery paths only)."""
        dsts, payloads, spilled_read, spilled_count = self.load_arrays()
        messages: Dict[int, List[Any]] = {}
        if dsts is not None:
            for dst, value in zip(dsts.tolist(), payloads.tolist()):
                if dst in messages:
                    messages[dst].append(value)
                else:
                    messages[dst] = [value]
        return LoadResult(messages, spilled_read, spilled_count)

    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        return self._total

    @property
    def memory_bytes(self) -> int:
        in_mem = self._total
        if self._capacity is not None and in_mem > self._capacity:
            in_mem = self._capacity
        return self._sizes.messages(in_mem)

    @property
    def spilled_pending(self) -> int:
        return self._spill_count


# ----------------------------------------------------------------------
# cached per-job dense state
# ----------------------------------------------------------------------
class _WorkerVec:
    """Per-worker dense views: local ids and (for push) CSR slices."""

    __slots__ = (
        "local", "indptr", "e_dst", "e_w", "e_src", "e_owner", "deg",
        "block_bytes", "block_edges",
    )

    def __init__(self, local) -> None:
        self.local = local
        self.indptr = None
        self.e_dst = None
        self.e_w = None
        self.e_src = None
        self.e_owner = None
        self.deg = None
        self.block_bytes = None
        self.block_edges = None


class _TripleBundle:
    """All Eblocks one responder scans for one requested Vblock.

    Per-Eblock quantities are concatenated across the responder's
    matching source blocks *in scan order* (src_block ascending,
    fragments in svertex order, edges in adjacency order), so one boolean
    mask per array replaces the per-Eblock Python loop, and the
    concatenated edge stream is exactly the stream the scalar gather
    folds per (requester, Vblock, responder) triple.
    """

    __slots__ = (
        "p_src_block", "p_disk", "p_nedge", "p_aux", "p_ebytes",
        "f_sv", "f_src_block",
        "e_sv", "e_pos", "e_w", "e_src_block",
    )


class _PullState:
    """Dense VE-BLOCK mirror: per-responder Eblock arrays keyed by the
    requested destination block, plus block-id/position lookups.

    Built from the CSR view rather than by walking the VEBlockStore's
    fragment lists: the (src_block, dst_block, svertex, adjacency) scan
    order the store materializes is recovered with one stable sort of
    the per-edge (src_block, dst_block) key over the block-ordered edge
    stream — the pre-sort stream is svertex-major/adjacency-minor, which
    a stable sort preserves within each Eblock, and fragment/Eblock
    boundaries fall out of run-length encoding the sorted keys.
    """

    def __init__(self, rt) -> None:
        layout = rt.layout
        sizes = rt.config.sizes
        csr = rt.graph.csr()
        n = rt.graph.num_vertices
        num_blocks = layout.num_blocks
        self.block_vids = [
            np.asarray(layout.block_vertices[b], dtype=np.int64)
            for b in range(num_blocks)
        ]
        block_pos = np.zeros(n, dtype=np.int64)
        for vids in self.block_vids:
            block_pos[vids] = np.arange(len(vids), dtype=np.int64)
        block_of = np.asarray(layout.block_of_vertex, dtype=np.int64)
        #: worker id -> {dst_block: _TripleBundle}
        self.by_dst: List[Dict[int, _TripleBundle]] = []
        for worker in rt.workers:
            by_dst: Dict[int, _TripleBundle] = {}
            self.by_dst.append(by_dst)
            local_blocks = list(worker.veblock.local_blocks)
            if not local_blocks:
                continue
            scan_vids = np.concatenate(
                [self.block_vids[b] for b in local_blocks]
            )
            _indptr, e_dst, e_w = csr.gather_rows(scan_vids)
            if len(e_dst) == 0:
                continue
            e_sv = np.repeat(scan_vids, csr.out_degrees[scan_vids])
            # one key per edge; stable-sorting it groups edges into
            # Eblocks in (src_block, dst_block) order while keeping the
            # (svertex, adjacency) order inside each group.
            key = block_of[e_sv] * num_blocks + block_of[e_dst]
            order = np.argsort(key, kind="stable")
            key = key[order]
            e_sv = e_sv[order]
            e_dst = e_dst[order]
            e_w = e_w[order]
            # Eblock runs over the edge stream
            is_eb_start = np.empty(len(key), dtype=bool)
            is_eb_start[0] = True
            np.not_equal(key[1:], key[:-1], out=is_eb_start[1:])
            eb_start = np.flatnonzero(is_eb_start)
            eb_key = key[eb_start]
            eb_nedge = np.diff(
                np.append(eb_start, len(key))
            )
            if rt.config.fragment_clustering:
                # fragment runs: consecutive same (Eblock, svertex)
                is_fr_start = is_eb_start.copy()
                is_fr_start[1:] |= e_sv[1:] != e_sv[:-1]
                fr_start = np.flatnonzero(is_fr_start)
                fr_sv = e_sv[fr_start]
                fr_key = key[fr_start]
            else:
                # clustering ablation: every edge is its own fragment
                fr_sv = e_sv
                fr_key = key
            # fragments per Eblock (fr_key is sorted, eb_key unique)
            eb_nfrag = np.diff(
                np.searchsorted(
                    fr_key, np.append(eb_key, np.iinfo(np.int64).max)
                )
            )
            eb_dst_block = eb_key % num_blocks
            eb_src_block = eb_key // num_blocks
            e_dst_block = key % num_blocks
            fr_dst_block = fr_key % num_blocks
            e_pos = block_pos[e_dst]
            e_src_block = key // num_blocks
            fr_src_block = fr_key // num_blocks
            for dst_block in np.unique(eb_dst_block).tolist():
                bundle = _TripleBundle.__new__(_TripleBundle)
                eb_sel = eb_dst_block == dst_block
                bundle.p_src_block = eb_src_block[eb_sel]
                bundle.p_nedge = eb_nedge[eb_sel]
                bundle.p_aux = eb_nfrag[eb_sel] * sizes.fragment_aux
                bundle.p_ebytes = bundle.p_nedge * sizes.edge
                bundle.p_disk = bundle.p_aux + bundle.p_ebytes
                fr_sel = fr_dst_block == dst_block
                bundle.f_sv = fr_sv[fr_sel]
                bundle.f_src_block = fr_src_block[fr_sel]
                e_sel = e_dst_block == dst_block
                bundle.e_sv = e_sv[e_sel]
                bundle.e_pos = e_pos[e_sel]
                bundle.e_w = e_w[e_sel]
                bundle.e_src_block = e_src_block[e_sel]
                by_dst[int(dst_block)] = bundle


class _VecState:
    """All per-job dense state, cached in ``rt.scratch['vectorized']``.

    Recovery paths invalidate the cache (``reset_for_restart`` clears
    the scratch dict, ``restore_checkpoint`` pops this key) because they
    rebind ``rt.values`` and replace the message stores.
    """

    def __init__(self, rt) -> None:
        graph = rt.graph
        program = rt.program
        cfg = rt.config
        sizes = cfg.sizes
        self.rules = program.vectorized()
        csr = graph.csr()
        self.out_degrees = csr.out_degrees
        self.values = np.asarray(rt.values)
        combine = self.rules.combine
        dtype = self.values.dtype
        if combine == "sum":
            # bincount's identity; matches Python sum(()) == 0.
            self.identity: Any = 0.0
            self.acc_dtype = np.float64
        else:
            self.identity = (
                np.inf
                if np.issubdtype(dtype, np.floating)
                else np.iinfo(dtype).max
            )
            self.acc_dtype = dtype
        self.owner = np.asarray(rt.owner_of, dtype=np.int64)
        self.bv = max(1, cfg.adjacency_block_vertices)
        mask = self.rules.initially_active_mask(rt.ctx, np)
        if mask is None:
            if (
                type(program).initially_active
                is VertexProgram.initially_active
            ):
                mask = np.ones(graph.num_vertices, dtype=bool)
            else:
                mask = np.fromiter(
                    (
                        program.initially_active(v, rt.ctx)
                        for v in range(graph.num_vertices)
                    ),
                    dtype=np.bool_, count=graph.num_vertices,
                )
        self.initial_mask = np.asarray(mask, dtype=bool)
        need_push = rt.needs_adjacency()
        self.workers: List[_WorkerVec] = []
        for worker in rt.workers:
            span = rt.partition.vertices_of(worker.worker_id)
            local = np.arange(
                span.start, span.stop, span.step, dtype=np.int64
            )
            wvec = _WorkerVec(local)
            if need_push:
                if span.step == 1:
                    indptr, e_dst, e_w = csr.row_span(
                        span.start, span.stop
                    )
                else:
                    indptr, e_dst, e_w = csr.gather_rows(local)
                deg = csr.out_degrees[local]
                wvec.indptr = indptr
                wvec.e_dst = e_dst
                wvec.e_w = e_w
                wvec.deg = deg
                wvec.e_src = np.repeat(local, deg)
                wvec.e_owner = self.owner[e_dst]
                n_local = len(local)
                if n_local:
                    starts = np.arange(0, n_local, self.bv)
                    wvec.block_bytes = np.add.reduceat(
                        deg * sizes.edge, starts
                    )
                    wvec.block_edges = np.add.reduceat(deg, starts)
                else:
                    wvec.block_bytes = np.zeros(0, dtype=np.int64)
                    wvec.block_edges = np.zeros(0, dtype=np.int64)
            self.workers.append(wvec)
        self.pull: Optional[_PullState] = None

    def ensure_pull(self, rt) -> _PullState:
        if self.pull is None:
            self.pull = _PullState(rt)
        return self.pull


def _row_gather(indptr, rows, counts):
    """Flat edge indices of *rows* (row-major, adjacency order)."""
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    starts = np.repeat(indptr[rows], counts)
    prefix = np.cumsum(counts) - counts
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        prefix, counts
    )
    return starts + offsets


def _fold(dsts, payloads, size, combine, identity, dtype):
    """Sequential dense fold of (dst, payload) pairs into *size* bins.

    ``bincount``/``minimum.at`` process the input left to right, so for
    each destination the fold order equals the input stream order —
    the property the bit-for-bit contract rests on.
    """
    if combine == "sum":
        return np.bincount(dsts, weights=payloads, minlength=size)
    acc = np.full(size, identity, dtype=dtype)
    np.minimum.at(acc, dsts, payloads)
    return acc


# ----------------------------------------------------------------------
# per-worker halves (shared with the parallel runtime)
# ----------------------------------------------------------------------
def compute_worker_update(
    rt,
    state: "_VecState",
    worker,
    superstep: int,
    received_local,
    acc_local,
    pushing: bool,
    resp_view,
) -> Dict[str, Any]:
    """Phase 2 for one worker: dense update + push staging.

    Touches only *worker*-owned state — its slice of ``state.values``,
    its disk, its vertices' bytes of *resp_view* — which is what lets
    :mod:`repro.core.modes.parallel` run one call per process.  The
    inputs ``received_local``/``acc_local`` are the worker's slices of
    the global fold (``received[local]``/``acc_global[local]``; gathers
    of a gather are bitwise identical to gathering ``targets``
    directly).  The returned shard carries everything the caller must
    fold into shared metrics (:func:`apply_update_shard`) plus the
    staged per-destination message arrays.  Aggregator contributions
    are shipped as per-vertex streams, never child-local partial sums:
    the caller replays the sequential carry fold so the float grouping
    matches the scalar executors.
    """
    program = rt.program
    rules = state.rules
    ctx = rt.ctx
    sizes = rt.config.sizes
    values = state.values
    wid = worker.worker_id
    wvec = state.workers[wid]
    local = wvec.local
    num_workers = len(rt.workers)
    shard: Dict[str, Any] = {
        "num_targets": 0,
        "n_respond": 0,
        "contrib": None,
        "record_bytes": 0,
        "raw_staged": 0,
        "edges_scanned": 0,
        "edge_bytes": 0,
        "staged": [None] * num_workers,
    }
    if superstep == 1:
        mask = state.initial_mask[local]
        if received_local is not None:
            mask = mask | received_local
        tpos = np.flatnonzero(mask)
        targets = local[tpos]
    elif program.all_active:
        tpos = None  # the whole worker slice
        targets = local
    else:
        if received_local is None:
            return shard
        tpos = np.flatnonzero(received_local)
        targets = local[tpos]
    num_targets = len(targets)
    shard["num_targets"] = num_targets
    if num_targets == 0:
        return shard

    old_values = values[targets]
    if acc_local is not None:
        if tpos is None:
            acc = acc_local
            has_message = received_local
        else:
            acc = acc_local[tpos]
            has_message = received_local[tpos]
    else:
        acc = np.full(
            num_targets, state.identity, dtype=state.acc_dtype
        )
        has_message = np.zeros(num_targets, dtype=bool)
    new_values, respond = rules.update_dense(
        ctx, targets, old_values, acc, has_message, np
    )
    new_values = np.asarray(new_values, dtype=values.dtype)
    values[targets] = new_values

    contrib = rules.aggregate_dense(
        ctx, targets, old_values, new_values, np
    )
    if contrib:
        shard["contrib"] = {
            agg_key: np.asarray(agg_vals, dtype=np.float64)
            for agg_key, agg_vals in contrib.items()
        }

    if isinstance(respond, np.ndarray):
        rmask = respond.astype(bool, copy=False)
        resp_targets = targets[rmask]
        resp_pos = (
            tpos[rmask] if tpos is not None
            else np.flatnonzero(rmask)
        )
    elif respond:
        resp_targets = targets
        resp_pos = (
            tpos if tpos is not None
            else np.arange(num_targets, dtype=np.int64)
        )
    else:
        resp_targets = targets[:0]
        resp_pos = np.zeros(0, dtype=np.int64)
    num_respond = len(resp_targets)
    shard["n_respond"] = num_respond
    if num_respond:
        # 0 -> 1 flips only (each vertex is targeted once), reported
        # through add_to_count — the FlagBitset hot-path discipline.
        resp_view[resp_targets] = 1
        rt.resp_next.add_to_count(num_respond)

    # IO(V_t): one aggregated read+write charge per worker.
    record_bytes = num_targets * sizes.vertex_record
    shard["record_bytes"] = record_bytes
    worker.disk.charge(
        seq_read=record_bytes, seq_write=record_bytes
    )

    if not (pushing and num_respond):
        return shard

    # IO(E_t): whole adjacency blocks touched by responding vertices.
    blocks = np.unique(resp_pos // state.bv)
    edge_bytes = int(wvec.block_bytes[blocks].sum())
    shard["edges_scanned"] = int(wvec.block_edges[blocks].sum())
    shard["edge_bytes"] = edge_bytes
    worker.disk.charge(seq_read=edge_bytes)

    if program.uniform_messages:
        payloads, valid = rules.source_payloads(
            ctx, values[resp_targets], wvec.deg[resp_pos], np
        )
        stage_mask = wvec.deg[resp_pos] > 0
        if valid is not None:
            stage_mask = stage_mask & valid
        rows = resp_pos[stage_mask]
        if len(rows) == 0:
            return shard
        counts = wvec.deg[rows]
        flat = _row_gather(wvec.indptr, rows, counts)
        dsts = wvec.e_dst[flat]
        owners = wvec.e_owner[flat]
        edge_payloads = np.repeat(payloads[stage_mask], counts)
        raw_staged = int(counts.sum())
    else:
        counts = wvec.deg[resp_pos]
        flat = _row_gather(wvec.indptr, resp_pos, counts)
        sources = wvec.e_src[flat]
        dsts = wvec.e_dst[flat]
        owners = wvec.e_owner[flat]
        edge_payloads, valid = rules.edge_payloads(
            ctx, values, sources, wvec.e_w[flat], np
        )
        if valid is not None:
            dsts = dsts[valid]
            owners = owners[valid]
            edge_payloads = edge_payloads[valid]
        raw_staged = len(dsts)
        if raw_staged == 0:
            return shard
    shard["raw_staged"] = raw_staged
    per_src = shard["staged"]
    for dst_wid in range(num_workers):
        flow = owners == dst_wid
        if flow.any():
            per_src[dst_wid] = (dsts[flow], edge_payloads[flow])
    return shard


def apply_update_shard(
    metrics: SuperstepMetrics,
    wid: int,
    shard: Dict[str, Any],
    updates_of: Dict[int, int],
    msgs_gen_of: Dict[int, int],
    edges_of: Dict[int, int],
) -> None:
    """Fold one worker's update shard into shared metrics.

    Every field here is either an order-independent integer sum or the
    aggregator carry fold, which the caller invokes in worker-id order
    (sequential loop or the parallel merge phase alike).
    """
    updates_of[wid] = shard["num_targets"]
    contrib = shard["contrib"]
    if contrib:
        aggregates = metrics.aggregates
        for agg_key, arr in contrib.items():
            # Carry the running total through the same sequential
            # left fold the scalar loop performs — folding the
            # contributions first and adding once would change the
            # float grouping.
            carry = np.zeros(1, dtype=np.float64)
            carry[0] = aggregates.get(agg_key, 0.0)
            np.add.at(
                carry, np.zeros(len(arr), dtype=np.intp), arr
            )
            aggregates[agg_key] = float(carry[0])
    metrics.io_vertex += 2 * shard["record_bytes"]
    raw_staged = shard["raw_staged"]
    msgs_gen_of[wid] += raw_staged
    metrics.raw_messages += raw_staged
    edges_of[wid] += shard["edges_scanned"]
    metrics.edges_scanned += shard["edges_scanned"]
    metrics.io_edges_push += shard["edge_bytes"]


def triple_contribution(
    rt,
    state: "_VecState",
    responder,
    bundle: "_TripleBundle",
    block_size: int,
    block_res,
    resp_bool,
    payload_all,
    payload_valid,
    stats: List[int],
):
    """Scan one (requested Vblock, responder) triple.

    Charges the responder's disk and scan *stats* (order-independent
    sums) and returns ``None`` when nothing responds, else
    ``(nvalues, ngroups, nbytes, got, acc_block)`` — the block-local
    combine the caller transfers and appends to the inbox stream.  Pass
    ``payload_all=None`` for non-uniform programs.
    """
    sizes = rt.config.sizes
    rules = state.rules
    values = state.values
    scanned = block_res[bundle.p_src_block]
    if not scanned.any():
        return None
    seq_bytes = int(bundle.p_disk[scanned].sum())
    stats[0] += int(bundle.p_nedge[scanned].sum())
    stats[1] += int(bundle.p_aux[scanned].sum())
    stats[2] += int(bundle.p_ebytes[scanned].sum())
    if seq_bytes:
        responder.disk.charge(seq_read=seq_bytes)
    # responding fragments pay IO(V_rr) even when their
    # payload turns out invalid (scalar order: charge
    # precedes the payload check).
    frag_mask = (
        block_res[bundle.f_src_block]
        & resp_bool[bundle.f_sv]
    )
    frag_count = int(frag_mask.sum())
    if frag_count:
        vrr_bytes = frag_count * sizes.vertex_value
        responder.disk.charge(random_read=vrr_bytes)
        stats[3] += vrr_bytes
    edge_mask = (
        block_res[bundle.e_src_block]
        & resp_bool[bundle.e_sv]
    )
    if payload_all is not None:
        if payload_valid is not None:
            edge_mask &= payload_valid[bundle.e_sv]
        if not edge_mask.any():
            return None
        positions = bundle.e_pos[edge_mask]
        payloads = payload_all[bundle.e_sv[edge_mask]]
    else:
        if not edge_mask.any():
            return None
        payloads, valid = rules.edge_payloads(
            rt.ctx, values,
            bundle.e_sv[edge_mask],
            bundle.e_w[edge_mask], np,
        )
        positions = bundle.e_pos[edge_mask]
        if valid is not None:
            payloads = payloads[valid]
            positions = positions[valid]
        if len(payloads) == 0:
            return None
    nvalues = len(positions)
    got = np.zeros(block_size, dtype=bool)
    got[positions] = True
    acc_block = _fold(
        positions, payloads, block_size,
        rules.combine, state.identity, state.acc_dtype,
    )
    ngroups = int(got.sum())
    nbytes = sizes.combined(ngroups)
    return nvalues, ngroups, nbytes, got, acc_block


# ----------------------------------------------------------------------
# the superstep
# ----------------------------------------------------------------------
def run_superstep_vectorized(
    rt,
    superstep: int,
    in_mech: str,
    out_mech: str,
    mode_label: str,
) -> SuperstepMetrics:
    """Execute one BSP superstep with dense kernels."""
    if in_mech not in ("stored", "pull"):
        raise ValueError(f"unknown input mechanism {in_mech!r}")
    if out_mech not in ("push", "flag"):
        raise ValueError(f"unknown output mechanism {out_mech!r}")
    state = rt.scratch.get("vectorized")
    if state is None:
        state = _VecState(rt)
        rt.scratch["vectorized"] = state

    cfg = rt.config
    sizes = cfg.sizes
    program = rt.program
    ctx = rt.ctx
    ctx.superstep = superstep
    rt.network.begin_superstep(superstep)
    metrics = SuperstepMetrics(superstep=superstep, mode=mode_label)

    disk_before = {w.worker_id: w.disk.snapshot() for w in rt.workers}
    spilled_before = {
        w.worker_id: (
            w.message_store.total_spilled if w.message_store else 0
        )
        for w in rt.workers
    }
    updates_of = {w.worker_id: 0 for w in rt.workers}
    msgs_gen_of = {w.worker_id: 0 for w in rt.workers}
    edges_of = {w.worker_id: 0 for w in rt.workers}
    spill_read_of = {w.worker_id: 0 for w in rt.workers}
    pull_memory_of = {w.worker_id: 0 for w in rt.workers}

    pushing = out_mech == "push"
    num_workers = len(rt.workers)
    values = state.values
    num_vertices = len(values)
    rules = state.rules
    combine = rules.combine
    uniform = program.uniform_messages

    # ------------------------------------------------------------------
    # Phase 0/1: obtain this superstep's messages as a dense fold.
    # ------------------------------------------------------------------
    received = None
    acc_global = None
    if in_mech == "pull":
        if superstep > 1:
            received, acc_global = _bpull_gather_vectorized(
                rt, state, metrics,
                msgs_gen_of, edges_of, pull_memory_of,
            )
    else:
        chunk_dsts: List[Any] = []
        chunk_payloads: List[Any] = []
        for worker in rt.workers:
            if worker.message_store is None:
                raise RuntimeError(
                    f"mode {mode_label} needs a message store on "
                    f"worker {worker.worker_id}"
                )
            dsts, payloads, spilled_read, spilled_count = (
                worker.message_store.load_arrays()
            )
            metrics.io_message_read += spilled_read
            spill_read_of[worker.worker_id] = spilled_count
            if dsts is not None:
                chunk_dsts.append(dsts)
                chunk_payloads.append(payloads)
        if chunk_dsts:
            # Stores hold disjoint (locally owned) destination sets, so
            # concatenating the per-worker streams in worker order keeps
            # each vertex's message order equal to the scalar inbox's.
            if len(chunk_dsts) == 1:
                dsts, payloads = chunk_dsts[0], chunk_payloads[0]
            else:
                dsts = np.concatenate(chunk_dsts)
                payloads = np.concatenate(chunk_payloads)
            received = np.zeros(num_vertices, dtype=bool)
            received[dsts] = True
            acc_global = _fold(
                dsts, payloads, num_vertices,
                combine, state.identity, state.acc_dtype,
            )

    # ------------------------------------------------------------------
    # Phase 2: dense update; stage outgoing arrays if pushing.
    # ------------------------------------------------------------------
    resp_view = rt.resp_next.numpy_view(np)
    staged: List[List[Optional[Tuple[Any, Any]]]] = [
        [None] * num_workers for _ in range(num_workers)
    ]
    for worker in rt.workers:
        wid = worker.worker_id
        local = state.workers[wid].local
        shard = compute_worker_update(
            rt, state, worker, superstep,
            received[local] if received is not None else None,
            acc_global[local] if acc_global is not None else None,
            pushing, resp_view,
        )
        apply_update_shard(
            metrics, wid, shard, updates_of, msgs_gen_of, edges_of
        )
        staged[wid] = shard["staged"]

    # ------------------------------------------------------------------
    # Phase 3: route staged arrays (same flow order as batched).
    # ------------------------------------------------------------------
    if pushing:
        transfer = rt.network.transfer
        for worker in rt.workers:
            src_wid = worker.worker_id
            per_src = staged[src_wid]
            for dst_wid in range(num_workers):
                pair = per_src[dst_wid]
                if pair is None:
                    continue
                dsts, payloads = pair
                count = len(dsts)
                transfer(
                    src_wid, dst_wid, sizes.messages(count),
                    units=count,
                )
                rt.workers[dst_wid].message_store.deposit_arrays(
                    dsts, payloads
                )

    # ------------------------------------------------------------------
    # Metrics assembly (shared with the batched executor).
    # ------------------------------------------------------------------
    finalize_superstep_metrics(
        rt, metrics, in_mech, out_mech,
        disk_before, spilled_before,
        updates_of, msgs_gen_of, edges_of, spill_read_of,
        pull_memory_of,
    )
    # Keep the runtime's scalar value list in sync — checkpoints, the
    # final JobResult, and any scalar consumer read rt.values.
    rt.values[:] = values.tolist()
    return metrics


def _bpull_gather_vectorized(
    rt,
    state: _VecState,
    metrics: SuperstepMetrics,
    msgs_gen_of: Dict[int, int],
    edges_of: Dict[int, int],
    pull_memory_of: Dict[int, int],
):
    """Dense Pull-Request/Pull-Respond with batched-identical charges.

    The fold is two-level, mirroring the scalar inbox structure: each
    (requester, Vblock, responder) triple combines its edge stream
    block-locally (Eblock scan order), and the per-vertex fold over the
    pair results happens in triple-iteration order — a single flat fold
    over all edges would regroup the floats and break bit-identity.
    """
    cfg = rt.config
    sizes = cfg.sizes
    program = rt.program
    ctx = rt.ctx
    pull = state.ensure_pull(rt)
    values = state.values
    rules = state.rules
    combine = rules.combine
    uniform = program.uniform_messages
    num_vertices = len(values)

    resp = np.frombuffer(rt.resp_prev.data, dtype=np.uint8)
    resp_bool = resp.view(np.bool_)
    block_res = np.fromiter(
        (bool(resp[vids].any()) for vids in pull.block_vids),
        dtype=bool, count=len(pull.block_vids),
    )
    payload_all = payload_valid = None
    if uniform:
        # payloads depend only on the source's (pre-update) value, so
        # one dense evaluation replaces the scalar memoization.
        payload_all, payload_valid = rules.source_payloads(
            ctx, values, state.out_degrees, np
        )

    send_buffer_peak = {w.worker_id: 0 for w in rt.workers}
    recv_block_peak = {w.worker_id: 0 for w in rt.workers}
    # per-responder [edges, aux_bytes, edge_bytes, vrr_bytes]
    scan_stats = {w.worker_id: [0, 0, 0, 0] for w in rt.workers}
    stream_dsts: List[Any] = []
    stream_vals: List[Any] = []
    transfer = rt.network.transfer
    send_request = rt.network.send_request

    for requester in rt.workers:
        rx = requester.worker_id
        for block_id in requester.veblock.local_blocks:
            block_received = 0
            block_vids = pull.block_vids[block_id]
            block_size = len(block_vids)
            for responder in rt.workers:
                ry = responder.worker_id
                send_request(rx, ry)
                bundle = pull.by_dst[ry].get(block_id)
                if bundle is None:
                    continue
                result = triple_contribution(
                    rt, state, responder, bundle, block_size,
                    block_res, resp_bool, payload_all, payload_valid,
                    scan_stats[ry],
                )
                if result is None:
                    continue
                nvalues, ngroups, nbytes, got, acc_block = result
                metrics.raw_messages += nvalues
                msgs_gen_of[ry] += nvalues
                if nbytes > send_buffer_peak[ry]:
                    send_buffer_peak[ry] = nbytes
                transfer(ry, rx, nbytes, units=ngroups)
                if ry != rx:
                    metrics.mco += nvalues - ngroups
                block_received += nbytes
                # inbox append order: ascending vertex id within the
                # pair (the scalar sorted(cbuffer.items())), pairs in
                # triple-iteration order.
                stream_dsts.append(block_vids[got])
                stream_vals.append(acc_block[got])
            if block_received > recv_block_peak[rx]:
                recv_block_peak[rx] = block_received

    # scan statistics -> metrics (the batched tail, verbatim semantics)
    for worker in rt.workers:
        wid = worker.worker_id
        edges_scanned, aux_bytes, edge_bytes, vrr_bytes = (
            scan_stats[wid]
        )
        metrics.edges_scanned += edges_scanned
        edges_of[wid] += edges_scanned
        metrics.io_fragments += aux_bytes
        metrics.io_edges_bpull += edge_bytes
        metrics.io_vrr += vrr_bytes
        factor = 2 if cfg.prepull else 1
        pull_memory_of[wid] += (
            factor * recv_block_peak[wid] + send_buffer_peak[wid]
        )

    if not stream_dsts:
        return None, None
    if len(stream_dsts) == 1:
        dsts, vals = stream_dsts[0], stream_vals[0]
    else:
        dsts = np.concatenate(stream_dsts)
        vals = np.concatenate(stream_vals)
    received = np.zeros(num_vertices, dtype=bool)
    received[dsts] = True
    acc_global = _fold(
        dsts, vals, num_vertices,
        combine, state.identity, state.acc_dtype,
    )
    return received, acc_global

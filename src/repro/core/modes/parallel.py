"""Process-pool parallel runtime: true multi-core superstep execution.

``JobConfig(parallelism=N)`` executes each superstep's per-worker halves
— ``load()``/``update()``/``pushRes()``/``pullRes()`` — concurrently
across N OS processes while keeping ``JobMetrics.to_dict()``
**byte-identical** to the sequential executors (the same contract the
batched/reference/vectorized equivalence suite enforces).  The design is
coordinator-authoritative:

* a persistent pool of warm worker processes is forked once per job (no
  fork-per-superstep) and lives across supersteps; each child owns a
  contiguous shard of the simulated workers and runs only the extracted
  per-worker halves (:func:`~repro.core.modes.common.phase2_for_worker`,
  :func:`~repro.core.modes.common.collect_triple`,
  :func:`~repro.core.modes.vectorized.compute_worker_update`,
  :func:`~repro.core.modes.vectorized.triple_contribution`) for the
  workers it owns;
* read-heavy state crosses process boundaries exactly once: the graph is
  inherited copy-on-write by the fork, and for the vectorized tier the
  CSR arrays from ``Graph.csr()``, the dense value array, and the
  responding-flag bytes additionally live in
  ``multiprocessing.shared_memory`` segments, so no graph data is ever
  pickled per superstep (children write owned vertex values and flag
  bytes in place — the byte ranges are disjoint under the ownership
  discipline);
* everything order-sensitive stays with the coordinator: message stores
  (loads, deposits, spill charges), the simulated network (whose
  per-flow dict insertion order feeds per-worker seconds), aggregator
  folds, and metric assembly.  Children return per-destination-worker
  message/flag deltas plus their metric shard, and the coordinator folds
  them in **fixed worker-id order**, replaying transfers and deposits in
  the exact sequential order — which is what makes combining order,
  spill accounting, and float accumulation bit-for-bit identical.

Shapes without a parallel path (the reference executor, ``pull``/
``pushm`` modes, asynchronous iteration, platforms lacking ``fork`` or
``shared_memory``) fall back to in-process execution with the reason
recorded in ``Runtime.executor_fallback``; see
:func:`parallel_fallback_reason`.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import traceback
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.fault import WorkerFailure
from repro.core.flags import FlagBitset
from repro.core.metrics import SuperstepMetrics
from repro.core.modes import vectorized as _vec
from repro.core.modes.common import (
    _pull_inbox,
    _route_flows,
    collect_triple,
    finalize_superstep_metrics,
    phase2_for_worker,
)
from repro.obs.events import CAT_PARALLEL
from repro.obs.tracer import NULL_TRACER

__all__ = [
    "parallel_fallback_reason",
    "run_superstep_parallel",
    "kill_pool_worker",
]


def parallel_fallback_reason(rt) -> Optional[str]:
    """Why this job cannot run parallel, or None when it can.

    Decided once per job in ``Runtime.__init__`` (after the executor
    downgrade, so a vectorized request that fell back to batched is
    judged as batched).  A non-None reason keeps
    ``active_parallelism == 1``.
    """
    config = rt.config
    if config.executor == "reference":
        return (
            "parallelism requires the batched or vectorized executor"
        )
    if config.mode in ("pull", "pushm"):
        return f"mode {config.mode!r} has no parallel path"
    if config.asynchronous:
        return (
            "asynchronous iteration is inherently sequential "
            "(intra-superstep message visibility)"
        )
    if "fork" not in multiprocessing.get_all_start_methods():
        return "platform lacks the fork start method"
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - platform-dependent
        return "multiprocessing.shared_memory is unavailable"
    return None


# ----------------------------------------------------------------------
# child process side
# ----------------------------------------------------------------------
def _force_clear(flags: FlagBitset) -> None:
    """Zero a child's private flag bytes regardless of its stale count.

    Children flip flag bytes directly without maintaining the count
    (only the coordinator's count is ever read), so ``clear()``'s
    count-guard cannot be trusted on the child side.
    """
    flags.data[:] = bytes(len(flags.data))
    flags._count = 0


def _child_main(rt, shard: List[int], conn, shared: Dict[str, Any]) -> None:
    """Entry point of one pool process (reached via fork).

    The child inherits the coordinator's entire :class:`Runtime` at fork
    time and keeps it alive across supersteps; per-round messages carry
    only the state that changed (superstep number, aggregates, flag
    broadcast, inbox shards).  It mutates exclusively worker-owned state
    of its shard — owned vertex values, owned disks/adjacency/veblock
    copies — and ships deltas back; everything else it touches is
    read-only under the ownership discipline.
    """
    rt.tracer = NULL_TRACER  # children never observe
    workers = [rt.workers[w] for w in shard]
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):  # coordinator died: don't linger
            os._exit(0)
        if msg[0] == "stop":
            conn.close()
            os._exit(0)
        start = perf_counter()
        try:
            cmd = msg[0]
            if cmd == "phase2":
                reply = _child_phase2(rt, workers, *msg[1:])
            elif cmd == "gather":
                reply = _child_gather(rt, workers, *msg[1:])
            elif cmd == "phase2_vec":
                reply = _child_phase2_vec(
                    rt, workers, shared, *msg[1:]
                )
            elif cmd == "gather_vec":
                reply = _child_gather_vec(rt, workers, *msg[1:])
            else:
                raise RuntimeError(f"unknown pool command {cmd!r}")
            conn.send(("ok", reply, perf_counter() - start))
        except BaseException:
            try:
                conn.send(("err", traceback.format_exc(), 0.0))
            except (BrokenPipeError, OSError):
                os._exit(1)


def _sync_ctx(rt, superstep: int, aggregates: Dict[str, float]) -> None:
    """Bring the child's forked context up to the coordinator's."""
    rt.ctx.superstep = superstep
    rt.ctx.aggregates = aggregates


def _child_phase2(
    rt,
    workers,
    superstep: int,
    aggregates: Dict[str, float],
    pushing: bool,
    inbox_shards: Dict[int, Dict[int, List[Any]]],
) -> Dict[int, Dict[str, Any]]:
    """Batched-tier Phase 2 for one shard of workers."""
    _sync_ctx(rt, superstep, aggregates)
    _force_clear(rt.resp_next)
    resp_raw = rt.resp_next.data
    values = rt.values
    uniform = rt.program.uniform_messages
    fanout = rt.push_fanout if (uniform and pushing) else None
    num_workers = len(rt.workers)
    reply: Dict[int, Dict[str, Any]] = {}
    for worker in workers:
        wid = worker.worker_id
        if pushing and worker.adjacency is not None:
            worker.adjacency.begin_superstep()
        before = worker.disk.snapshot()
        flows: List[List[Any]] = [[] for _ in range(num_workers)]
        agg_stream: List[Tuple[str, float]] = []
        targets, n_respond, raw_staged, edges_scanned, edge_bytes = (
            phase2_for_worker(
                rt, worker, superstep,
                inbox_shards.get(wid) or {},
                pushing, fanout, flows, agg_stream=agg_stream,
            )
        )
        reply[wid] = {
            "num_targets": len(targets),
            "n_respond": n_respond,
            # targets that responded, in target order (0->1 flips only,
            # so the coordinator can replay the byte writes + count).
            "resp_vids": [v for v in targets if resp_raw[v]],
            # per-vertex value deltas; the child's owned values stay
            # current locally, the coordinator's copy is authoritative
            # for checkpoints and the final result.
            "values": [(v, values[v]) for v in targets],
            "agg_stream": agg_stream,
            "raw_staged": raw_staged,
            "edges_scanned": edges_scanned,
            "edge_bytes": edge_bytes,
            "disk": worker.disk.delta_since(before),
            "flows": flows,
        }
    return reply


def _child_gather(
    rt,
    workers,
    superstep: int,
    aggregates: Dict[str, float],
    resp_bytes: bytes,
) -> Dict[str, Any]:
    """Batched-tier Pull-Respond scans for one shard of responders.

    Triples are keyed ``(requester, block, responder)`` so the
    coordinator can replay the canonical sequential triple order with
    the per-triple results looked up; the child's own iteration order is
    irrelevant to the metrics (it only charges order-independent sums on
    its shard's disks and stats).
    """
    _sync_ctx(rt, superstep, aggregates)
    flags = FlagBitset(len(resp_bytes))
    flags.data[:] = resp_bytes
    # the count drives refresh_res's degenerate-case shortcuts; bytes
    # are 0/1 by the bitset discipline, so counting 1-bytes rebuilds it.
    flags._count = resp_bytes.count(1)
    for worker in workers:
        worker.veblock.begin_superstep_stats()
        worker.veblock.refresh_res(flags)
    before = {w.worker_id: w.disk.snapshot() for w in workers}
    program = rt.program
    cfg = rt.config
    combinable = program.combinable and cfg.bpull_combine
    combine = program.combine if combinable else None
    payload_of: Dict[int, Any] = {}
    triples: Dict[Tuple[int, int, int], Any] = {}
    for requester in rt.workers:
        rx = requester.worker_id
        for block_id in requester.veblock.local_blocks:
            for responder in workers:
                got = collect_triple(
                    responder, block_id, flags, rt.values, rt.ctx,
                    program.message_value, combine,
                    program.uniform_messages, payload_of, cfg.sizes,
                )
                if got is None:
                    continue
                buffer, nvalues, ngroups, nbytes, units = got
                # pre-sort here: the coordinator appends the pair's
                # messages in ascending vertex order (the scalar
                # sorted(buffer.items())).
                triples[(rx, block_id, responder.worker_id)] = (
                    sorted(buffer.items()),
                    nvalues, ngroups, nbytes, units,
                )
    return {
        "triples": triples,
        "stats": {
            w.worker_id: tuple(w.veblock.scan_stats) for w in workers
        },
        "disk": {
            w.worker_id: w.disk.delta_since(before[w.worker_id])
            for w in workers
        },
    }


def _child_phase2_vec(
    rt,
    workers,
    shared: Dict[str, Any],
    superstep: int,
    aggregates: Dict[str, float],
    pushing: bool,
    in_payload: Optional[Dict[int, Tuple[Any, Any]]],
) -> Dict[int, Dict[str, Any]]:
    """Vectorized-tier Phase 2 for one shard of workers.

    Vertex values are written directly into the shared-memory dense
    array (``state.values`` was rebound before the fork) and responding
    flags into the shared ``resp_next`` byte segment — owned, disjoint
    ranges only — so the reply carries no value payload at all.
    """
    _sync_ctx(rt, superstep, aggregates)
    state = rt.scratch["vectorized"]
    resp_view = shared["resp_next"]
    reply: Dict[int, Dict[str, Any]] = {}
    for worker in workers:
        wid = worker.worker_id
        before = worker.disk.snapshot()
        pair = in_payload.get(wid) if in_payload else None
        received_local, acc_local = pair if pair else (None, None)
        shard = _vec.compute_worker_update(
            rt, state, worker, superstep,
            received_local, acc_local, pushing, resp_view,
        )
        shard["disk"] = worker.disk.delta_since(before)
        reply[wid] = shard
    return reply


def _child_gather_vec(
    rt,
    workers,
    superstep: int,
    aggregates: Dict[str, float],
    resp_bytes: bytes,
) -> Dict[str, Any]:
    """Vectorized-tier Pull-Respond scans for one shard of responders."""
    np = _vec.np
    _sync_ctx(rt, superstep, aggregates)
    state = rt.scratch["vectorized"]
    pull = state.ensure_pull(rt)
    resp = np.frombuffer(resp_bytes, dtype=np.uint8)
    resp_bool = resp.view(np.bool_)
    block_res = np.fromiter(
        (bool(resp[vids].any()) for vids in pull.block_vids),
        dtype=bool, count=len(pull.block_vids),
    )
    payload_all = payload_valid = None
    if rt.program.uniform_messages:
        payload_all, payload_valid = state.rules.source_payloads(
            rt.ctx, state.values, state.out_degrees, np
        )
    stats = {w.worker_id: [0, 0, 0, 0] for w in workers}
    before = {w.worker_id: w.disk.snapshot() for w in workers}
    triples: Dict[Tuple[int, int, int], Any] = {}
    for requester in rt.workers:
        rx = requester.worker_id
        for block_id in requester.veblock.local_blocks:
            block_vids = pull.block_vids[block_id]
            block_size = len(block_vids)
            for responder in workers:
                ry = responder.worker_id
                bundle = pull.by_dst[ry].get(block_id)
                if bundle is None:
                    continue
                result = _vec.triple_contribution(
                    rt, state, responder, bundle, block_size,
                    block_res, resp_bool, payload_all, payload_valid,
                    stats[ry],
                )
                if result is None:
                    continue
                nvalues, ngroups, nbytes, got, acc_block = result
                # ship only the hit entries (vertex ids + combined
                # values, already in ascending-position order).
                triples[(rx, block_id, ry)] = (
                    nvalues, ngroups, nbytes,
                    block_vids[got], acc_block[got],
                )
    return {
        "triples": triples,
        "stats": {wid: tuple(s) for wid, s in stats.items()},
        "disk": {
            w.worker_id: w.disk.delta_since(before[w.worker_id])
            for w in workers
        },
    }


# ----------------------------------------------------------------------
# the pool
# ----------------------------------------------------------------------
class _PoolRoundError(Exception):
    """A pool child died or hung during a barrier round (internal)."""

    def __init__(self, shard_index: int, reason: str) -> None:
        super().__init__(reason)
        self.shard_index = shard_index
        self.reason = reason


class _ParallelPool:
    """Persistent fork-based worker pool, one pipe per process.

    Created lazily at the first parallel superstep (so checkpoint
    recovery re-forks from restored coordinator state) and kept warm
    until the engine calls ``Runtime.shutdown_pool``.

    Failure policy (see ``docs/RESILIENCE.md``): every pipe read is
    bounded by ``JobConfig.pool_round_timeout_seconds`` and paired with
    a ``Process.is_alive()`` liveness check.  A dead or hung child
    fails the round; :meth:`run_round` then kills the whole generation
    of children, re-forks a fresh one from current coordinator state,
    and retries the round exactly once before escalating to
    :class:`~repro.cluster.fault.WorkerFailure`.  Rounds are safe to
    replay: batched-tier children only *return* deltas, and for the
    one round that writes in place (vectorized Phase 2, into the
    shared value/flag segments) the coordinator snapshots those
    segments first and restores them before the retry.
    """

    def __init__(self, rt) -> None:
        self.rt = rt
        num_workers = len(rt.workers)
        nprocs = min(rt.active_parallelism, num_workers)
        base, extra = divmod(num_workers, nprocs)
        self.shards: List[List[int]] = []
        start = 0
        for i in range(nprocs):
            size = base + (1 if i < extra else 0)
            self.shards.append(list(range(start, start + size)))
            start += size
        self._timeout = rt.config.pool_round_timeout_seconds
        self._segments: List[Any] = []
        self._restore_csr: Optional[Tuple[Any, Any]] = None
        self.shared: Dict[str, Any] = {}
        if rt.active_executor == "vectorized":
            self._setup_shared_vectorized(rt)
        elif rt.program.uniform_messages and rt.needs_adjacency():
            rt.push_fanout  # build pre-fork; children inherit it
        #: wall-clock observations of the current superstep's rounds:
        #: [label, round_wall, per-process busy walls, merge_wall]
        self.round_log: List[List[Any]] = []
        #: re-forks performed after child deaths/hangs (observability).
        self.reforks: int = 0
        self.procs: List[Any] = []
        self.conns: List[Any] = []
        self._spawn_children()

    def _spawn_children(self) -> None:
        """Fork one child per shard from current coordinator state."""
        ctx = multiprocessing.get_context("fork")
        self.procs = []
        self.conns = []
        for shard in self.shards:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_child_main,
                args=(self.rt, shard, child_conn, self.shared),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self.procs.append(proc)
            self.conns.append(parent_conn)

    def _terminate_children(self) -> None:
        """SIGKILL the current generation and close its pipes."""
        for proc in self.procs:
            if proc.is_alive():
                proc.kill()
        for proc in self.procs:
            proc.join(timeout=10)
        for conn in self.conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        self.procs = []
        self.conns = []

    def kill_worker(self, worker: int) -> None:
        """SIGKILL the child process owning simulated worker *worker*.

        The fault-injection hook behind ``kind="kill"`` — real OS-level
        death, detected by the next round's liveness check (or
        immediately by :func:`kill_pool_worker`).
        """
        for shard, proc in zip(self.shards, self.procs):
            if worker in shard and proc.is_alive():
                os.kill(proc.pid, signal.SIGKILL)
                proc.join(timeout=10)
                return

    # ------------------------------------------------------------------
    def _shm_array(self, arr):
        """Copy *arr* into a fresh shared-memory segment."""
        from multiprocessing import shared_memory

        np = _vec.np
        arr = np.ascontiguousarray(arr)
        if arr.nbytes == 0:
            return arr  # zero-size segments are not allowed; read-only
        seg = shared_memory.SharedMemory(create=True, size=arr.nbytes)
        self._segments.append(seg)
        out = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
        out[:] = arr
        return out

    def _setup_shared_vectorized(self, rt) -> None:
        """Move CSR + values + flag bytes into shared memory, pre-fork.

        Rebinding happens before the dense state is built so every view
        the state derives (and the children inherit) reads the shared
        segments; the original CSR view is restored on close because the
        graph object outlives the job (benchmark runs share graphs
        across cells).
        """
        from multiprocessing import shared_memory

        from repro.core.graph import CSRView
        from repro.core.modes.vectorized import _VecState

        np = _vec.np
        graph = rt.graph
        original = graph.csr()
        self._restore_csr = (graph, original)
        graph._csr = CSRView(
            self._shm_array(original.indptr),
            self._shm_array(original.indices),
            self._shm_array(original.weights),
            self._shm_array(original.out_degrees),
        )
        # dense state must not pre-date the rebinding
        rt.scratch.pop("vectorized", None)
        state = _VecState(rt)
        rt.scratch["vectorized"] = state
        state.values = self._shm_array(state.values)
        if rt.needs_veblock():
            state.ensure_pull(rt)  # O(E) build once, inherited by fork
        n = rt.graph.num_vertices
        seg = shared_memory.SharedMemory(create=True, size=max(n, 1))
        self._segments.append(seg)
        view = np.ndarray((n,), dtype=np.uint8, buffer=seg.buf)
        view[:] = 0
        self.shared["resp_next"] = view

    # ------------------------------------------------------------------
    def run_round(self, label: str, messages: List[tuple]) -> List[Any]:
        """One barrier round, with one re-fork-and-retry on child death.

        Raises :class:`~repro.cluster.fault.WorkerFailure` when the
        retried round fails too — the engine's recovery policy takes
        over from there.
        """
        snapshot = self._shared_write_snapshot(messages)
        try:
            return self._attempt_round(label, messages)
        except _PoolRoundError as first:
            self.reforks += 1
            self._refork(snapshot)
            try:
                return self._attempt_round(label, messages)
            except _PoolRoundError as second:
                shard = self.shards[second.shard_index]
                raise WorkerFailure(
                    shard[0], self.rt.ctx.superstep, kind="kill"
                ) from second

    def _attempt_round(self, label: str, messages: List[tuple]) -> List[Any]:
        start = perf_counter()
        for index, (conn, msg) in enumerate(zip(self.conns, messages)):
            try:
                conn.send(msg)
            except (BrokenPipeError, OSError) as exc:
                raise _PoolRoundError(
                    index, f"send failed ({exc}): child is dead"
                )
        replies: List[Any] = []
        busy: List[float] = []
        for index, conn in enumerate(self.conns):
            deadline = start + self._timeout
            while not conn.poll(min(1.0, max(0.0, deadline - perf_counter()))):
                if not self.procs[index].is_alive():
                    raise _PoolRoundError(
                        index,
                        f"child died during {label} "
                        f"(exitcode {self.procs[index].exitcode})",
                    )
                if perf_counter() >= deadline:
                    raise _PoolRoundError(
                        index,
                        f"child hung during {label} "
                        f"(> {self._timeout}s, still alive)",
                    )
            try:
                status, payload, wall = conn.recv()
            except (EOFError, OSError):
                raise _PoolRoundError(
                    index, f"pipe closed during {label}: child died"
                )
            if status == "err":
                raise RuntimeError(
                    f"parallel pool worker failed during {label}:\n"
                    f"{payload}"
                )
            replies.append(payload)
            busy.append(wall)
        self.round_log.append(
            [label, perf_counter() - start, busy, 0.0]
        )
        return replies

    def _shared_write_snapshot(self, messages: List[tuple]):
        """Copy of the shared segments a round writes in place, or None.

        Only the vectorized Phase 2 round mutates cross-process state
        (owned slices of the shared value array and flag bytes); every
        other round is pure from the coordinator's point of view, so a
        retry needs no restoration.
        """
        if not messages or messages[0][0] != "phase2_vec":
            return None
        np = _vec.np
        state = self.rt.scratch["vectorized"]
        return (
            np.array(state.values, copy=True),
            np.array(self.shared["resp_next"], copy=True),
        )

    def _refork(self, snapshot) -> None:
        """Replace the child generation; roll back shared writes first.

        Restoring before the fork matters: the fresh children inherit
        (and alias) the shared segments, so they must see the
        pre-round bytes when they replay the round.
        """
        self._terminate_children()
        if snapshot is not None:
            values, resp = snapshot
            state = self.rt.scratch["vectorized"]
            state.values[:] = values
            self.shared["resp_next"][:] = resp
        self._spawn_children()

    def note_merge(self, seconds: float) -> None:
        """Attribute coordinator merge time to the last round."""
        if self.round_log:
            self.round_log[-1][3] = seconds

    # ------------------------------------------------------------------
    def close(self) -> None:
        for conn in self.conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self.procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=10)
        for conn in self.conns:
            conn.close()
        rt = self.rt
        # detach coordinator state from the shared segments before
        # unlinking: the runtime (and the graph) outlive the pool.
        state = rt.scratch.get("vectorized")
        np = _vec.np
        if state is not None and np is not None:
            state.values = np.array(state.values, copy=True)
            state.out_degrees = np.array(state.out_degrees, copy=True)
        if self._restore_csr is not None:
            graph, original = self._restore_csr
            graph._csr = original
            self._restore_csr = None
        self.shared.clear()
        for seg in self._segments:
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - defensive
                pass
            try:
                seg.close()
            except BufferError:
                # derived views (CSR slices cached in the dense state)
                # still alias the mapping; the kernel reclaims it when
                # they are collected — the name is already unlinked.
                pass
        self._segments = []


# ----------------------------------------------------------------------
# coordinator side
# ----------------------------------------------------------------------
def ensure_pool(rt) -> _ParallelPool:
    """The job's pool, forking it on first use."""
    pool = rt._pool
    if pool is None:
        pool = _ParallelPool(rt)
        rt._pool = pool
    return pool


def kill_pool_worker(rt, worker: int, superstep: int) -> None:
    """SIGKILL the pool child owning *worker*, then fail the superstep.

    The engine's hook for planned ``kind="kill"`` faults under
    ``parallelism > 1``: the child dies a genuine OS-level death (the
    pool is forked first if the fault fires before any parallel
    superstep ran), and the resulting :class:`WorkerFailure` routes
    into the ordinary recovery policy.  Because the fault fires at the
    superstep's start — before any round is in flight — no partial
    state exists and recovery behaves exactly like a planned crash,
    which is what keeps ``parallelism ∈ {1, N}`` byte-identical under
    the same schedule.
    """
    pool = ensure_pool(rt)
    pool.kill_worker(worker)
    raise WorkerFailure(worker, superstep, kind="kill")


def run_superstep_parallel(
    rt,
    superstep: int,
    in_mech: str,
    out_mech: str,
    mode_label: str,
) -> SuperstepMetrics:
    """Execute one BSP superstep across the process pool."""
    if in_mech not in ("stored", "pull"):
        raise ValueError(f"unknown input mechanism {in_mech!r}")
    if out_mech not in ("push", "flag"):
        raise ValueError(f"unknown output mechanism {out_mech!r}")
    pool = ensure_pool(rt)
    pool.round_log = []
    if rt.active_executor == "vectorized":
        metrics = _superstep_vectorized(
            rt, pool, superstep, in_mech, out_mech, mode_label
        )
    else:
        metrics = _superstep_batched(
            rt, pool, superstep, in_mech, out_mech, mode_label
        )
    _emit_pool_spans(rt, pool, metrics)
    return metrics


def _superstep_batched(
    rt, pool, superstep, in_mech, out_mech, mode_label
) -> SuperstepMetrics:
    """Coordinator for the batched tier: sequential ``run_superstep``
    with Phase 2 (and the gather's triple scans) farmed to the pool."""
    cfg = rt.config
    sizes = cfg.sizes
    ctx = rt.ctx
    ctx.superstep = superstep
    rt.network.begin_superstep(superstep)
    metrics = SuperstepMetrics(superstep=superstep, mode=mode_label)

    disk_before = {w.worker_id: w.disk.snapshot() for w in rt.workers}
    spilled_before = {
        w.worker_id: (
            w.message_store.total_spilled if w.message_store else 0
        )
        for w in rt.workers
    }
    updates_of = {w.worker_id: 0 for w in rt.workers}
    msgs_gen_of = {w.worker_id: 0 for w in rt.workers}
    edges_of = {w.worker_id: 0 for w in rt.workers}
    spill_read_of = {w.worker_id: 0 for w in rt.workers}
    pull_memory_of = {w.worker_id: 0 for w in rt.workers}

    pushing = out_mech == "push"
    aggregates_now = dict(ctx.aggregates)

    inbox: Dict[int, Dict[int, List[Any]]] = {}
    if in_mech == "pull" and superstep > 1:
        inbox = _parallel_gather_batched(
            rt, pool, metrics, superstep, aggregates_now,
            msgs_gen_of, edges_of, pull_memory_of,
        )
    elif in_mech == "stored":
        for worker in rt.workers:
            if worker.message_store is None:
                raise RuntimeError(
                    f"mode {mode_label} needs a message store on "
                    f"worker {worker.worker_id}"
                )
            result = worker.message_store.load()
            inbox[worker.worker_id] = result.messages
            metrics.io_message_read += result.spilled_read
            spill_read_of[worker.worker_id] = result.spilled_count

    # Phase 2, one round across the pool.
    replies = pool.run_round("phase2", [
        (
            "phase2", superstep, aggregates_now, pushing,
            {wid: inbox.get(wid) or {} for wid in shard},
        )
        for shard in pool.shards
    ])
    merge_start = perf_counter()
    merged: Dict[int, Dict[str, Any]] = {}
    for reply in replies:
        merged.update(reply)

    # Deterministic merge: fixed worker-id order, replaying exactly the
    # per-worker work the sequential loop interleaves.
    aggregates = metrics.aggregates
    resp_raw = rt.resp_next.data
    values = rt.values
    vertex_record = sizes.vertex_record
    for wid in range(len(rt.workers)):
        shard = merged[wid]
        for vid, value in shard["values"]:
            values[vid] = value
        for vid in shard["resp_vids"]:
            resp_raw[vid] = 1
        rt.resp_next.add_to_count(shard["n_respond"])
        for agg_key, agg_val in shard["agg_stream"]:
            aggregates[agg_key] = (
                aggregates.get(agg_key, 0.0) + agg_val
            )
        updates_of[wid] = shard["num_targets"]
        msgs_gen_of[wid] += shard["raw_staged"]
        metrics.raw_messages += shard["raw_staged"]
        edges_of[wid] += shard["edges_scanned"]
        metrics.edges_scanned += shard["edges_scanned"]
        metrics.io_edges_push += shard["edge_bytes"]
        if shard["num_targets"]:
            metrics.io_vertex += (
                2 * shard["num_targets"] * vertex_record
            )
        rt.workers[wid].disk.counters.add(shard["disk"])

    # Phase 3: route staged flows in sequential (src, dst) order — the
    # network's flow-creation order and the stores' deposit/spill order
    # are both observable.
    if pushing:
        fanout_form = rt.program.uniform_messages
        for wid in range(len(rt.workers)):
            _route_flows(
                rt, wid, merged[wid]["flows"], metrics, fanout_form
            )
    pool.note_merge(perf_counter() - merge_start)

    finalize_superstep_metrics(
        rt, metrics, in_mech, out_mech,
        disk_before, spilled_before,
        updates_of, msgs_gen_of, edges_of, spill_read_of,
        pull_memory_of,
    )
    return metrics


def _parallel_gather_batched(
    rt, pool, metrics, superstep, aggregates_now,
    msgs_gen_of, edges_of, pull_memory_of,
) -> Dict[int, Dict[int, List[Any]]]:
    """Pull-Request/Pull-Respond with the triple scans on the pool.

    Children scan their owned responders' Eblocks in any order (the
    scans are independent: they read pre-superstep values and flags);
    the coordinator then replays the canonical sequential triple loop —
    requester ascending, its blocks in ``local_blocks`` order, responder
    ascending, ``send_request`` for every triple — looking up each
    triple's pre-computed contribution, so the network's flow order, the
    inbox append order, and both buffer peaks match the sequential
    gather exactly.
    """
    cfg = rt.config
    combinable = rt.program.combinable and cfg.bpull_combine
    resp_bytes = bytes(rt.resp_prev.data)
    replies = pool.run_round("gather", [
        ("gather", superstep, aggregates_now, resp_bytes)
        for _shard in pool.shards
    ])
    merge_start = perf_counter()
    triples: Dict[Tuple[int, int, int], Any] = {}
    stats: Dict[int, tuple] = {}
    disks: Dict[int, Any] = {}
    for reply in replies:
        triples.update(reply["triples"])
        stats.update(reply["stats"])
        disks.update(reply["disk"])

    inbox = _pull_inbox(rt)
    send_buffer_peak = {w.worker_id: 0 for w in rt.workers}
    recv_block_peak = {w.worker_id: 0 for w in rt.workers}
    send_request = rt.network.send_request
    transfer = rt.network.transfer
    for requester in rt.workers:
        rx = requester.worker_id
        local_inbox = inbox[rx]
        for block_id in requester.veblock.local_blocks:
            block_received = 0
            for responder in rt.workers:
                ry = responder.worker_id
                send_request(rx, ry)
                got = triples.get((rx, block_id, ry))
                if got is None:
                    continue
                items, nvalues, ngroups, nbytes, units = got
                metrics.raw_messages += nvalues
                msgs_gen_of[ry] += nvalues
                if nbytes > send_buffer_peak[ry]:
                    send_buffer_peak[ry] = nbytes
                transfer(ry, rx, nbytes, units=units)
                if ry != rx:
                    metrics.mco += nvalues - ngroups
                block_received += nbytes
                if combinable:
                    for dst, combined in items:
                        if dst in local_inbox:
                            local_inbox[dst].append(combined)
                        else:
                            local_inbox[dst] = [combined]
                else:
                    for dst, payloads in items:
                        if dst in local_inbox:
                            local_inbox[dst].extend(payloads)
                        else:
                            local_inbox[dst] = list(payloads)
            if block_received > recv_block_peak[rx]:
                recv_block_peak[rx] = block_received
    for worker in rt.workers:
        wid = worker.worker_id
        edges_scanned, aux_bytes, edge_bytes, vrr_bytes = stats[wid]
        metrics.edges_scanned += edges_scanned
        edges_of[wid] += edges_scanned
        metrics.io_fragments += aux_bytes
        metrics.io_edges_bpull += edge_bytes
        metrics.io_vrr += vrr_bytes
        factor = 2 if cfg.prepull else 1
        pull_memory_of[wid] += (
            factor * recv_block_peak[wid] + send_buffer_peak[wid]
        )
        worker.disk.counters.add(disks[wid])
    pool.note_merge(perf_counter() - merge_start)
    return inbox


def _superstep_vectorized(
    rt, pool, superstep, in_mech, out_mech, mode_label
) -> SuperstepMetrics:
    """Coordinator for the vectorized tier.

    Mirrors ``run_superstep_vectorized`` with the per-worker dense
    update (and the gather's triple scans) on the pool; values and
    responding flags travel through shared memory, staged message arrays
    and metric shards through the pipes.
    """
    np = _vec.np
    cfg = rt.config
    sizes = cfg.sizes
    ctx = rt.ctx
    ctx.superstep = superstep
    rt.network.begin_superstep(superstep)
    metrics = SuperstepMetrics(superstep=superstep, mode=mode_label)
    state = rt.scratch["vectorized"]

    disk_before = {w.worker_id: w.disk.snapshot() for w in rt.workers}
    spilled_before = {
        w.worker_id: (
            w.message_store.total_spilled if w.message_store else 0
        )
        for w in rt.workers
    }
    updates_of = {w.worker_id: 0 for w in rt.workers}
    msgs_gen_of = {w.worker_id: 0 for w in rt.workers}
    edges_of = {w.worker_id: 0 for w in rt.workers}
    spill_read_of = {w.worker_id: 0 for w in rt.workers}
    pull_memory_of = {w.worker_id: 0 for w in rt.workers}

    pushing = out_mech == "push"
    aggregates_now = dict(ctx.aggregates)
    num_vertices = rt.graph.num_vertices
    combine = state.rules.combine

    received = None
    acc_global = None
    if in_mech == "pull":
        if superstep > 1:
            received, acc_global = _parallel_gather_vectorized(
                rt, pool, metrics, superstep, aggregates_now,
                msgs_gen_of, edges_of, pull_memory_of,
            )
    else:
        chunk_dsts: List[Any] = []
        chunk_payloads: List[Any] = []
        for worker in rt.workers:
            if worker.message_store is None:
                raise RuntimeError(
                    f"mode {mode_label} needs a message store on "
                    f"worker {worker.worker_id}"
                )
            dsts, payloads, spilled_read, spilled_count = (
                worker.message_store.load_arrays()
            )
            metrics.io_message_read += spilled_read
            spill_read_of[worker.worker_id] = spilled_count
            if dsts is not None:
                chunk_dsts.append(dsts)
                chunk_payloads.append(payloads)
        if chunk_dsts:
            if len(chunk_dsts) == 1:
                dsts, payloads = chunk_dsts[0], chunk_payloads[0]
            else:
                dsts = np.concatenate(chunk_dsts)
                payloads = np.concatenate(chunk_payloads)
            received = np.zeros(num_vertices, dtype=bool)
            received[dsts] = True
            acc_global = _vec._fold(
                dsts, payloads, num_vertices,
                combine, state.identity, state.acc_dtype,
            )

    # Phase 2, one round: ship each worker's slice of the global fold;
    # children write values/flags into shared memory.
    pool.shared["resp_next"][:] = 0
    if received is None:
        payload_of_shard = [None] * len(pool.shards)
    else:
        payload_of_shard = [
            {
                wid: (
                    received[state.workers[wid].local],
                    acc_global[state.workers[wid].local],
                )
                for wid in shard
            }
            for shard in pool.shards
        ]
    replies = pool.run_round("phase2", [
        ("phase2_vec", superstep, aggregates_now, pushing, payload)
        for payload in payload_of_shard
    ])
    merge_start = perf_counter()
    merged: Dict[int, Dict[str, Any]] = {}
    for reply in replies:
        merged.update(reply)

    num_workers = len(rt.workers)
    staged: List[List[Optional[Tuple[Any, Any]]]] = [None] * num_workers
    total_respond = 0
    for wid in range(num_workers):
        shard = merged[wid]
        _vec.apply_update_shard(
            metrics, wid, shard, updates_of, msgs_gen_of, edges_of
        )
        staged[wid] = shard["staged"]
        total_respond += shard["n_respond"]
        rt.workers[wid].disk.counters.add(shard["disk"])
    # flags: children flipped owned bytes of the shared segment in
    # place; adopt them wholesale (the coordinator's buffer is clean
    # after the engine's swap) and account the count.
    rt.resp_next.data[:] = pool.shared["resp_next"].tobytes()
    rt.resp_next.add_to_count(total_respond)

    if pushing:
        transfer = rt.network.transfer
        for src_wid in range(num_workers):
            per_src = staged[src_wid]
            for dst_wid in range(num_workers):
                pair = per_src[dst_wid]
                if pair is None:
                    continue
                dsts, payloads = pair
                count = len(dsts)
                transfer(
                    src_wid, dst_wid, sizes.messages(count),
                    units=count,
                )
                rt.workers[dst_wid].message_store.deposit_arrays(
                    dsts, payloads
                )
    pool.note_merge(perf_counter() - merge_start)

    finalize_superstep_metrics(
        rt, metrics, in_mech, out_mech,
        disk_before, spilled_before,
        updates_of, msgs_gen_of, edges_of, spill_read_of,
        pull_memory_of,
    )
    rt.values[:] = state.values.tolist()
    return metrics


def _parallel_gather_vectorized(
    rt, pool, metrics, superstep, aggregates_now,
    msgs_gen_of, edges_of, pull_memory_of,
):
    """Dense Pull-Request/Pull-Respond with triple scans on the pool.

    Same replay structure as the batched variant; the inbox stream is
    rebuilt in canonical triple order from the shipped per-triple
    (vertex ids, block-combined values) pairs, and the final global fold
    happens here — bit-identical to ``_bpull_gather_vectorized``.
    """
    np = _vec.np
    cfg = rt.config
    state = rt.scratch["vectorized"]
    pull = state.ensure_pull(rt)
    resp_bytes = bytes(rt.resp_prev.data)
    replies = pool.run_round("gather", [
        ("gather_vec", superstep, aggregates_now, resp_bytes)
        for _shard in pool.shards
    ])
    merge_start = perf_counter()
    triples: Dict[Tuple[int, int, int], Any] = {}
    stats: Dict[int, tuple] = {}
    disks: Dict[int, Any] = {}
    for reply in replies:
        triples.update(reply["triples"])
        stats.update(reply["stats"])
        disks.update(reply["disk"])

    send_buffer_peak = {w.worker_id: 0 for w in rt.workers}
    recv_block_peak = {w.worker_id: 0 for w in rt.workers}
    stream_dsts: List[Any] = []
    stream_vals: List[Any] = []
    send_request = rt.network.send_request
    transfer = rt.network.transfer
    for requester in rt.workers:
        rx = requester.worker_id
        for block_id in requester.veblock.local_blocks:
            block_received = 0
            for responder in rt.workers:
                ry = responder.worker_id
                send_request(rx, ry)
                got = triples.get((rx, block_id, ry))
                if got is None:
                    continue
                nvalues, ngroups, nbytes, got_vids, acc_vals = got
                metrics.raw_messages += nvalues
                msgs_gen_of[ry] += nvalues
                if nbytes > send_buffer_peak[ry]:
                    send_buffer_peak[ry] = nbytes
                transfer(ry, rx, nbytes, units=ngroups)
                if ry != rx:
                    metrics.mco += nvalues - ngroups
                block_received += nbytes
                stream_dsts.append(got_vids)
                stream_vals.append(acc_vals)
            if block_received > recv_block_peak[rx]:
                recv_block_peak[rx] = block_received

    for worker in rt.workers:
        wid = worker.worker_id
        edges_scanned, aux_bytes, edge_bytes, vrr_bytes = stats[wid]
        metrics.edges_scanned += edges_scanned
        edges_of[wid] += edges_scanned
        metrics.io_fragments += aux_bytes
        metrics.io_edges_bpull += edge_bytes
        metrics.io_vrr += vrr_bytes
        factor = 2 if cfg.prepull else 1
        pull_memory_of[wid] += (
            factor * recv_block_peak[wid] + send_buffer_peak[wid]
        )
        worker.disk.counters.add(disks[wid])
    pool.note_merge(perf_counter() - merge_start)

    if not stream_dsts:
        return None, None
    if len(stream_dsts) == 1:
        dsts, vals = stream_dsts[0], stream_vals[0]
    else:
        dsts = np.concatenate(stream_dsts)
        vals = np.concatenate(stream_vals)
    num_vertices = rt.graph.num_vertices
    received = np.zeros(num_vertices, dtype=bool)
    received[dsts] = True
    acc_global = _vec._fold(
        dsts, vals, num_vertices,
        state.rules.combine, state.identity, state.acc_dtype,
    )
    return received, acc_global


def _emit_pool_spans(rt, pool, metrics: SuperstepMetrics) -> None:
    """Emit the superstep's real-concurrency spans (tracing only).

    Unlike every other span in the trace, durations here are **wall
    clock** seconds (the pool is the one place where host time is the
    phenomenon being observed); they are drawn at the superstep's
    modeled start so the tracks line up with the modeled spans.  Per
    round: one ``process_busy`` + ``process_barrier`` span per pool
    process and a ``merge`` span for the coordinator's fold.  Metrics
    are untouched — traced parallel runs stay byte-identical.
    """
    tracer = rt.tracer
    if not tracer.enabled:
        return
    start = tracer.clock
    step = metrics.superstep
    for label, round_wall, busy, merge_wall in pool.round_log:
        for index, (shard, wall) in enumerate(
            zip(pool.shards, busy)
        ):
            tracer.span(
                "process_busy", cat=CAT_PARALLEL, start=start,
                dur=wall, superstep=step, worker=shard[0],
                args={
                    "round": label, "process": index,
                    "workers": list(shard), "wall_seconds": wall,
                },
            )
            tracer.span(
                "process_barrier", cat=CAT_PARALLEL,
                start=start + wall,
                dur=max(round_wall - wall, 0.0),
                superstep=step, worker=shard[0],
                args={"round": label, "process": index},
            )
        tracer.span(
            "merge", cat=CAT_PARALLEL, start=start + round_wall,
            dur=merge_wall, superstep=step,
            args={"round": label, "wall_seconds": merge_wall},
        )
        start += round_wall + merge_wall

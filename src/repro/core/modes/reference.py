"""Reference superstep executor: per-vertex accounting, no batching.

This is the pre-optimization hot path, kept verbatim as the equivalence
oracle for the batched executor in :mod:`repro.core.modes.common`:

* ``IO(V_t)`` is charged with one ``read``/``write`` pair per vertex per
  superstep instead of one aggregated charge per worker;
* messages are routed by regrouping the flat staging lists with one
  ``owner()`` lookup and one dict insert per message;
* Pull-Respond resumes the :meth:`scan_for_request` generator once per
  fragment and charges each ``S_v`` random read individually;
* every container (inbox, staging buffers) is allocated fresh each
  superstep.

Select it with ``JobConfig(executor="reference")``.  All modeled
counters — :class:`JobMetrics`, per-superstep I/O classes, network bytes
— are byte-identical to the batched executor's; the equivalence tests
(``tests/core/test_hotpath_equivalence.py``) and the
``benchmarks/bench_perf_hotpath.py`` speedup benchmark both rely on
running the same job through both executors.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.core.metrics import SuperstepMetrics
from repro.core.runtime import Runtime
from repro.obs.instrument import derive_phases, emit_superstep_events
from repro.storage.disk import IOCounters

__all__ = ["run_superstep_reference"]


def run_superstep_reference(
    rt: Runtime,
    superstep: int,
    in_mech: str,
    out_mech: str,
    mode_label: str,
) -> SuperstepMetrics:
    """Execute one BSP superstep with per-vertex accounting."""
    if in_mech not in ("stored", "pull"):
        raise ValueError(f"unknown input mechanism {in_mech!r}")
    if out_mech not in ("push", "flag"):
        raise ValueError(f"unknown output mechanism {out_mech!r}")

    cfg = rt.config
    sizes = cfg.sizes
    program = rt.program
    rt.ctx.superstep = superstep
    rt.network.begin_superstep(superstep)
    metrics = SuperstepMetrics(superstep=superstep, mode=mode_label)
    async_mode = (
        cfg.asynchronous and in_mech == "stored" and out_mech == "push"
    )
    if cfg.asynchronous and not program.async_safe:
        raise ValueError(
            f"{program.name} is not async_safe; asynchronous iteration "
            "needs monotonic updates"
        )

    disk_before = {w.worker_id: w.disk.snapshot() for w in rt.workers}
    spilled_before = {
        w.worker_id: (
            w.message_store.total_spilled if w.message_store else 0
        )
        for w in rt.workers
    }

    updates_of: Dict[int, int] = {w.worker_id: 0 for w in rt.workers}
    msgs_gen_of: Dict[int, int] = {w.worker_id: 0 for w in rt.workers}
    edges_of: Dict[int, int] = {w.worker_id: 0 for w in rt.workers}
    spill_read_of: Dict[int, int] = {w.worker_id: 0 for w in rt.workers}
    pull_memory_of: Dict[int, int] = {w.worker_id: 0 for w in rt.workers}

    # ------------------------------------------------------------------
    # Phase 0/1: obtain this superstep's messages.
    # ------------------------------------------------------------------
    if out_mech == "push":
        for worker in rt.workers:
            if worker.adjacency is not None:
                worker.adjacency.begin_superstep()

    inbox: Dict[int, Dict[int, List[Any]]] = {}
    if in_mech == "pull" and superstep > 1:
        inbox = _bpull_gather_reference(
            rt, metrics, msgs_gen_of, edges_of, pull_memory_of
        )
    elif in_mech == "stored" and not async_mode:
        for worker in rt.workers:
            if worker.message_store is None:
                raise RuntimeError(
                    f"mode {mode_label} needs a message store on "
                    f"worker {worker.worker_id}"
                )
            result = worker.message_store.load()
            inbox[worker.worker_id] = result.messages
            metrics.io_message_read += result.spilled_read
            spill_read_of[worker.worker_id] = result.spilled_count

    # ------------------------------------------------------------------
    # Phase 2: update vertices; stage outgoing messages if pushing.
    # ------------------------------------------------------------------
    staged: Dict[int, List[Tuple[int, Any]]] = {
        w.worker_id: [] for w in rt.workers
    }
    for worker in rt.workers:
        wid = worker.worker_id
        if async_mode:
            result = worker.message_store.load()
            inbox[wid] = result.messages
            metrics.io_message_read += result.spilled_read
            spill_read_of[wid] = result.spilled_count
        msgs = inbox.get(wid, {})
        if superstep == 1:
            initial = {
                v
                for v in worker.vertices
                if program.initially_active(v, rt.ctx)
            }
            targets: List[int] = sorted(initial | set(msgs.keys()))
        elif program.all_active:
            targets = worker.vertices
        else:
            targets = sorted(msgs.keys())
        for vid in targets:
            mlist = msgs.get(vid, [])
            old_value = rt.values[vid]
            result = program.update(vid, old_value, mlist, rt.ctx)
            rt.values[vid] = result.value
            rt.resp_next[vid] = result.respond
            updates_of[wid] += 1
            contribution = program.aggregate(
                vid, old_value, result.value, rt.ctx
            )
            if contribution:
                for agg_key, agg_val in contribution.items():
                    metrics.aggregates[agg_key] = (
                        metrics.aggregates.get(agg_key, 0.0) + agg_val
                    )
            # IO(V_t): the vertex record is read and rewritten —
            # individually, per vertex (the pre-batching accounting).
            worker.disk.read(sizes.vertex_record, sequential=True)
            worker.disk.write(sizes.vertex_record, sequential=True)
            metrics.io_vertex += 2 * sizes.vertex_record
            if out_mech == "push" and result.respond:
                if worker.adjacency is None:
                    raise RuntimeError(
                        "push output requires an adjacency store"
                    )
                edges, charged = worker.adjacency.read_out_edges(vid)
                scanned = charged // sizes.edge
                edges_of[wid] += scanned
                metrics.io_edges_push += charged
                metrics.edges_scanned += scanned
                value = rt.values[vid]
                for dst, weight in edges:
                    payload = program.message_value(
                        vid, value, dst, weight, rt.ctx
                    )
                    if payload is None:
                        continue
                    staged[wid].append((dst, payload))
                    msgs_gen_of[wid] += 1
                    metrics.raw_messages += 1
        if async_mode and staged[wid]:
            _route_pushed_reference(rt, {wid: staged[wid]}, metrics)
            staged[wid] = []

    # ------------------------------------------------------------------
    # Phase 3: route staged messages (push output only).
    # ------------------------------------------------------------------
    if out_mech == "push" and not async_mode:
        _route_pushed_reference(rt, staged, metrics)

    # ------------------------------------------------------------------
    # Metrics assembly.
    # ------------------------------------------------------------------
    metrics.updated_vertices = sum(updates_of.values())
    metrics.responding_vertices = rt.responding_count()
    net = rt.network.end_superstep()
    metrics.net_bytes = net.total_bytes
    metrics.net_transfer_units += net.transfer_units
    metrics.pull_requests = net.requests
    metrics.net_packages = net.packages
    metrics.blocking_seconds = max(
        net.worker_seconds.values(), default=0.0
    )

    cpu_model = cfg.cluster.cpu
    tracer = rt.tracer
    disk_deltas: Dict[int, IOCounters] = {}
    elapsed = 0.0
    for worker in rt.workers:
        wid = worker.worker_id
        delta = worker.disk.delta_since(disk_before[wid])
        metrics.io.add(delta)
        if tracer.enabled:
            disk_deltas[wid] = delta
        spilled_now = (
            worker.message_store.total_spilled if worker.message_store else 0
        )
        spilled_here = spilled_now - spilled_before[wid]
        metrics.spilled_messages += spilled_here
        metrics.io_message_spill += sizes.messages(spilled_here)
        cpu = cpu_model.seconds(
            updates=updates_of[wid],
            messages=msgs_gen_of[wid],
            edges=edges_of[wid],
            spilled=spill_read_of[wid],
        )
        metrics.cpu_seconds += cpu
        io_seconds = cfg.cluster.disk.io_seconds(delta)
        net_seconds = net.worker_seconds.get(wid, 0.0)
        total = cpu + io_seconds + net_seconds
        metrics.worker_seconds[wid] = total
        elapsed = max(elapsed, total)
        metrics.memory_bytes += worker.memory_bytes() + pull_memory_of[wid]
    metrics.elapsed_seconds = elapsed
    if tracer.enabled:
        emit_superstep_events(
            rt, metrics,
            derive_phases(cfg, metrics, in_mech, out_mech),
            disk_deltas,
        )
    return metrics


def _route_pushed_reference(
    rt: Runtime,
    staged: Dict[int, List[Tuple[int, Any]]],
    metrics: SuperstepMetrics,
) -> None:
    """Per-message routing: regroup flat staging lists flow by flow."""
    from repro.core.modes.common import _combine_within_threshold

    cfg = rt.config
    sizes = cfg.sizes
    program = rt.program
    # the pre-optimization owner lookup: a bisect per message via the
    # partition, not the Runtime's precomputed owner array.
    owner = rt.partition.owner
    per_flow: Dict[Tuple[int, int], List[Tuple[int, Any]]] = {}
    for src_wid, messages in staged.items():
        for dst, payload in messages:
            dst_wid = owner(dst)
            per_flow.setdefault((src_wid, dst_wid), []).append((dst, payload))

    for (src_wid, dst_wid), messages in sorted(per_flow.items()):
        store = rt.workers[dst_wid].message_store
        if cfg.sender_combine and program.combinable:
            shipped = _combine_within_threshold(
                messages, program.combine, sizes.message,
                cfg.sending_threshold_bytes,
            )
        else:
            shipped = messages
        nbytes = sizes.messages(len(shipped))
        rt.network.transfer(src_wid, dst_wid, nbytes, units=len(shipped))
        if src_wid != dst_wid:
            metrics.mco += len(messages) - len(shipped)
        for dst, payload in shipped:
            store.deposit(dst, payload)


def _bpull_gather_reference(
    rt: Runtime,
    metrics: SuperstepMetrics,
    msgs_gen_of: Dict[int, int],
    edges_of: Dict[int, int],
    pull_memory_of: Dict[int, int],
) -> Dict[int, Dict[int, List[Any]]]:
    """Pull-Request/Pull-Respond with per-fragment generator scanning."""
    cfg = rt.config
    sizes = cfg.sizes
    program = rt.program
    combinable = program.combinable and cfg.bpull_combine
    flags = rt.resp_prev
    values = rt.values
    inbox: Dict[int, Dict[int, List[Any]]] = {
        w.worker_id: {} for w in rt.workers
    }

    for worker in rt.workers:
        if worker.veblock is None:
            raise RuntimeError("b-pull requires VE-BLOCK storage")
        worker.veblock.begin_superstep_stats()
        worker.veblock.refresh_res(flags)

    send_buffer_peak: Dict[int, int] = {w.worker_id: 0 for w in rt.workers}
    recv_block_peak: Dict[int, int] = {w.worker_id: 0 for w in rt.workers}

    for requester in rt.workers:
        rx = requester.worker_id
        local_inbox = inbox[rx]
        for block_id in requester.veblock.local_blocks:
            block_received = 0
            for responder in rt.workers:
                ry = responder.worker_id
                rt.network.send_request(rx, ry)
                buffer: Dict[int, List[Any]] = {}
                nvalues = 0
                for svertex, edges in responder.veblock.scan_for_request(
                    block_id, flags
                ):
                    svalue = values[svertex]
                    for dst, weight in edges:
                        payload = program.message_value(
                            svertex, svalue, dst, weight, rt.ctx
                        )
                        if payload is None:
                            continue
                        buffer.setdefault(dst, []).append(payload)
                        nvalues += 1
                if not buffer:
                    continue
                metrics.raw_messages += nvalues
                msgs_gen_of[ry] += nvalues
                ngroups = len(buffer)
                if combinable:
                    nbytes = sizes.combined(ngroups)
                    units = ngroups
                else:
                    nbytes = sizes.concatenated(nvalues, ngroups)
                    units = nvalues
                send_buffer_peak[ry] = max(send_buffer_peak[ry], nbytes)
                rt.network.transfer(ry, rx, nbytes, units=units)
                if ry != rx:
                    metrics.mco += nvalues - ngroups
                block_received += nbytes
                for dst, payloads in sorted(buffer.items()):
                    if combinable:
                        local_inbox.setdefault(dst, []).append(
                            program.combine_all(payloads)
                        )
                    else:
                        local_inbox.setdefault(dst, []).extend(payloads)
            recv_block_peak[rx] = max(recv_block_peak[rx], block_received)

    for worker in rt.workers:
        edges_scanned, aux_bytes, edge_bytes, vrr_bytes = (
            worker.veblock.scan_stats
        )
        metrics.edges_scanned += edges_scanned
        edges_of[worker.worker_id] += edges_scanned
        metrics.io_fragments += aux_bytes
        metrics.io_edges_bpull += edge_bytes
        metrics.io_vrr += vrr_bytes
        factor = 2 if cfg.prepull else 1
        pull_memory_of[worker.worker_id] += (
            factor * recv_block_peak[worker.worker_id]
            + send_buffer_peak[worker.worker_id]
        )
    return inbox

"""GraphLab-PowerGraph-style pull baseline with the paper's disk extension.

The paper modifies (memory-resident) GraphLab PowerGraph to keep edges
and, optionally, vertices on disk (Section 6 intro and Appendix F).  The
execution model is Gather-Apply-Scatter over a vertex-cut:

* a destination vertex *v* is updated when at least one in-neighbor
  responded last superstep (or the algorithm is always-active);
* **gather** scans *v*'s in-edges; edges live at the machine of the
  source vertex (the vertex-cut "join site"), charged as sequential
  reads; each *responding* source vertex's value is read through that
  machine's LRU vertex cache — random reads on misses.  This per-vertex,
  on-demand access is the "frequent and random access to svertices" that
  makes pull I/O-inefficient on disk;
* partial gathers are combined per remote machine (one message each)
  when the program allows, otherwise every message crosses individually;
* **apply** updates *v* at its master and synchronises each remote
  mirror (one message per mirror machine).  Mirror records on remote
  machines occupy their LRU caches too — replication is why the cache
  thrashes in Table 5's ``ext-edge-v2.5`` even though a 1/T share of the
  vertices would fit.
"""

from __future__ import annotations

from typing import Any, Dict, List, Set, Tuple

from repro.core.metrics import SuperstepMetrics
from repro.core.runtime import Runtime
from repro.obs.instrument import derive_pull_phases, emit_superstep_events
from repro.storage.disk import IOCounters

__all__ = ["run_pull_superstep"]


def _mirror_key(vid: int, num_vertices: int) -> int:
    """Cache key of vertex *vid*'s mirror record on a remote machine."""
    return num_vertices + vid


def run_pull_superstep(rt: Runtime, superstep: int) -> SuperstepMetrics:
    """Execute one GAS superstep of the pull baseline."""
    cfg = rt.config
    sizes = cfg.sizes
    program = rt.program
    rt.ctx.superstep = superstep
    rt.network.begin_superstep(superstep)
    metrics = SuperstepMetrics(superstep=superstep, mode="pull")
    if rt.reverse is None:
        raise RuntimeError("pull mode requires the reverse adjacency")

    disk_before = {w.worker_id: w.disk.snapshot() for w in rt.workers}
    for worker in rt.workers:
        if worker.vertex_cache is not None:
            worker.vertex_cache.reset_stats()

    n = rt.graph.num_vertices
    flags = rt.resp_prev
    updates_of = {w.worker_id: 0 for w in rt.workers}
    msgs_of = {w.worker_id: 0 for w in rt.workers}
    edges_of = {w.worker_id: 0 for w in rt.workers}

    # --- phase 1: gather (reads only superstep t-1 values) --------------
    # ``gathered`` is reused across supersteps (cleared in place); the
    # per-vertex in-edge scan is charged with one bulk ``charge`` per
    # join-site machine instead of one ``read`` per edge — identical
    # byte totals, far fewer calls on the hot path.
    gathered: Dict[int, Tuple[List[Any], Set[int]]] = rt.scratch.setdefault(
        "pull_gathered", {}
    )
    gathered.clear()
    owner_of = rt.owner_of
    workers = rt.workers
    raw_flags = flags.data
    values = rt.values
    message_value = program.message_value
    edge_bytes = sizes.edge
    for worker in rt.workers:
        wid = worker.worker_id
        for vid in _update_targets(rt, worker.vertices, superstep):
            in_edges = rt.reverse[vid]
            messages: List[Any] = []
            partials: Dict[int, List[Any]] = {}
            machines: Set[int] = set()
            scanned_of: Dict[int, int] = {}
            for src, weight in in_edges:
                src_machine = owner_of[src]
                # the in-edge record is scanned at the join site
                scanned_of[src_machine] = scanned_of.get(src_machine, 0) + 1
                if not raw_flags[src]:
                    continue
                responder = workers[src_machine]
                if responder.vertex_cache is not None:
                    responder.vertex_cache.access(src)
                    if src_machine != wid:
                        responder.vertex_cache.access(
                            _mirror_key(vid, n)
                        )
                payload = message_value(
                    src, values[src], vid, weight, rt.ctx
                )
                if payload is None:
                    continue
                metrics.raw_messages += 1
                msgs_of[src_machine] += 1
                if src_machine == wid:
                    messages.append(payload)
                else:
                    partials.setdefault(src_machine, []).append(payload)
                    machines.add(src_machine)
            for src_machine, scanned in scanned_of.items():
                workers[src_machine].disk.charge(
                    seq_read=scanned * edge_bytes
                )
                edges_of[src_machine] += scanned
            metrics.edges_scanned += len(in_edges)
            # network: request + partial gathers per remote machine
            for machine, payloads in sorted(partials.items()):
                rt.network.send_request(wid, machine)
                if program.combinable:
                    messages.append(program.combine_all(payloads))
                    shipped = 1
                else:
                    messages.extend(payloads)
                    shipped = len(payloads)
                rt.network.transfer(
                    machine, wid, sizes.messages(shipped), units=shipped
                )
            gathered[vid] = (messages, machines)

    # --- phase 2: apply + mirror synchronisation ------------------------
    for worker in rt.workers:
        wid = worker.worker_id
        for vid in _update_targets(rt, worker.vertices, superstep):
            messages, machines = gathered[vid]
            if not (superstep == 1 or program.all_active or messages):
                continue
            old_value = rt.values[vid]
            result = program.update(vid, old_value, messages, rt.ctx)
            rt.values[vid] = result.value
            rt.resp_next[vid] = result.respond
            updates_of[wid] += 1
            contribution = program.aggregate(
                vid, old_value, result.value, rt.ctx
            )
            if contribution:
                for agg_key, agg_val in contribution.items():
                    metrics.aggregates[agg_key] = (
                        metrics.aggregates.get(agg_key, 0.0) + agg_val
                    )
            if worker.vertex_cache is not None:
                worker.vertex_cache.access(vid, dirty=True)
            for machine in sorted(machines):
                rt.network.transfer(wid, machine, sizes.message, units=1)
                mirror_cache = rt.workers[machine].vertex_cache
                if mirror_cache is not None:
                    mirror_cache.access(_mirror_key(vid, n), dirty=True)

    # ------------------------------------------------------------------
    metrics.updated_vertices = sum(updates_of.values())
    metrics.responding_vertices = rt.responding_count()
    net = rt.network.end_superstep()
    metrics.net_bytes = net.total_bytes
    metrics.net_transfer_units = net.transfer_units
    metrics.pull_requests = net.requests
    metrics.net_packages = net.packages
    metrics.blocking_seconds = max(net.worker_seconds.values(), default=0.0)

    cpu_model = cfg.cluster.cpu
    tracer = rt.tracer
    disk_deltas: Dict[int, IOCounters] = {}
    elapsed = 0.0
    for worker in rt.workers:
        wid = worker.worker_id
        delta = worker.disk.delta_since(disk_before[wid])
        metrics.io.add(delta)
        if tracer.enabled:
            disk_deltas[wid] = delta
        misses = (
            worker.vertex_cache.misses if worker.vertex_cache else 0
        )
        metrics.lru_misses += misses
        cpu = cpu_model.seconds(
            updates=updates_of[wid],
            messages=msgs_of[wid],
            edges=edges_of[wid],
            lru_misses=misses,
        )
        metrics.cpu_seconds += cpu
        total = (
            cpu
            + cfg.cluster.disk.io_seconds(delta)
            + net.worker_seconds.get(wid, 0.0)
        )
        metrics.worker_seconds[wid] = total
        elapsed = max(elapsed, total)
        metrics.memory_bytes += worker.memory_bytes()
    metrics.elapsed_seconds = elapsed
    if tracer.enabled:
        emit_superstep_events(
            rt, metrics, derive_pull_phases(cfg, metrics), disk_deltas
        )
    return metrics


def _update_targets(
    rt: Runtime, local_vertices: List[int], superstep: int
) -> List[int]:
    """Vertices of one worker that run update() this superstep."""
    program = rt.program
    if superstep == 1:
        return [
            v for v in local_vertices if program.initially_active(v, rt.ctx)
        ]
    if program.all_active:
        return list(local_vertices)
    raw_flags = rt.resp_prev.data
    reverse = rt.reverse
    return [
        v
        for v in local_vertices
        if any(raw_flags[src] for src, _w in reverse[v])
    ]

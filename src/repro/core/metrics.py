"""Per-superstep and per-job metrics.

These are the quantities the paper reports in its figures: runtime
(Figs. 7–9, 15, 25), I/O bytes by class (Figs. 10, 14b, 24), network
traffic and message counts (Figs. 14c, 18, 26), memory usage (Figs. 14d,
23), blocking time (Fig. 17), plus the raw inputs of the switching metric
``Q_t`` (Eq. 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.storage.disk import IOCounters

__all__ = ["SuperstepMetrics", "LoadMetrics", "JobMetrics"]


@dataclass
class SuperstepMetrics:
    """Everything measured during one superstep (cluster-wide sums,

    except ``worker_seconds``/``elapsed_seconds`` which respect the BSP
    barrier: the superstep lasts as long as its slowest worker).
    """

    superstep: int
    mode: str

    # --- disk -----------------------------------------------------------
    io: IOCounters = field(default_factory=IOCounters)
    #: message bytes spilled by the push family this superstep (written).
    io_message_spill: int = 0
    #: spilled message bytes read back by load() this superstep.
    io_message_read: int = 0
    #: adjacency-edge bytes read while pushing (IO(E_t)).
    io_edges_push: int = 0
    #: Eblock edge bytes read while pulling (IO(Ē_t)).
    io_edges_bpull: int = 0
    #: fragment auxiliary-data bytes read (IO(F_t)).
    io_fragments: int = 0
    #: source-vertex value bytes randomly read by Pull-Respond (IO(V_rr)).
    io_vrr: int = 0
    #: vertex record bytes read+written by update() (IO(V_t)).
    io_vertex: int = 0

    # --- network ---------------------------------------------------------
    net_bytes: int = 0
    net_transfer_units: int = 0  # messages actually shipped (after concat/combine)
    raw_messages: int = 0        # messages produced (M)
    mco: int = 0                 # messages saved by concat/combine (M - groups)
    pull_requests: int = 0
    net_packages: int = 0

    # --- counts ----------------------------------------------------------
    updated_vertices: int = 0
    responding_vertices: int = 0
    spilled_messages: int = 0
    lru_misses: int = 0
    edges_scanned: int = 0

    #: cluster-wide aggregator totals produced this superstep.
    aggregates: Dict[str, float] = field(default_factory=dict)

    # --- memory / time ---------------------------------------------------
    memory_bytes: int = 0        # peak buffered bytes + metadata
    cpu_seconds: float = 0.0
    #: modeled wall seconds per worker (io + net + cpu), before the barrier.
    worker_seconds: Dict[int, float] = field(default_factory=dict)
    #: modeled superstep duration: max over workers (BSP barrier).
    elapsed_seconds: float = 0.0
    #: modeled time spent exchanging messages (Fig. 17 "blocking time").
    blocking_seconds: float = 0.0

    @property
    def spill_fraction(self) -> float:
        """Fraction of produced messages that hit disk (Fig. 2's y2-axis)."""
        if self.raw_messages == 0:
            return 0.0
        return self.spilled_messages / self.raw_messages


@dataclass
class LoadMetrics:
    """Cost of the graph loading phase (Fig. 16)."""

    structures: str = ""
    io: IOCounters = field(default_factory=IOCounters)
    cpu_seconds: float = 0.0
    elapsed_seconds: float = 0.0


@dataclass
class JobMetrics:
    """Aggregated results of one job run."""

    mode: str
    graph_name: str
    program_name: str
    num_workers: int
    load: LoadMetrics = field(default_factory=LoadMetrics)
    supersteps: List[SuperstepMetrics] = field(default_factory=list)
    restarts: int = 0
    #: (modeled seconds, cluster net bytes in flight) samples (Fig. 18).
    traffic_timeline: List[tuple] = field(default_factory=list)
    #: per-superstep mode actually run (hybrid traces, Fig. 14).
    mode_trace: List[str] = field(default_factory=list)
    #: per-superstep Q_t values computed by the switcher (Fig. 14a).
    q_trace: List[Optional[float]] = field(default_factory=list)
    #: (superstep, bytes, modeled seconds) per checkpoint taken.
    checkpoints: List[tuple] = field(default_factory=list)
    #: (superstep, bytes, modeled seconds) per *failed* checkpoint
    #: attempt (``checkpoint_write`` faults): the write cost was paid
    #: but no snapshot was retained.
    checkpoint_failures: List[tuple] = field(default_factory=list)
    #: superstep the last recovery resumed after (None: no recovery or
    #: recompute-from-scratch).
    recovered_from: Optional[int] = None
    #: restart budget the recovery engine ran with
    #: (``JobConfig.max_restarts``).
    max_restarts: int = 3
    #: every fault the injector fired, in firing order — job-level
    #: history, never trimmed by recovery rewinds:
    #: ``{"superstep", "worker", "kind", "source", "factor"}``.
    faults: List[Dict] = field(default_factory=list)
    #: one record per restart the recovery engine performed:
    #: ``{"restart", "superstep", "worker", "kind", "policy",
    #: "resume_after", "rework_supersteps", "rework_seconds",
    #: "downtime_seconds"}``.  ``policy`` is "checkpoint" or "scratch";
    #: ``rework_*`` is the completed work discarded by the failure;
    #: ``downtime_seconds`` the modeled backoff charged before the
    #: restart.
    recoveries: List[Dict] = field(default_factory=list)
    #: superstep a ``resume_from`` run continued after (None: fresh run).
    resumed_from: Optional[int] = None
    #: supersteps actually executed, including work discarded by
    #: failures — compare with num_supersteps to see recovery waste.
    executed_supersteps: int = 0
    #: set only when the runtime downgraded the requested executor tier
    #: or parallelism: ``{"requested_executor", "active_executor",
    #: "requested_parallelism", "active_parallelism", "reason"}``.  None
    #: on a non-degraded run — and then absent from :meth:`to_dict`, so
    #: runs that differ only in the *requested* tier stay byte-identical
    #: (the cross-executor equivalence contract).
    fallback: Optional[Dict] = None

    # ------------------------------------------------------------------
    @property
    def num_supersteps(self) -> int:
        return len(self.supersteps)

    @property
    def compute_seconds(self) -> float:
        """Modeled iterative-computation time (excludes loading)."""
        return sum(s.elapsed_seconds for s in self.supersteps)

    @property
    def checkpoint_seconds(self) -> float:
        """Modeled snapshot-write time, including failed attempts."""
        return (sum(seconds for _t, _b, seconds in self.checkpoints)
                + sum(seconds for _t, _b, seconds in self.checkpoint_failures))

    @property
    def recovery_seconds(self) -> float:
        """Modeled restart downtime (exponential backoff), all restarts."""
        return sum(r["downtime_seconds"] for r in self.recoveries)

    @property
    def runtime_seconds(self) -> float:
        """Modeled job runtime: loading + supersteps + checkpoints +
        restart downtime."""
        return (self.load.elapsed_seconds + self.compute_seconds
                + self.checkpoint_seconds + self.recovery_seconds)

    @property
    def total_io(self) -> IOCounters:
        total = self.load.io.copy()
        for step in self.supersteps:
            total.add(step.io)
        return total

    @property
    def compute_io_bytes(self) -> int:
        """Total I/O bytes during iterations (Fig. 10 excludes loading)."""
        return sum(s.io.total for s in self.supersteps)

    @property
    def total_net_bytes(self) -> int:
        return sum(s.net_bytes for s in self.supersteps)

    @property
    def total_messages(self) -> int:
        return sum(s.raw_messages for s in self.supersteps)

    @property
    def peak_memory_bytes(self) -> int:
        return max((s.memory_bytes for s in self.supersteps), default=0)

    def mean_superstep_seconds(self) -> float:
        if not self.supersteps:
            return 0.0
        return self.compute_seconds / len(self.supersteps)

    def to_dict(self) -> Dict:
        """Full machine-readable dump (for saving experiment runs).

        The result is JSON-pure (string keys, lists, no tuples) so that
        ``json.loads(m.to_json()) == m.to_dict()`` holds exactly — the
        round-trip test and the executor-equivalence guard depend on it.
        """
        out = {
            "mode": self.mode,
            "graph": self.graph_name,
            "program": self.program_name,
            "num_workers": self.num_workers,
            "restarts": self.restarts,
            "max_restarts": self.max_restarts,
            "recovered_from": self.recovered_from,
            "resumed_from": self.resumed_from,
            "executed_supersteps": self.executed_supersteps,
            "faults": [dict(f) for f in self.faults],
            "recoveries": [dict(r) for r in self.recoveries],
            "load": {
                "structures": self.load.structures,
                "elapsed_seconds": self.load.elapsed_seconds,
                "write_bytes": self.load.io.write,
            },
            "checkpoints": [list(c) for c in self.checkpoints],
            "checkpoint_failures": [
                list(c) for c in self.checkpoint_failures
            ],
            "mode_trace": list(self.mode_trace),
            "q_trace": list(self.q_trace),
            "traffic_timeline": [list(t) for t in self.traffic_timeline],
            "supersteps": [
                {
                    "superstep": s.superstep,
                    "mode": s.mode,
                    "elapsed_seconds": s.elapsed_seconds,
                    "io_bytes": s.io.total,
                    "io_random_read": s.io.random_read,
                    "io_random_write": s.io.random_write,
                    "io_seq_read": s.io.seq_read,
                    "io_seq_write": s.io.seq_write,
                    "io_message_spill": s.io_message_spill,
                    "io_message_read": s.io_message_read,
                    "io_edges_push": s.io_edges_push,
                    "io_edges_bpull": s.io_edges_bpull,
                    "io_fragments": s.io_fragments,
                    "io_vrr": s.io_vrr,
                    "io_vertex": s.io_vertex,
                    "net_bytes": s.net_bytes,
                    "net_transfer_units": s.net_transfer_units,
                    "raw_messages": s.raw_messages,
                    "mco": s.mco,
                    "pull_requests": s.pull_requests,
                    "net_packages": s.net_packages,
                    "spilled_messages": s.spilled_messages,
                    "lru_misses": s.lru_misses,
                    "edges_scanned": s.edges_scanned,
                    "updated_vertices": s.updated_vertices,
                    "responding_vertices": s.responding_vertices,
                    "memory_bytes": s.memory_bytes,
                    "cpu_seconds": s.cpu_seconds,
                    "blocking_seconds": s.blocking_seconds,
                    "worker_seconds": {
                        str(w): t for w, t in s.worker_seconds.items()
                    },
                    "aggregates": dict(s.aggregates),
                }
                for s in self.supersteps
            ],
        }
        if self.fallback is not None:
            out["fallback"] = dict(self.fallback)
        return out

    def to_json(self, **dumps_kwargs) -> str:
        """``to_dict`` serialised with :func:`json.dumps`."""
        import json

        return json.dumps(self.to_dict(), **dumps_kwargs)

    def summary(self) -> Dict[str, float]:
        """Compact dict used by the benchmark reporters."""
        return {
            "mode": self.mode,
            "graph": self.graph_name,
            "program": self.program_name,
            "supersteps": self.num_supersteps,
            "runtime_s": round(self.runtime_seconds, 6),
            "compute_s": round(self.compute_seconds, 6),
            "load_s": round(self.load.elapsed_seconds, 6),
            "io_bytes": self.compute_io_bytes,
            "net_bytes": self.total_net_bytes,
            "messages": self.total_messages,
            "peak_memory": self.peak_memory_bytes,
            "restarts": self.restarts,
            "faults": len(self.faults),
        }

"""Performance metric ``Q_t``, Theorem 2's bound, and the hybrid switcher.

Section 5.3: at superstep *t* the engine evaluates

.. math::

   Q_t = \\frac{M_{co} \\cdot Byte_m}{s_{net}}
       + \\frac{IO(M_{disk})}{s_{rw}}
       - \\frac{IO(V^t_{rr})}{s_{rr}}
       + \\frac{IO(E_t) + IO(M_{disk}) - IO(\\bar{E}_t) - IO(F_t)}{s_{sr}}

(b-pull is preferable when ``Q_t >= 0``) and uses the Shang & Yu
persistence predictor: the value measured at *t* predicts superstep
*t + Δt* with Δt = 2, because superstep *t+1*'s mode is already
committed when *t* finishes.

The quantities of the side *not* currently running are estimated:

* while running b-pull, push's spill is ``max(0, M - B) * S_m`` and its
  edge reads are the out-edges of the responding vertices;
* while running push, b-pull's scan volume comes from
  :meth:`VEBlockStore.estimate_bpull_scan` over the responding flags,
  and ``M_co`` is extrapolated as ``M * R_co`` with ``R_co`` the
  concatenating/combining ratio observed in the last b-pull superstep.

Theorem 2 provides the initial mode: with every vertex broadcasting,
``B <= B_perp = |E|/2 - f`` implies ``C_io(push) >= C_io(b-pull)``, so
the job starts in b-pull below the bound and in push above it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.metrics import SuperstepMetrics
from repro.core.runtime import Runtime
from repro.obs.events import CAT_SWITCH
from repro.storage.disk import DiskProfile

__all__ = [
    "QInputs",
    "q_metric",
    "b_lower_bound",
    "initial_mode",
    "HybridController",
    "FixedController",
]

_MB = 1024.0 * 1024.0


@dataclass(frozen=True)
class QInputs:
    """The six byte/count quantities Eq. 11 consumes (one superstep)."""

    mco: int
    bytem: int
    io_mdisk: int
    io_edges_push: int
    io_edges_bpull: int
    io_fragments: int
    io_vrr: int


def q_metric(inputs: QInputs, profile: DiskProfile) -> float:
    """Evaluate Eq. 11 in modeled seconds; ``>= 0`` favours b-pull."""
    net = inputs.mco * inputs.bytem / (profile.network_mbps * _MB)
    write = inputs.io_mdisk / (profile.random_write_mbps * _MB)
    vrr = inputs.io_vrr / (profile.random_read_mbps * _MB)
    seq = (
        inputs.io_edges_push
        + inputs.io_mdisk
        - inputs.io_edges_bpull
        - inputs.io_fragments
    ) / (profile.seq_read_mbps * _MB)
    return net + write - vrr + seq


def b_lower_bound(num_edges: int, num_fragments: int) -> float:
    """Theorem 2's ``B_perp = |E|/2 - f`` (in messages)."""
    return num_edges / 2.0 - num_fragments


def initial_mode(
    total_buffer: Optional[int], num_edges: int, num_fragments: int
) -> str:
    """Pick the first superstep's mode from Theorem 2.

    ``total_buffer=None`` means unlimited memory, which trivially exceeds
    the bound, so the job starts in push (and the Q-metric — dominated by
    communication gains when no I/O is charged — will switch it to b-pull
    if profitable, matching Section 6.1's sufficient-memory observation).
    """
    if total_buffer is None:
        return "push"
    if total_buffer <= b_lower_bound(num_edges, num_fragments):
        return "bpull"
    return "push"


class FixedController:
    """Runs a single mode forever (push / pushm / bpull / pull)."""

    def __init__(self, mode: str) -> None:
        self._mode = "push" if mode == "pushm" else mode
        self.q_trace: list = []

    def mode_for(self, superstep: int) -> str:
        return self._mode

    def observe(self, rt: Runtime, metrics: SuperstepMetrics) -> None:
        """Fixed modes ignore dynamics."""


class HybridController:
    """Algorithm 3's Switcher: plans each superstep's mode.

    The plan is a mapping superstep -> {"push", "bpull"}.  Supersteps 1
    and 2 come from Theorem 2; thereafter the ``Q_t`` computed at the end
    of superstep *t* fixes the mode of superstep ``t + interval``.
    """

    def __init__(self, rt: Runtime, enabled: bool = True, interval: int = 2,
                 deadband: float = 0.0):
        self._enabled = enabled
        self._interval = max(1, interval)
        self._deadband = max(0.0, deadband)
        cfg = rt.config
        init = initial_mode(
            cfg.total_message_buffer,
            rt.graph.num_edges,
            rt.total_fragments(),
        )
        self._plan: Dict[int, str] = {
            t: init for t in range(1, self._interval + 1)
        }
        self._last = init
        # prior for the concatenating/combining ratio before any b-pull
        # superstep has been observed.
        self._rco = 0.5
        self.q_trace: list = []
        #: predicted vs actual inputs per superstep (Figs. 11-13).
        self.prediction_log: list = []

    # ------------------------------------------------------------------
    def mode_for(self, superstep: int) -> str:
        mode = self._plan.get(superstep)
        if mode is None:
            mode = self._last
            self._plan[superstep] = mode
        self._last = mode
        return mode

    # ------------------------------------------------------------------
    def observe(self, rt: Runtime, metrics: SuperstepMetrics) -> None:
        """Digest superstep *t*'s dynamics; plan superstep ``t + Δt``."""
        if metrics.mode == "push->bpull" or (
            metrics.superstep == 1 and metrics.raw_messages == 0
        ):
            # No messages move in a push->b-pull switch superstep (Fig. 6)
            # and none exist before superstep 1's updates, so M — and with
            # it Q_t — is unavailable; the plan carries forward.
            self.q_trace.append((metrics.superstep, None))
            return
        inputs = self._q_inputs(rt, metrics)
        q = q_metric(inputs, rt.config.cluster.disk)
        self.q_trace.append((metrics.superstep, q))
        self.prediction_log.append((metrics.superstep, inputs))
        target = metrics.superstep + self._interval
        planned: Optional[str] = None
        rule = None
        if self._enabled and target not in self._plan:
            if (
                self._deadband > 0.0
                and abs(q) < self._deadband * metrics.elapsed_seconds
            ):
                # predicted gain too small to repay a switch: stay put.
                planned = metrics.mode.split("->")[-1]
                rule = "deadband"
            else:
                planned = "bpull" if q >= 0 else "push"
                rule = "sign"
            self._plan[target] = planned
        tracer = rt.tracer
        if tracer.enabled:
            tracer.instant(
                "switch_decision", cat=CAT_SWITCH,
                superstep=metrics.superstep,
                args={
                    "q": q,
                    "mco": inputs.mco,
                    "bytem": inputs.bytem,
                    "io_mdisk": inputs.io_mdisk,
                    "io_edges_push": inputs.io_edges_push,
                    "io_edges_bpull": inputs.io_edges_bpull,
                    "io_fragments": inputs.io_fragments,
                    "io_vrr": inputs.io_vrr,
                    "mode": metrics.mode,
                    "planned_mode": planned,
                    "target_superstep": target if planned else None,
                    "rule": rule,
                },
            )

    # ------------------------------------------------------------------
    def _q_inputs(self, rt: Runtime, metrics: SuperstepMetrics) -> QInputs:
        cfg = rt.config
        sizes = cfg.sizes
        ran_pull = metrics.pull_requests > 0
        m = metrics.raw_messages
        bytem = sizes.message if rt.program.combinable else sizes.vertex_id
        if ran_pull:
            # measured b-pull side; estimate push's.
            mco = metrics.mco
            if m > 0:
                self._rco = mco / m
            io_mdisk = self._estimate_mdisk(rt, m)
            io_edges_push = sizes.edges(self._responding_out_edges(rt))
            io_edges_bpull = metrics.io_edges_bpull
            io_fragments = metrics.io_fragments
            io_vrr = metrics.io_vrr
        else:
            # measured push side; estimate b-pull's.
            mco = int(m * self._rco)
            io_mdisk = metrics.io_message_spill
            io_edges_push = metrics.io_edges_push
            io_edges_bpull = 0
            io_fragments = 0
            io_vrr = 0
            for worker in rt.workers:
                if worker.veblock is None:
                    continue
                edge_b, aux_b, vrr_b = worker.veblock.estimate_bpull_scan(
                    rt.resp_next
                )
                io_edges_bpull += edge_b
                io_fragments += aux_b
                io_vrr += vrr_b
        if not cfg.graph_on_disk:
            # Sufficient-memory scenario: no graph I/O exists on either
            # side, so Q_t reduces to the communication term and b-pull's
            # concatenating/combining gains dominate (Section 6.1).
            io_edges_push = io_edges_bpull = io_fragments = io_vrr = 0
        return QInputs(
            mco=mco,
            bytem=bytem,
            io_mdisk=io_mdisk,
            io_edges_push=io_edges_push,
            io_edges_bpull=io_edges_bpull,
            io_fragments=io_fragments,
            io_vrr=io_vrr,
        )

    def _estimate_mdisk(self, rt: Runtime, messages: int) -> int:
        buffer_total = rt.config.total_message_buffer
        if buffer_total is None:
            return 0
        spilled = max(0, messages - buffer_total)
        return rt.config.sizes.messages(spilled)

    def _responding_out_edges(self, rt: Runtime) -> int:
        """Edges push would read, in edge units (block-granular)."""
        total_bytes = 0
        have_adjacency = False
        for worker in rt.workers:
            if worker.adjacency is not None:
                have_adjacency = True
                total_bytes += worker.adjacency.estimate_edge_bytes(
                    rt.resp_next
                )
        if have_adjacency:
            return total_bytes // rt.config.sizes.edge
        graph = rt.graph
        return sum(
            graph.out_degree(v)
            for v, flag in enumerate(rt.resp_next)
            if flag
        )

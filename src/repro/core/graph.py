"""In-memory directed graph model and cluster partitioning.

The engine is a *simulation* of a disk-resident distributed system: graph
data physically live in Python memory, but every access made by an
execution mode is charged against the owning worker's
:class:`~repro.storage.disk.SimulatedDisk` according to the on-disk layout
it would have touched (adjacency list or VE-BLOCK).

Vertices are dense integer ids ``0..n-1``.  Edges are directed
``(src, dst, weight)``; weights default to 1.0 and are used by SSSP.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, List, Sequence, Tuple

__all__ = ["CSRView", "Graph", "Partition", "range_partition", "hash_partition"]

Edge = Tuple[int, float]


class CSRView:
    """Contiguous CSR (compressed sparse row) arrays over a :class:`Graph`.

    Built once by :meth:`Graph.csr` and shared by every consumer; the
    vectorized executor slices it per worker and per Vblock instead of
    walking Python adjacency lists.  Requires NumPy.

    Attributes
    ----------
    indptr:
        ``int64[n + 1]`` — row ``v``'s edges live at
        ``indices[indptr[v]:indptr[v + 1]]``.
    indices:
        ``int64[m]`` — destination vertex ids, in adjacency-list order.
    weights:
        ``float64[m]`` — edge weights, aligned with ``indices``.
    out_degrees:
        ``int64[n]`` — per-vertex out-degree (``indptr`` differences).
    """

    __slots__ = ("indptr", "indices", "weights", "out_degrees")

    def __init__(self, indptr, indices, weights, out_degrees) -> None:
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.out_degrees = out_degrees

    def row_span(self, lo: int, hi: int) -> Tuple[Any, Any, Any]:
        """Zero-copy slice for the contiguous vertex range ``[lo, hi)``.

        Returns ``(indptr_local, indices, weights)`` where
        ``indptr_local`` is rebased to start at 0 — the natural shape for
        a range-partition worker slice or a Vblock slice.
        """
        start = self.indptr[lo]
        stop = self.indptr[hi]
        return (
            self.indptr[lo : hi + 1] - start,
            self.indices[start:stop],
            self.weights[start:stop],
        )

    def gather_rows(self, rows) -> Tuple[Any, Any, Any]:
        """Row-major gather for an arbitrary (e.g. strided) vertex set.

        Returns ``(indptr_local, indices, weights)`` over exactly the
        edges of *rows*, preserving adjacency order within each row —
        the shape :meth:`row_span` produces, for hash partitions.
        """
        import numpy as np

        counts = self.out_degrees[rows]
        indptr_local = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr_local[1:])
        total = int(indptr_local[-1])
        if total == 0:
            return (
                indptr_local,
                self.indices[:0],
                self.weights[:0],
            )
        starts = np.repeat(self.indptr[rows], counts)
        offsets = (
            np.arange(total, dtype=np.int64)
            - np.repeat(indptr_local[:-1], counts)
        )
        flat = starts + offsets
        return indptr_local, self.indices[flat], self.weights[flat]


class Graph:
    """A directed graph with dense integer vertex ids.

    Parameters
    ----------
    num_vertices:
        Number of vertices; ids are ``0..num_vertices-1``.
    edges:
        Iterable of ``(src, dst)`` or ``(src, dst, weight)`` tuples.
    name:
        Optional label used in reports.
    """

    def __init__(
        self,
        num_vertices: int,
        edges: Iterable[Sequence] = (),
        name: str = "graph",
    ) -> None:
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        self.name = name
        self._n = num_vertices
        self._out: List[List[Edge]] = [[] for _ in range(num_vertices)]
        self._num_edges = 0
        self._csr: Any = None
        for edge in edges:
            if len(edge) == 2:
                src, dst = edge
                weight = 1.0
            else:
                src, dst, weight = edge
            self.add_edge(int(src), int(dst), float(weight))

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_edge(self, src: int, dst: int, weight: float = 1.0) -> None:
        if not (0 <= src < self._n and 0 <= dst < self._n):
            raise ValueError(
                f"edge ({src}, {dst}) out of range for {self._n} vertices"
            )
        self._out[src].append((dst, weight))
        self._num_edges += 1
        self._csr = None  # any cached CSR view is stale now

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def out_edges(self, vid: int) -> List[Edge]:
        """Out-edges of *vid* as ``(dst, weight)`` pairs."""
        return self._out[vid]

    def out_degree(self, vid: int) -> int:
        return len(self._out[vid])

    def vertices(self) -> range:
        return range(self._n)

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate all edges as ``(src, dst, weight)``."""
        for src in range(self._n):
            for dst, weight in self._out[src]:
                yield src, dst, weight

    def in_degrees(self) -> List[int]:
        """In-degree of every vertex (one full edge scan)."""
        degs = [0] * self._n
        for src in range(self._n):
            for dst, _w in self._out[src]:
                degs[dst] += 1
        return degs

    def reverse_adjacency(self) -> List[List[Edge]]:
        """In-edges of every vertex as ``(src, weight)`` pairs.

        Needed by the GraphLab-style pull baseline, whose gather phase
        reads a vertex's in-neighbors.
        """
        rev: List[List[Edge]] = [[] for _ in range(self._n)]
        for src in range(self._n):
            for dst, weight in self._out[src]:
                rev[dst].append((src, weight))
        return rev

    def csr(self) -> CSRView:
        """The cached :class:`CSRView` of this graph (requires NumPy).

        Built on first call in two C-level passes over the adjacency
        lists; invalidated by :meth:`add_edge`.  Raises ``RuntimeError``
        when NumPy is unavailable — callers that can fall back (the
        vectorized executor) check availability before asking.
        """
        if self._csr is None:
            try:
                import numpy as np
            except ImportError as exc:  # pragma: no cover - numpy-less host
                raise RuntimeError(
                    "Graph.csr() requires NumPy, which is not installed"
                ) from exc
            n = self._n
            m = self._num_edges
            out = self._out
            degrees = np.fromiter(map(len, out), dtype=np.int64, count=n)
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(degrees, out=indptr[1:])
            indices = np.fromiter(
                (dst for row in out for dst, _w in row),
                dtype=np.int64,
                count=m,
            )
            weights = np.fromiter(
                (w for row in out for _dst, w in row),
                dtype=np.float64,
                count=m,
            )
            self._csr = CSRView(indptr, indices, weights, degrees)
        return self._csr

    @property
    def average_degree(self) -> float:
        return self._num_edges / self._n if self._n else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Graph(name={self.name!r}, |V|={self._n}, |E|={self._num_edges})"
        )


@dataclass(frozen=True)
class Partition:
    """Assignment of vertices to ``num_workers`` computational nodes.

    ``starts`` is used only by range partitions; hash partitions keep it
    empty and route by modulo.  ``owner(vid)`` must be cheap: it is called
    once per message.
    """

    num_workers: int
    kind: str  # "range" | "hash"
    starts: Tuple[int, ...] = ()
    num_vertices: int = 0

    def owner(self, vid: int) -> int:
        if self.kind == "hash":
            return vid % self.num_workers
        # starts[i] is the first vid of worker i; find the last start <= vid.
        return bisect_right(self.starts, vid) - 1

    def vertices_of(self, worker: int) -> range:
        if self.kind == "hash":
            # range() with a stride enumerates exactly worker's vertices.
            return range(worker, self.num_vertices, self.num_workers)
        lo = self.starts[worker]
        hi = (
            self.starts[worker + 1]
            if worker + 1 < self.num_workers
            else self.num_vertices
        )
        return range(lo, hi)

    def size_of(self, worker: int) -> int:
        return len(self.vertices_of(worker))


def range_partition(num_vertices: int, num_workers: int) -> Partition:
    """Balanced contiguous ranges — the paper's default (Giraph range method)."""
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    base, extra = divmod(num_vertices, num_workers)
    starts = []
    cursor = 0
    for worker in range(num_workers):
        starts.append(cursor)
        cursor += base + (1 if worker < extra else 0)
    return Partition(
        num_workers=num_workers,
        kind="range",
        starts=tuple(starts),
        num_vertices=num_vertices,
    )


def hash_partition(num_vertices: int, num_workers: int) -> Partition:
    """Modulo partitioning — used by the partitioning ablation."""
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    return Partition(
        num_workers=num_workers,
        kind="hash",
        starts=(),
        num_vertices=num_vertices,
    )

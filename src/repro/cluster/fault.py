"""Fault injection: planned schedules and seeded chaos (Appendix A+).

HybridGraph's baseline fault-tolerance policy is to recompute the job
from scratch when a worker fails.  The engine's master loop plays the
Fault Detector: a :class:`FaultInjector` evaluates the configured
:class:`~repro.core.config.FaultSchedule` at the top of every superstep
and reports the faults that fire — worker crashes and kills abort the
superstep with :class:`WorkerFailure`; stragglers and checkpoint faults
degrade the run without aborting it.

Determinism: planned faults fire by superstep number, so they re-fire
(up to ``repeat``) when the superstep is re-executed after a restart.
Chaos faults draw from a :class:`random.Random` seeded with the
schedule's ``chaos_seed`` and held privately by the injector — the
engine calls :meth:`FaultInjector.fire` exactly once per superstep
attempt, in the same order for every executor tier, so a seeded chaos
run injects the identical fault sequence under batched, vectorized,
and any parallelism.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Union

from repro.core.config import FaultPlan, FaultSchedule

__all__ = ["WorkerFailure", "FaultInjector", "FiredFault", "as_schedule"]


class WorkerFailure(RuntimeError):
    """A computational node failed during a superstep."""

    def __init__(self, worker: int, superstep: int,
                 kind: str = "crash") -> None:
        super().__init__(
            f"worker {worker} failed during superstep {superstep} "
            f"({kind})"
        )
        self.worker = worker
        self.superstep = superstep
        self.kind = kind


@dataclass(frozen=True)
class FiredFault:
    """One fault the injector decided to fire this superstep."""

    kind: str
    worker: int
    superstep: int
    source: str  # "plan" | "chaos"
    factor: float = 1.0


def as_schedule(
    fault: Optional[Union[FaultPlan, FaultSchedule]]
) -> FaultSchedule:
    """Normalise the config's ``fault`` field to a FaultSchedule."""
    if fault is None:
        return FaultSchedule()
    if isinstance(fault, FaultPlan):
        return FaultSchedule(faults=(fault,))
    return fault


class FaultInjector:
    """Evaluates a fault schedule, once per superstep attempt.

    ``num_workers`` bounds the worker index chaos faults draw;
    planned-fault worker indices are validated against the cluster size
    at :meth:`Runtime.setup`.
    """

    def __init__(
        self,
        fault: Optional[Union[FaultPlan, FaultSchedule]],
        num_workers: int = 1,
    ) -> None:
        self._schedule = as_schedule(fault)
        self._remaining = [plan.repeat for plan in self._schedule.faults]
        self._rng = random.Random(self._schedule.chaos_seed)
        self._chaos_fired = 0
        self._num_workers = max(1, num_workers)
        #: every fault ever fired, in firing order (job-level history).
        self.fired: List[FiredFault] = []

    def fire(self, superstep: int) -> List[FiredFault]:
        """All faults firing at this superstep attempt (may be empty).

        Planned faults fire in schedule order; at most one chaos fault
        is appended after them.  Each call consumes one ``repeat`` of
        every matching plan and exactly one chaos draw, so the decision
        sequence depends only on (schedule, sequence of supersteps
        attempted) — never on the executor tier or wall clock.
        """
        fired: List[FiredFault] = []
        for index, plan in enumerate(self._schedule.faults):
            if plan.superstep == superstep and self._remaining[index] > 0:
                self._remaining[index] -= 1
                fired.append(FiredFault(
                    kind=plan.kind, worker=plan.worker,
                    superstep=superstep, source="plan",
                    factor=plan.factor,
                ))
        schedule = self._schedule
        if (
            schedule.chaos_probability > 0.0
            and self._chaos_fired < schedule.chaos_max_faults
        ):
            if self._rng.random() < schedule.chaos_probability:
                self._chaos_fired += 1
                kind = schedule.chaos_kinds[
                    self._rng.randrange(len(schedule.chaos_kinds))
                ]
                worker = self._rng.randrange(self._num_workers)
                factor = (
                    2.0 + 2.0 * self._rng.random()
                    if kind == "straggler" else 1.0
                )
                fired.append(FiredFault(
                    kind=kind, worker=worker, superstep=superstep,
                    source="chaos", factor=factor,
                ))
        self.fired.extend(fired)
        return fired

    def check(self, superstep: int) -> None:
        """Historical API: raise on the first crash-class fault firing.

        Kept for callers that only care about abort-style faults; the
        engine uses :meth:`fire` and dispatches every kind itself.
        """
        for fault in self.fire(superstep):
            if fault.kind in ("crash", "kill"):
                raise WorkerFailure(
                    fault.worker, superstep, kind=fault.kind
                )

"""Fault detection and recompute-from-scratch recovery (Appendix A).

HybridGraph's current fault-tolerance policy is to recompute the job
from scratch when a worker fails.  The engine's master loop plays the
Fault Detector: a :class:`FaultInjector` raises :class:`WorkerFailure`
at a planned superstep, the engine discards all iteration state and
restarts from superstep 1.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import FaultPlan

__all__ = ["WorkerFailure", "FaultInjector"]


class WorkerFailure(RuntimeError):
    """A computational node failed during a superstep."""

    def __init__(self, worker: int, superstep: int) -> None:
        super().__init__(
            f"worker {worker} failed during superstep {superstep}"
        )
        self.worker = worker
        self.superstep = superstep


class FaultInjector:
    """Fires one planned failure, then stays quiet across the restart."""

    def __init__(self, plan: Optional[FaultPlan]) -> None:
        self._plan = plan
        self._fired = False

    def check(self, superstep: int) -> None:
        if self._plan is None or self._fired:
            return
        if superstep == self._plan.superstep:
            self._fired = True
            raise WorkerFailure(self._plan.worker, superstep)

"""Checkpoint-based fault tolerance — the paper's stated future work.

Appendix A: HybridGraph currently recovers by recomputing from scratch
and the authors "plan to investigate a lightweight fault-tolerance
solution as future work".  This module provides it: every
``checkpoint_interval`` supersteps the engine snapshots the complete
iteration state —

* vertex values,
* the responding flags set during the superstep,
* the pending contents of every receiver-side message store (push
  family; b-pull has nothing pending by construction),
* the hybrid Switcher's plan and statistics,

and charges the sequential write of values + pending messages as modeled
checkpoint cost.  On a failure the engine restores the latest snapshot
and resumes from the following superstep instead of superstep 1.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.flags import FlagBitset
from repro.core.runtime import Runtime
from repro.obs.events import CAT_ENGINE
from repro.storage.records import RecordSizes

__all__ = [
    "Checkpoint",
    "CheckpointLog",
    "take_checkpoint",
    "restore_checkpoint",
]


@dataclass
class Checkpoint:
    """A consistent snapshot taken at the end of one superstep."""

    superstep: int
    prev_mode: Optional[str]
    values: List[Any]
    resp_prev: List[bool]
    #: worker id -> deep-copied message store (push family), or None.
    stores: Dict[int, Any] = field(default_factory=dict)
    controller_state: Any = None
    #: modeled bytes written to persist this snapshot.
    nbytes: int = 0
    #: aggregator totals published for the superstep after the snapshot.
    aggregates: Dict[str, Any] = field(default_factory=dict)

    def write_seconds(self, seq_write_mbps: float) -> float:
        return self.nbytes / (seq_write_mbps * 1024.0 * 1024.0)


class CheckpointLog:
    """The coordinator's in-memory snapshot log: keep-last-K + validity.

    Mirrors the durable store's retention and corruption semantics so
    in-memory-only jobs exercise the same recovery policy: the newest
    *valid* snapshot wins; a ``checkpoint_corrupt`` fault invalidates
    the newest entry, pushing recovery to the previous one (or to
    scratch).
    """

    def __init__(self, keep_last: int = 2) -> None:
        self._keep_last = max(1, keep_last)
        self._entries: List[List[Any]] = []  # [checkpoint, valid]

    def add(self, checkpoint: Checkpoint) -> None:
        self._entries.append([checkpoint, True])
        del self._entries[:-self._keep_last]

    def corrupt_latest(self) -> Optional[int]:
        """Invalidate the newest valid snapshot; returns its superstep."""
        for entry in reversed(self._entries):
            if entry[1]:
                entry[1] = False
                return entry[0].superstep
        return None

    def best(self) -> Optional[Checkpoint]:
        """The newest valid snapshot, or None."""
        for entry in reversed(self._entries):
            if entry[1]:
                return entry[0]
        return None


def _snapshot_bytes(rt: Runtime, sizes: RecordSizes) -> int:
    nbytes = sizes.vertices(rt.graph.num_vertices)
    nbytes += (rt.graph.num_vertices + 7) // 8  # the flag bitset
    for worker in rt.workers:
        if worker.message_store is not None:
            nbytes += sizes.messages(worker.message_store.pending_count)
    return nbytes


def take_checkpoint(
    rt: Runtime, superstep: int, prev_mode: Optional[str], controller: Any
) -> Checkpoint:
    """Snapshot the state needed to resume at ``superstep + 1``.

    Must be called *after* the engine swapped the responding flags, so
    ``rt.resp_prev`` holds the flags produced by *superstep*.
    """
    stores = {
        w.worker_id: copy.deepcopy(w.message_store)
        for w in rt.workers
        if w.message_store is not None
    }
    checkpoint = Checkpoint(
        superstep=superstep,
        prev_mode=prev_mode,
        values=list(rt.values),
        resp_prev=list(rt.resp_prev),
        stores=stores,
        controller_state=copy.deepcopy(controller),
        nbytes=_snapshot_bytes(rt, rt.config.sizes),
        aggregates=dict(rt.ctx.aggregates),
    )
    tracer = rt.tracer
    if tracer.enabled:
        tracer.span(
            "checkpoint", cat=CAT_ENGINE, start=tracer.clock,
            dur=checkpoint.write_seconds(
                rt.config.cluster.disk.seq_write_mbps
            ),
            superstep=superstep, args={"nbytes": checkpoint.nbytes},
        )
    return checkpoint


def restore_checkpoint(rt: Runtime, checkpoint: Checkpoint) -> Any:
    """Reset the runtime to *checkpoint*; returns the restored controller.

    The snapshot's own containers are deep-copied on the way back in so
    the same checkpoint can serve repeated failures.
    """
    tracer = rt.tracer
    if tracer.enabled:
        tracer.instant(
            "restore", cat=CAT_ENGINE, superstep=checkpoint.superstep,
            args={"nbytes": checkpoint.nbytes},
        )
    rt.values = list(checkpoint.values)
    # the vectorized executor caches dense views of rt.values and the
    # message stores — both are rebound below, so the cache is stale.
    rt.scratch.pop("vectorized", None)
    rt.resp_prev = FlagBitset.from_iterable(checkpoint.resp_prev)
    rt.resp_next = FlagBitset(rt.graph.num_vertices)
    # the supersteps after the snapshot are discarded and re-executed;
    # their traffic samples must not survive into the timeline.
    rt.network.truncate_timeline(checkpoint.superstep)
    # aggregator totals visible to the superstep after the snapshot —
    # without this, aggregate-reading programs would resume against the
    # failure-time totals instead of the checkpoint-time ones.
    rt.ctx.aggregates = dict(checkpoint.aggregates)
    for worker in rt.workers:
        if worker.message_store is None:
            continue
        restored = checkpoint.stores.get(worker.worker_id)
        if restored is None:
            worker.message_store.load()  # drain whatever is pending
        else:
            worker.message_store = copy.deepcopy(restored)
            # the deep copy (or unpickle, for durable snapshots) carried
            # a private clone of the worker's disk; rebind so post-restore
            # spills charge the live one.
            if hasattr(worker.message_store, "_disk"):
                worker.message_store._disk = worker.disk
    return copy.deepcopy(checkpoint.controller_state)

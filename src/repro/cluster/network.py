"""Simulated cluster network with packaging and traffic accounting.

Bytes only cross the network between *different* workers; local delivery
is free (as in Pregel).  Senders ship messages in packages of at most
``sending_threshold_bytes`` (Appendix E): each package pays a small
connection-setup cost, and the final partial package of a flow cannot be
overlapped with computation, so large thresholds waste network idle time
— the effect behind Fig. 26a.

``end_superstep`` turns the accumulated flows into per-worker modeled
network seconds (the Fig. 17 "blocking time") and a cluster traffic
sample for the Fig. 18 timeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.obs.events import CAT_NET
from repro.obs.tracer import NULL_TRACER
from repro.storage.disk import DiskProfile

__all__ = [
    "NetStats",
    "SimulatedNetwork",
    "PACKAGE_SETUP_SECONDS",
    "TAIL_STALL_FACTOR",
]

#: Modeled cost of building one network package/connection.  Small: the
#: measured Fig. 26(a) shows connection overhead is dwarfed by ...
PACKAGE_SETUP_SECONDS = 1e-6

#: ... the overlap loss of large send buffers: while a buffer fills no
#: bytes move, and the final partial package cannot be hidden behind
#: computation, so the stall grows with the sending threshold.
TAIL_STALL_FACTOR = 2.0


@dataclass
class NetStats:
    """Network activity of one superstep."""

    bytes_out: Dict[int, int] = field(default_factory=dict)
    bytes_in: Dict[int, int] = field(default_factory=dict)
    transfer_units: int = 0
    requests: int = 0
    packages: int = 0
    #: per-worker modeled seconds spent exchanging messages.
    worker_seconds: Dict[int, float] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_out.values())


class SimulatedNetwork:
    """Byte-accurate network shared by all workers of a job."""

    def __init__(
        self,
        num_workers: int,
        profile: DiskProfile,
        sending_threshold_bytes: int,
        request_bytes: int,
    ) -> None:
        if sending_threshold_bytes <= 0:
            raise ValueError("sending threshold must be positive")
        self._num_workers = num_workers
        self._profile = profile
        self._threshold = sending_threshold_bytes
        self._request_bytes = request_bytes
        self._flows: Dict[Tuple[int, int], int] = {}
        self._units = 0
        self._requests = 0
        #: cluster-wide (superstep, bytes) samples for the traffic timeline.
        self.timeline: List[Tuple[int, int]] = []
        self._superstep = 0
        #: observability: the runtime replaces this with the job tracer;
        #: the shared null tracer keeps standalone networks guard-free.
        self.tracer = NULL_TRACER

    # ------------------------------------------------------------------
    def begin_superstep(self, superstep: int) -> None:
        self._superstep = superstep
        self._flows = {}
        self._units = 0
        self._requests = 0

    def transfer(self, src: int, dst: int, nbytes: int, units: int) -> None:
        """Ship *nbytes* of message payload from *src* to *dst*.

        Local (src == dst) delivery is free and not counted.
        """
        self._units += units
        if src == dst or nbytes <= 0:
            return
        self._flows[(src, dst)] = self._flows.get((src, dst), 0) + nbytes

    def send_request(self, src: int, dst: int) -> None:
        """One block-centric pull request (a Vblock id)."""
        self._requests += 1
        if src == dst:
            return
        self._flows[(src, dst)] = (
            self._flows.get((src, dst), 0) + self._request_bytes
        )

    # ------------------------------------------------------------------
    # recovery support
    # ------------------------------------------------------------------
    def clear_timeline(self) -> None:
        """Drop every traffic sample (recompute-from-scratch recovery)."""
        self.timeline.clear()

    def truncate_timeline(self, last_superstep: int) -> None:
        """Drop samples of supersteps after *last_superstep*.

        Called when the engine restores a checkpoint taken at
        ``last_superstep``: the discarded supersteps will be re-executed
        and would otherwise leave duplicate (stale) samples polluting the
        Fig. 18-style traffic timeline.
        """
        self.timeline = [
            sample for sample in self.timeline
            if sample[0] <= last_superstep
        ]

    # ------------------------------------------------------------------
    def end_superstep(self) -> NetStats:
        stats = NetStats(transfer_units=self._units, requests=self._requests)
        speed = self._profile.network_mbps * 1024.0 * 1024.0
        out_seconds = {w: 0.0 for w in range(self._num_workers)}
        in_seconds = {w: 0.0 for w in range(self._num_workers)}
        for (src, dst), nbytes in self._flows.items():
            stats.bytes_out[src] = stats.bytes_out.get(src, 0) + nbytes
            stats.bytes_in[dst] = stats.bytes_in.get(dst, 0) + nbytes
            packages = max(1, math.ceil(nbytes / self._threshold))
            stats.packages += packages
            tail = min(self._threshold, nbytes)
            out_seconds[src] += (
                nbytes / speed
                + packages * PACKAGE_SETUP_SECONDS
                + TAIL_STALL_FACTOR * tail / speed
            )
            in_seconds[dst] += nbytes / speed
        for worker in range(self._num_workers):
            stats.worker_seconds[worker] = max(
                out_seconds[worker], in_seconds[worker]
            )
        self.timeline.append((self._superstep, stats.total_bytes))
        tracer = self.tracer
        if tracer.enabled:
            for worker in range(self._num_workers):
                out_bytes = stats.bytes_out.get(worker, 0)
                in_bytes = stats.bytes_in.get(worker, 0)
                if not (out_bytes or in_bytes):
                    continue
                tracer.instant(
                    "net", cat=CAT_NET, superstep=self._superstep,
                    worker=worker,
                    args={
                        "bytes_out": out_bytes,
                        "bytes_in": in_bytes,
                        "seconds": stats.worker_seconds[worker],
                    },
                )
        return stats

"""Durable checkpoint store: versioned, checksummed snapshot files.

The engine's in-memory snapshots (:mod:`repro.cluster.checkpoint`) die
with the coordinator.  This store serialises each
:class:`~repro.cluster.checkpoint.Checkpoint` — optionally together
with the :class:`~repro.core.metrics.JobMetrics` accumulated so far —
to a file under a checkpoint directory, so a killed driver process can
continue with ``run_job(..., JobConfig(resume_from=<dir>))``.

File format (``ckpt-<superstep>.bin``)::

    8 bytes   magic + format version      b"HGCKPT\\x00\\x01"
    4 bytes   section count               big-endian u32
    per section:
        2 bytes   name length             big-endian u16
        n bytes   section name            utf-8
        8 bytes   payload length          big-endian u64
        4 bytes   payload CRC32           big-endian u32
        k bytes   payload

Sections: ``meta`` (JSON: superstep, modeled nbytes), ``checkpoint``
(pickled Checkpoint), and optionally ``metrics`` (pickled JobMetrics).
Every payload carries its own CRC32, so corruption anywhere in the
file — header, flipped payload bytes, truncation — is detected on
load and the reader falls back to the previous file rather than
crashing or resuming from bad state.

Durability discipline: writes go to a temp file in the same directory,
are fsync'd, then atomically renamed over the final name.  A crash
mid-write leaves either the old file or no file — never a torn one.
Retention keeps the newest ``keep_last`` files and unlinks the rest.

The store is an *operational* layer: modeled checkpoint cost is charged
by the engine exactly as for in-memory snapshots, and nothing here
touches the cost model, so durable and in-memory runs stay
byte-identical in ``JobMetrics``.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.cluster.checkpoint import Checkpoint

__all__ = ["CheckpointStore", "CorruptSnapshot", "RestoredSnapshot"]

MAGIC = b"HGCKPT\x00\x01"
_PREFIX = "ckpt-"
_SUFFIX = ".bin"


class CorruptSnapshot(Exception):
    """A snapshot file failed validation (bad magic, CRC, truncation)."""


@dataclass
class RestoredSnapshot:
    """A successfully validated snapshot, plus how we got to it."""

    checkpoint: Checkpoint
    metrics: Optional[Any]
    path: Path
    #: files that were skipped as corrupt/unreadable before this one.
    skipped: List[str]


def _pack_section(name: str, payload: bytes) -> bytes:
    raw = name.encode("utf-8")
    return b"".join([
        struct.pack(">H", len(raw)), raw,
        struct.pack(">Q", len(payload)),
        struct.pack(">I", zlib.crc32(payload) & 0xFFFFFFFF),
        payload,
    ])


def _read_exact(buf: io.BufferedIOBase, n: int) -> bytes:
    data = buf.read(n)
    if len(data) != n:
        raise CorruptSnapshot(f"truncated: wanted {n} bytes, got {len(data)}")
    return data


class CheckpointStore:
    """Keep-last-K durable snapshots under one directory."""

    def __init__(self, directory: str, keep_last: int = 2) -> None:
        self.directory = Path(directory)
        self.keep_last = max(1, keep_last)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: superstep -> path for files THIS instance wrote (or adopted
        #: after a resume).  Retention, in-run recovery and chaos
        #: corruption act only on owned files, so stale snapshots a
        #: previous run left in the directory are never deleted,
        #: restored from, or corrupted by the current run.
        self._owned: Dict[int, Path] = {}

    # Writing ----------------------------------------------------------
    def save(self, checkpoint: Checkpoint,
             metrics: Optional[Any] = None) -> Path:
        """Atomically persist *checkpoint* (+ metrics) and apply retention.

        Re-saving the same superstep (a checkpoint re-taken after a
        restart rewound past it) atomically replaces the old file, which
        also heals a previously corrupted snapshot of that superstep.
        """
        sections: Dict[str, bytes] = {
            "meta": json.dumps({
                "superstep": checkpoint.superstep,
                "prev_mode": checkpoint.prev_mode,
                "nbytes": checkpoint.nbytes,
            }, sort_keys=True).encode("utf-8"),
            "checkpoint": pickle.dumps(
                checkpoint, protocol=pickle.HIGHEST_PROTOCOL
            ),
        }
        if metrics is not None:
            sections["metrics"] = pickle.dumps(
                metrics, protocol=pickle.HIGHEST_PROTOCOL
            )
        blob = MAGIC + struct.pack(">I", len(sections)) + b"".join(
            _pack_section(name, payload)
            for name, payload in sections.items()
        )
        final = self.directory / f"{_PREFIX}{checkpoint.superstep:08d}{_SUFFIX}"
        tmp = final.with_name(final.name + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, final)
        self._owned[checkpoint.superstep] = final
        self._apply_retention()
        return final

    def adopt(self, path: "Path | str") -> None:
        """Claim a pre-existing snapshot file as this run's own.

        Used after ``resume_from``: the snapshot the run restarted from
        becomes part of its lineage, so a failure before the first new
        save can still fall back to it through the owned-only path.
        """
        path = Path(path)
        at = self._superstep_of(path)
        if at is not None:
            self._owned[at] = path

    def _apply_retention(self) -> None:
        owned = sorted(
            (at, path) for at, path in self._owned.items() if path.exists()
        )
        for at, stale in owned[:-self.keep_last]:
            try:
                stale.unlink()
            except OSError:
                pass
            self._owned.pop(at, None)

    # Reading ----------------------------------------------------------
    def files(self) -> List[Path]:
        """Snapshot files, oldest first (superstep order)."""
        return sorted(
            p for p in self.directory.glob(f"{_PREFIX}*{_SUFFIX}")
            if p.is_file()
        )

    @staticmethod
    def _superstep_of(path: Path) -> Optional[int]:
        stem = path.name[len(_PREFIX):-len(_SUFFIX)]
        try:
            return int(stem)
        except ValueError:
            return None

    def _load_file(self, path: Path) -> RestoredSnapshot:
        with open(path, "rb") as handle:
            if _read_exact(handle, len(MAGIC)) != MAGIC:
                raise CorruptSnapshot("bad magic or unsupported version")
            (count,) = struct.unpack(">I", _read_exact(handle, 4))
            if count > 64:
                raise CorruptSnapshot(f"implausible section count {count}")
            sections: Dict[str, bytes] = {}
            for _ in range(count):
                (name_len,) = struct.unpack(">H", _read_exact(handle, 2))
                name = _read_exact(handle, name_len).decode("utf-8")
                (size,) = struct.unpack(">Q", _read_exact(handle, 8))
                (crc,) = struct.unpack(">I", _read_exact(handle, 4))
                payload = _read_exact(handle, size)
                if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                    raise CorruptSnapshot(f"CRC mismatch in section {name!r}")
                sections[name] = payload
        if "checkpoint" not in sections:
            raise CorruptSnapshot("missing checkpoint section")
        try:
            checkpoint = pickle.loads(sections["checkpoint"])
            metrics = (
                pickle.loads(sections["metrics"])
                if "metrics" in sections else None
            )
        except Exception as exc:  # pickle corruption that passed CRC
            raise CorruptSnapshot(f"unpicklable snapshot: {exc}") from exc
        if not isinstance(checkpoint, Checkpoint):
            raise CorruptSnapshot("checkpoint section is not a Checkpoint")
        return RestoredSnapshot(
            checkpoint=checkpoint, metrics=metrics, path=path, skipped=[]
        )

    def load_latest(
        self,
        max_superstep: Optional[int] = None,
        owned_only: bool = False,
    ) -> Optional[RestoredSnapshot]:
        """Newest snapshot that validates, or None (never raises).

        Walks newest → oldest; every corrupt/truncated/unreadable file
        is skipped (and recorded in ``RestoredSnapshot.skipped``) — the
        recovery policy's final fallback, recompute-from-scratch, is
        signalled by returning None.

        ``max_superstep`` bounds the search: files at a later superstep
        (or with an unparsable name) are ignored, not merely skipped.
        ``owned_only`` restricts the walk to files this instance wrote
        or adopted.  In-run recovery uses both, so stale files left in
        the directory by an earlier run can neither leap recovery
        *forward* past the failure point nor shadow the current run's
        own snapshots; ``resume_from`` reads unrestricted.
        """
        skipped: List[str] = []
        for path in reversed(self.files()):
            at = self._superstep_of(path)
            if max_superstep is not None:
                if at is None or at > max_superstep:
                    continue
            if owned_only and (at is None or self._owned.get(at) != path):
                continue
            try:
                snapshot = self._load_file(path)
            except (CorruptSnapshot, OSError) as exc:
                skipped.append(f"{path.name}: {exc}")
                continue
            snapshot.skipped = skipped
            return snapshot
        return None

    # Fault-injection hook --------------------------------------------
    def corrupt_latest(self, owned_only: bool = False) -> Optional[Path]:
        """Flip payload bytes of the newest *valid* file (chaos testing).

        Mirrors :meth:`CheckpointLog.corrupt_latest` so the in-memory
        and durable views of a ``checkpoint_corrupt`` fault agree on
        which snapshot survives; the engine passes ``owned_only`` so a
        chaos fault corrupts the current run's newest snapshot, never a
        stale bystander file.
        """
        for path in reversed(self.files()):
            if owned_only:
                at = self._superstep_of(path)
                if at is None or self._owned.get(at) != path:
                    continue
            try:
                self._load_file(path)
            except (CorruptSnapshot, OSError):
                continue  # already corrupt; hit the previous valid one
            data = bytearray(path.read_bytes())
            # corrupt mid-payload, past the header, so the CRC check —
            # not the frame parser — is what catches it.
            pivot = max(len(MAGIC) + 4, len(data) // 2)
            for offset in range(pivot, min(pivot + 8, len(data))):
                data[offset] ^= 0xFF
            path.write_bytes(bytes(data))
            return path
        return None

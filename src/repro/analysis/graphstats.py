"""Graph statistics relevant to transport choice.

Users bringing their own graphs can check, before running anything,
which side of the paper's trade-offs they are on: degree skew and
id-locality drive the fragment count (Theorem 1), and the fragment count
against |E|/2 decides Theorem 2's initial transport.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.costmodel import expected_fragments
from repro.core.graph import Graph

__all__ = ["GraphStats", "compute_stats"]


def _percentile(sorted_values: List[int], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = q * (len(sorted_values) - 1)
    lo = int(idx)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = idx - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


@dataclass(frozen=True)
class GraphStats:
    """Structural summary of a graph."""

    name: str
    num_vertices: int
    num_edges: int
    avg_degree: float
    max_out_degree: int
    out_degree_p50: float
    out_degree_p99: float
    #: max out-degree over average — the skew that hurts b-pull on twi.
    skew_ratio: float
    #: fraction of edges landing within +-1% of |V| of their source id.
    locality_index: float
    #: Theorem 1's expected total fragments for the given block count.
    expected_fragments: float
    #: Theorem 2's bound |E|/2 - E[f]; a buffer below it favours b-pull.
    b_lower_bound: float

    def summary(self) -> str:
        lines = [
            f"graph {self.name}: |V|={self.num_vertices:,} "
            f"|E|={self.num_edges:,} avg degree {self.avg_degree:.1f}",
            f"out-degree p50/p99/max: {self.out_degree_p50:.0f}/"
            f"{self.out_degree_p99:.0f}/{self.max_out_degree} "
            f"(skew {self.skew_ratio:.1f}x)",
            f"id-locality index: {self.locality_index:.2f}",
            f"expected fragments: {self.expected_fragments:,.0f} "
            f"({self.expected_fragments / max(1, self.num_edges):.2f} "
            "per edge)",
            f"Theorem 2 bound B_perp ~= {self.b_lower_bound:,.0f} messages",
        ]
        return "\n".join(lines)


def compute_stats(graph: Graph, num_blocks: int = 100) -> GraphStats:
    """Summarise *graph* assuming a VE-BLOCK layout of *num_blocks*.

    The fragment expectation uses Theorem 1's uniform-placement model,
    which is an upper bound when the graph has id-locality (clustered
    edges produce fewer fragments than uniform ones).
    """
    if num_blocks <= 0:
        raise ValueError("num_blocks must be positive")
    degrees = sorted(graph.out_degree(v) for v in graph.vertices())
    window = max(1, graph.num_vertices // 100)
    local = 0
    expected = 0.0
    for v in graph.vertices():
        expected += expected_fragments(num_blocks, graph.out_degree(v))
    for src, dst, _w in graph.edges():
        distance = abs(src - dst)
        distance = min(distance, graph.num_vertices - distance)
        if distance <= window:
            local += 1
    avg = graph.average_degree
    max_deg = degrees[-1] if degrees else 0
    return GraphStats(
        name=graph.name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        avg_degree=avg,
        max_out_degree=max_deg,
        out_degree_p50=_percentile(degrees, 0.50),
        out_degree_p99=_percentile(degrees, 0.99),
        skew_ratio=(max_deg / avg) if avg else 0.0,
        locality_index=(local / graph.num_edges) if graph.num_edges else 0.0,
        expected_fragments=expected,
        b_lower_bound=graph.num_edges / 2.0 - expected,
    )

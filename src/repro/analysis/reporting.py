"""Plain-text tables for the benchmark harness.

Every bench prints the same rows/series the paper's figure reports, via
these helpers, so ``pytest benchmarks/ --benchmark-only -s`` regenerates
a textual version of the evaluation section.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

__all__ = ["format_table", "print_table", "fmt_bytes", "fmt_seconds"]


def fmt_bytes(nbytes: float) -> str:
    """Human-readable byte count."""
    value = float(nbytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            return f"{value:,.1f}{unit}" if unit != "B" else f"{value:,.0f}B"
        value /= 1024.0
    return f"{value:,.1f}TB"


def fmt_seconds(seconds: float) -> str:
    if seconds >= 100:
        return f"{seconds:,.0f}s"
    if seconds >= 1:
        return f"{seconds:,.2f}s"
    return f"{seconds * 1000.0:,.2f}ms"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(
            " | ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: Optional[str] = None,
) -> None:
    print()
    print(format_table(headers, rows, title=title))

"""Closed-form pieces of the paper's cost model (Section 4.3, 5.1).

* Theorem 1: the expected number of fragments of a vertex with
  out-degree ``d`` under ``V`` uniform Vblocks is
  ``g(V) = V * (1 - (1 - 1/V)^d)``, increasing in ``V``;
* Eq. 7 / Eq. 8: per-superstep I/O bytes of push and b-pull;
* Theorem 2: ``B <= |E|/2 - f`` implies ``C_io(push) >= C_io(b-pull)``
  when every vertex broadcasts.
"""

from __future__ import annotations

from repro.core.metrics import SuperstepMetrics

__all__ = [
    "expected_fragments",
    "cio_push",
    "cio_bpull",
    "cio_push_of",
    "cio_bpull_of",
    "theorem2_premise",
]


def expected_fragments(num_blocks: int, out_degree: int) -> float:
    """Theorem 1's ``g(V)``: expected fragments of one vertex.

    With edges landing in each of ``V`` Eblocks with probability
    ``1/V``, the chance block *j* receives at least one of ``d`` edges is
    ``1 - (1 - 1/V)^d``; summing over blocks gives ``g``.
    """
    if num_blocks <= 0:
        raise ValueError("num_blocks must be positive")
    if out_degree < 0:
        raise ValueError("out_degree must be non-negative")
    v = float(num_blocks)
    return v * (1.0 - (1.0 - 1.0 / v) ** out_degree)


def cio_push(
    vertex_bytes: int,
    edge_bytes: int,
    mdisk_bytes: int,
) -> int:
    """Eq. 7: ``C_io(push) = IO(V_t) + IO(E_t) + 2 IO(M_disk)``."""
    return vertex_bytes + edge_bytes + 2 * mdisk_bytes


def cio_bpull(
    vertex_bytes: int,
    edge_bytes: int,
    fragment_bytes: int,
    vrr_bytes: int,
) -> int:
    """Eq. 8: ``C_io(b-pull) = IO(V_t) + IO(Ē_t) + IO(F_t) + IO(V_rr)``."""
    return vertex_bytes + edge_bytes + fragment_bytes + vrr_bytes


def cio_push_of(step: SuperstepMetrics) -> int:
    """Eq. 7 evaluated from a measured push superstep."""
    return cio_push(step.io_vertex, step.io_edges_push, step.io_message_spill)


def cio_bpull_of(step: SuperstepMetrics) -> int:
    """Eq. 8 evaluated from a measured b-pull superstep."""
    return cio_bpull(
        step.io_vertex, step.io_edges_bpull, step.io_fragments, step.io_vrr
    )


def theorem2_premise(
    buffer_messages: int, num_edges: int, num_fragments: int
) -> bool:
    """Whether Theorem 2 guarantees ``C_io(push) >= C_io(b-pull)``."""
    return buffer_messages <= num_edges / 2.0 - num_fragments

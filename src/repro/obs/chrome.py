"""Chrome-trace (``chrome://tracing`` / Perfetto) JSON export.

The Trace Event Format maps naturally onto the simulator: one process
(the modeled cluster), one thread per track.  Track 0 is the engine
(superstep spans, phases, checkpoints, switch decisions); track ``w+1``
is worker ``w`` (its pre-barrier span, barrier wait, disk and network
instants).  Timestamps are the *modeled* clock converted to
microseconds — what you see in Perfetto is the cost model's timeline,
not wall-clock.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

from repro.obs.events import INSTANT, SPAN, TraceEvent

__all__ = ["to_chrome_events", "chrome_trace_json", "export_chrome_trace"]

_PID = 0
_ENGINE_TID = 0


def _tid(event: TraceEvent) -> int:
    return _ENGINE_TID if event.worker is None else event.worker + 1


def to_chrome_events(events: Iterable[TraceEvent]) -> List[Dict[str, Any]]:
    """Convert tracer events to Trace Event Format dicts.

    Emits ``M`` (metadata) records naming the process and every track,
    then one ``X`` (complete span) or ``i`` (instant) record per event.
    """
    out: List[Dict[str, Any]] = []
    events = list(events)
    workers = sorted(
        {e.worker for e in events if e.worker is not None}
    )
    out.append({
        "name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
        "args": {"name": "hybridgraph (modeled clock)"},
    })
    for tid, label in [(_ENGINE_TID, "engine")] + [
        (w + 1, f"worker {w}") for w in workers
    ]:
        out.append({
            "name": "thread_name", "ph": "M", "pid": _PID, "tid": tid,
            "args": {"name": label},
        })
        out.append({
            "name": "thread_sort_index", "ph": "M", "pid": _PID,
            "tid": tid, "args": {"sort_index": tid},
        })
    for event in events:
        args = dict(event.args)
        if event.superstep is not None:
            args.setdefault("superstep", event.superstep)
        record: Dict[str, Any] = {
            "name": event.name,
            "cat": event.cat,
            "pid": _PID,
            "tid": _tid(event),
            "ts": event.ts * 1e6,
            "args": args,
        }
        if event.kind == SPAN:
            record["ph"] = "X"
            record["dur"] = event.dur * 1e6
        elif event.kind == INSTANT:
            record["ph"] = "i"
            record["s"] = "t"  # thread-scoped instant
        else:  # pragma: no cover - future kinds
            continue
        out.append(record)
    return out


def chrome_trace_json(events: Iterable[TraceEvent]) -> str:
    """The full Chrome-trace document as a JSON string."""
    return json.dumps({
        "traceEvents": to_chrome_events(events),
        "displayTimeUnit": "ms",
        "otherData": {"clock": "modeled seconds, scaled to us"},
    })


def export_chrome_trace(
    events: Iterable[TraceEvent], path: Union[str, Path]
) -> Path:
    """Write the Chrome-trace JSON for *events* to *path*."""
    path = Path(path)
    path.write_text(chrome_trace_json(events), encoding="utf-8")
    return path

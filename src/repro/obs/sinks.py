"""Pluggable event sinks: ring buffer, JSONL file, Chrome-trace file.

A sink is anything with ``emit(event)`` and ``close()``.  The tracer
fans every event out to all of its sinks; sinks never see the engine,
only :class:`~repro.obs.events.TraceEvent` objects, so adding a new
transport (a socket, a metrics service) means implementing these two
methods.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import IO, Iterator, List, Optional, Union

from repro.obs.events import TraceEvent

__all__ = ["Sink", "RingBufferSink", "JsonlSink", "ChromeTraceSink"]


class Sink:
    """Base class / protocol for event sinks."""

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (idempotent)."""


class RingBufferSink(Sink):
    """Keep the last *capacity* events in memory (``None`` = unbounded).

    The default sink: cheap enough to leave on, and the summary /
    Chrome-export conveniences on the tracer read from it.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("ring buffer capacity must be positive")
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)

    def emit(self, event: TraceEvent) -> None:
        self._events.append(event)

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def clear(self) -> None:
        self._events.clear()


class JsonlSink(Sink):
    """Stream events to a file, one JSON object per line.

    The file is opened lazily on the first event, so constructing a
    tracer config never touches the filesystem.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh: Optional[IO[str]] = None
        self.count = 0

    def emit(self, event: TraceEvent) -> None:
        if self._fh is None:
            self._fh = self.path.open("w", encoding="utf-8")
        self._fh.write(json.dumps(event.to_dict()) + "\n")
        self.count += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class ChromeTraceSink(Sink):
    """Buffer events and write a Chrome-trace JSON file on ``close()``.

    The output opens directly in ``chrome://tracing`` or Perfetto
    (https://ui.perfetto.dev); see :mod:`repro.obs.chrome` for the
    mapping.  Buffering is unavoidable: the Chrome JSON format needs the
    worker set up front for the track-name metadata.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._events: List[TraceEvent] = []
        self.count = 0

    def emit(self, event: TraceEvent) -> None:
        self._events.append(event)
        self.count += 1

    def close(self) -> None:
        from repro.obs.chrome import export_chrome_trace

        export_chrome_trace(self._events, self.path)

"""Typed trace events: the vocabulary of the observability subsystem.

Every event carries a *modeled* timestamp (the simulator's clock, in
modeled seconds — the same clock :attr:`JobMetrics.runtime_seconds` is
expressed in), an optional duration (spans), and attribution fields:
which superstep and which worker the event belongs to.  Sinks consume
:class:`TraceEvent` objects; the Chrome exporter maps ``worker`` to a
track and ``ts``/``dur`` to microseconds.

Event taxonomy (``name`` / ``kind`` / ``cat``):

====================  =======  ==========  =================================
name                  kind     cat         meaning
====================  =======  ==========  =================================
``load_graph``        span     engine      graph loading phase (Fig. 16)
``superstep``         span     engine      one BSP superstep, barrier to
                                           barrier; args carry mode/counts
``load``              span     phase       drain the receiver message store
``pullRes``           span     phase       Pull-Request/Pull-Respond gather
``update``            span     phase       the update() sweep (IO(V_t))
``pushRes``           span     phase       pushRes + routing + spill
``worker``            span     worker      one worker's superstep, before
                                           the barrier (cpu+io+net)
``barrier``           span     worker      idle wait for the slowest worker
``disk``              instant  disk        per-worker disk charge, by class
``net``               instant  net         per-worker network transfer
``checkpoint``        span     engine      snapshot write (modeled seconds)
``restore``           instant  engine      checkpoint restored
``fault``             instant  engine      injected worker failure
``restart``           instant  engine      recovery started (args: policy)
``switch_decision``   instant  switch      one Q_t evaluation with the
                                           Eq. 11 inputs and the planned
                                           mode
``mode_switch``       instant  engine      a switch superstep (Fig. 6) ran
``process_busy``      span     parallel    one pool process computing its
                                           shard of a round (wall clock)
``process_barrier``   span     parallel    that process waiting for the
                                           round's slowest sibling
``merge``             span     parallel    the coordinator folding the
                                           round's shards (wall clock)
====================  =======  ==========  =================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = [
    "TraceEvent",
    "SPAN",
    "INSTANT",
    "CAT_ENGINE",
    "CAT_PHASE",
    "CAT_WORKER",
    "CAT_DISK",
    "CAT_NET",
    "CAT_SWITCH",
    "CAT_PARALLEL",
    "PHASE_NAMES",
]

#: event kinds
SPAN = "span"
INSTANT = "instant"

#: event categories
CAT_ENGINE = "engine"
CAT_PHASE = "phase"
CAT_WORKER = "worker"
CAT_DISK = "disk"
CAT_NET = "net"
CAT_SWITCH = "switch"
CAT_PARALLEL = "parallel"

#: the per-superstep phases, in execution order (Section 5.2's
#: decoupling: input mechanism, then update, then output mechanism).
PHASE_NAMES = ("load", "pullRes", "update", "pushRes")


@dataclass
class TraceEvent:
    """One observation: a span (has ``dur``) or an instant.

    ``ts`` and ``dur`` are modeled seconds.  ``worker`` is ``None`` for
    cluster-level events (superstep spans, switch decisions, ...).
    """

    name: str
    kind: str
    cat: str
    ts: float
    dur: float = 0.0
    superstep: Optional[int] = None
    worker: Optional[int] = None
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.ts + self.dur

    def to_dict(self) -> Dict[str, Any]:
        """JSON-pure dict (the JSONL sink writes one per line)."""
        out: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "cat": self.cat,
            "ts": self.ts,
        }
        if self.kind == SPAN:
            out["dur"] = self.dur
        if self.superstep is not None:
            out["superstep"] = self.superstep
        if self.worker is not None:
            out["worker"] = self.worker
        if self.args:
            out["args"] = dict(self.args)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceEvent":
        """Inverse of :meth:`to_dict` (reload a JSONL trace)."""
        return cls(
            name=data["name"],
            kind=data["kind"],
            cat=data["cat"],
            ts=data["ts"],
            dur=data.get("dur", 0.0),
            superstep=data.get("superstep"),
            worker=data.get("worker"),
            args=dict(data.get("args", {})),
        )

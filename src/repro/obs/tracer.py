"""The tracer: typed event emission against the modeled clock.

Two implementations share one interface:

* :class:`Tracer` — the real thing: stamps events with the modeled
  clock and fans them out to its sinks;
* :data:`NULL_TRACER` — a module-level singleton whose ``enabled`` is
  ``False`` and whose methods are no-ops.  Hot paths hold the tracer in
  a local and guard event construction with ``if tracer.enabled:``, so
  a job without tracing pays one attribute lookup per guard and never
  builds an event object.

Observation must not perturb the model: tracer methods only *read*
engine state, and every instrumentation site in the engine is reached
only through the ``enabled`` guard, so ``JobMetrics`` of a traced run is
byte-identical to an untraced one (asserted by
``tests/obs/test_nonperturbation.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.obs.events import INSTANT, SPAN, TraceEvent
from repro.obs.sinks import ChromeTraceSink, JsonlSink, RingBufferSink, Sink

__all__ = ["Tracer", "NULL_TRACER", "TraceConfig", "resolve_tracer"]


class Tracer:
    """Emit spans and instants on the modeled clock, fan out to sinks.

    ``clock`` is the cumulative modeled time (seconds); the engine
    advances it at superstep and checkpoint boundaries, so events
    emitted mid-superstep are stamped with the superstep's start time.
    """

    enabled = True

    def __init__(self, sinks: Optional[Sequence[Sink]] = None) -> None:
        if sinks is None:
            sinks = [RingBufferSink()]
        self.sinks: List[Sink] = list(sinks)
        self._ring: Optional[RingBufferSink] = next(
            (s for s in self.sinks if isinstance(s, RingBufferSink)), None
        )
        self.clock = 0.0

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def emit(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def span(
        self,
        name: str,
        *,
        cat: str,
        start: float,
        dur: float,
        superstep: Optional[int] = None,
        worker: Optional[int] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> TraceEvent:
        """Record a completed span (the modeled clock knows durations
        up front, so there are no open/close pairs)."""
        event = TraceEvent(
            name=name, kind=SPAN, cat=cat, ts=start, dur=dur,
            superstep=superstep, worker=worker, args=args or {},
        )
        self.emit(event)
        return event

    def instant(
        self,
        name: str,
        *,
        cat: str,
        ts: Optional[float] = None,
        superstep: Optional[int] = None,
        worker: Optional[int] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> TraceEvent:
        event = TraceEvent(
            name=name, kind=INSTANT, cat=cat,
            ts=self.clock if ts is None else ts,
            superstep=superstep, worker=worker, args=args or {},
        )
        self.emit(event)
        return event

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    def advance(self, dt: float) -> None:
        """Move the modeled clock forward (engine-driven)."""
        self.clock += dt

    # ------------------------------------------------------------------
    # lifecycle + conveniences
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush every sink (writes out file-backed sinks)."""
        for sink in self.sinks:
            sink.close()

    @property
    def events(self) -> List[TraceEvent]:
        """Events retained by the first ring-buffer sink ([] if none)."""
        return self._ring.events if self._ring is not None else []

    def summary(self):
        """Per-superstep phase/worker roll-up of the retained events."""
        from repro.obs.summary import summarize

        return summarize(self.events)

    def chrome_json(self) -> str:
        from repro.obs.chrome import chrome_trace_json

        return chrome_trace_json(self.events)

    def export_chrome(self, path: Union[str, Path]) -> Path:
        from repro.obs.chrome import export_chrome_trace

        return export_chrome_trace(self.events, path)


class _NullTracer:
    """No-op tracer: the zero-overhead disabled default.

    Shares the :class:`Tracer` surface so instrumentation sites never
    branch on type — only on the ``enabled`` attribute.
    """

    enabled = False
    clock = 0.0
    sinks: List[Sink] = []
    events: List[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        pass

    def span(self, name: str, **kwargs: Any) -> None:
        pass

    def instant(self, name: str, **kwargs: Any) -> None:
        pass

    def advance(self, dt: float) -> None:
        pass

    def close(self) -> None:
        pass


#: the module-level disabled tracer every untraced job shares.
NULL_TRACER = _NullTracer()


@dataclass(frozen=True)
class TraceConfig:
    """Declarative tracing spec for :class:`~repro.core.config.JobConfig`.

    ``out``/``format`` add a file sink (``"jsonl"`` streams events,
    ``"chrome"`` writes a Chrome-trace JSON on close); a ring buffer of
    ``buffer`` events (``None`` = unbounded) is always attached so the
    :attr:`JobResult.trace` handle can summarise and re-export.
    """

    out: Optional[str] = None
    format: str = "jsonl"
    buffer: Optional[int] = None

    def __post_init__(self) -> None:
        if self.format not in ("jsonl", "chrome"):
            raise ValueError(
                f"unknown trace format {self.format!r}; "
                "expected 'jsonl' or 'chrome'"
            )

    def build(self) -> Tracer:
        sinks: List[Sink] = [RingBufferSink(self.buffer)]
        if self.out is not None:
            if self.format == "chrome":
                sinks.append(ChromeTraceSink(self.out))
            else:
                sinks.append(JsonlSink(self.out))
        return Tracer(sinks)


def resolve_tracer(spec: Any) -> Any:
    """Normalise ``JobConfig.trace`` into a tracer.

    Accepts ``None``/``False`` (disabled → :data:`NULL_TRACER`),
    ``True`` (in-memory tracer), a :class:`TraceConfig`, a ready
    :class:`Tracer`, or a path string (JSONL to that file).
    """
    if spec is None or spec is False:
        return NULL_TRACER
    if spec is True:
        return Tracer()
    if isinstance(spec, (Tracer, _NullTracer)):
        return spec
    if isinstance(spec, TraceConfig):
        return spec.build()
    if isinstance(spec, (str, Path)):
        return TraceConfig(out=str(spec)).build()
    raise TypeError(
        "JobConfig.trace must be None, bool, a path, a TraceConfig, or "
        f"a Tracer; got {type(spec).__name__}"
    )

"""Derive per-phase spans from :class:`SuperstepMetrics` + the cost model.

The executors charge I/O and CPU as they go but only keep cluster-wide
sums per superstep; phase attribution is *re-derived* here from those
sums and the same cost model that produced them.  That has two virtues:

* the hot path stays untouched — no mid-loop clock snapshots, so a
  traced run produces byte-identical :class:`JobMetrics`;
* batched and reference executors emit *identical* events (not merely
  identical structure), because both feed identical metrics through the
  same derivation — which is exactly what the equivalence suite pins.

Attribution rules (Section 5.2's decoupling — input mechanism, update,
output mechanism):

``load``
    spilled-message read-back (``io_message_read`` at sequential-read
    speed) plus the sort-merge CPU of those messages.  Present when the
    input mechanism is the stored message store.
``pullRes``
    Pull-Request/Pull-Respond gather: fragment + Eblock sequential
    reads, ``IO(V_rr)`` random reads, edge-scan CPU, plus message CPU
    and blocking when the *output* side is not pushing (b-pull generates
    messages inside the gather).  Present when the input mechanism is
    pull and the superstep had a previous superstep to pull from.
``update``
    ``updated_vertices`` CPU plus ``IO(V_t)`` (half sequential read,
    half sequential write — the update sweep reads and rewrites the
    vertex file).
``pushRes``
    message-generation CPU, adjacency-edge sequential reads, spill
    random writes, and barrier-blocking transfer time.  Present when
    the output mechanism is push.

Phase durations are *modeled cluster sums* while the superstep span is
the barrier-to-barrier maximum over workers, so the children are scaled
proportionally to tile the parent exactly; the unscaled value is kept
in each span's ``args["modeled_seconds"]``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs.events import (
    CAT_DISK,
    CAT_ENGINE,
    CAT_PHASE,
    CAT_WORKER,
)
from repro.storage.disk import IOCounters

__all__ = ["derive_phases", "derive_pull_phases", "emit_superstep_events"]

#: (name, modeled seconds, args) triples, in execution order.
PhaseList = List[Tuple[str, float, Dict[str, Any]]]


def derive_phases(cfg, metrics, in_mech: str, out_mech: str) -> PhaseList:
    """Phase breakdown for the push/b-pull family executors.

    *in_mech* is ``"stored"`` or ``"pull"``; *out_mech* is ``"push"`` or
    ``"flag"`` — the same mechanism pair the engine hands the executor.
    """
    disk = cfg.cluster.disk
    cpu = cfg.cluster.cpu
    sizes = cfg.sizes
    phases: PhaseList = []

    push_edges = metrics.io_edges_push // sizes.edge if sizes.edge else 0
    gather_edges = max(metrics.edges_scanned - push_edges, 0)
    pushing = out_mech == "push"

    if in_mech == "stored":
        spilled = (
            metrics.io_message_read // sizes.message if sizes.message else 0
        )
        dur = disk.io_seconds(
            IOCounters(seq_read=metrics.io_message_read)
        ) + cpu.seconds(spilled=spilled)
        phases.append((
            "load", dur,
            {"io_message_read": metrics.io_message_read,
             "spilled_messages": spilled},
        ))

    if in_mech == "pull" and metrics.superstep > 1:
        dur = disk.io_seconds(IOCounters(
            seq_read=metrics.io_fragments + metrics.io_edges_bpull,
            random_read=metrics.io_vrr,
        )) + cpu.seconds(edges=gather_edges)
        args: Dict[str, Any] = {
            "io_edges_bpull": metrics.io_edges_bpull,
            "io_fragments": metrics.io_fragments,
            "io_vrr": metrics.io_vrr,
            "edges_scanned": gather_edges,
            "responding_vertices": metrics.responding_vertices,
            "pull_requests": metrics.pull_requests,
        }
        if not pushing:
            # b-pull generates (and ships) the messages inside the
            # gather, so the message CPU and barrier transfer time
            # belong to this phase.
            dur += cpu.seconds(messages=metrics.raw_messages)
            dur += metrics.blocking_seconds
            args["raw_messages"] = metrics.raw_messages
            args["blocking_seconds"] = metrics.blocking_seconds
        phases.append(("pullRes", dur, args))

    vertex_read = metrics.io_vertex // 2
    update_dur = cpu.seconds(updates=metrics.updated_vertices) + (
        disk.io_seconds(IOCounters(
            seq_read=vertex_read,
            seq_write=metrics.io_vertex - vertex_read,
        ))
    )
    phases.append((
        "update", update_dur,
        {"updated_vertices": metrics.updated_vertices,
         "io_vertex": metrics.io_vertex},
    ))

    if pushing:
        dur = (
            cpu.seconds(messages=metrics.raw_messages, edges=push_edges)
            + disk.io_seconds(IOCounters(
                seq_read=metrics.io_edges_push,
                random_write=metrics.io_message_spill,
            ))
            + metrics.blocking_seconds
        )
        phases.append((
            "pushRes", dur,
            {"raw_messages": metrics.raw_messages,
             "io_edges_push": metrics.io_edges_push,
             "io_message_spill": metrics.io_message_spill,
             "spilled_messages": metrics.spilled_messages,
             "net_bytes": metrics.net_bytes,
             "blocking_seconds": metrics.blocking_seconds},
        ))

    return phases


def derive_pull_phases(cfg, metrics) -> PhaseList:
    """Phase breakdown for the GAS pull baseline (gather, then apply)."""
    disk = cfg.cluster.disk
    cpu = cfg.cluster.cpu
    gather = (
        disk.io_seconds(metrics.io)
        + cpu.seconds(
            messages=metrics.raw_messages,
            edges=metrics.edges_scanned,
            lru_misses=metrics.lru_misses,
        )
        + metrics.blocking_seconds
    )
    apply_dur = cpu.seconds(updates=metrics.updated_vertices)
    return [
        ("pullRes", gather,
         {"edges_scanned": metrics.edges_scanned,
          "lru_misses": metrics.lru_misses,
          "raw_messages": metrics.raw_messages,
          "blocking_seconds": metrics.blocking_seconds}),
        ("update", apply_dur,
         {"updated_vertices": metrics.updated_vertices}),
    ]


def emit_superstep_events(
    rt,
    metrics,
    phases: PhaseList,
    disk_deltas: Optional[Dict[int, IOCounters]] = None,
) -> None:
    """Emit the span tree for one executed superstep.

    Called by every executor after assembling *metrics*, with the tracer
    clock still at the superstep's start (the engine advances it
    afterwards).  Emits, in order: the ``superstep`` span, its scaled
    phase children, then per worker a ``worker`` span, a ``barrier``
    span (zero-length for the slowest worker) and a ``disk`` instant
    carrying that worker's I/O deltas for the superstep.
    """
    tracer = rt.tracer
    start = tracer.clock
    step = metrics.superstep
    elapsed = metrics.elapsed_seconds

    tracer.span(
        "superstep", cat=CAT_ENGINE, start=start, dur=elapsed,
        superstep=step,
        args={
            "mode": metrics.mode,
            "updated_vertices": metrics.updated_vertices,
            "raw_messages": metrics.raw_messages,
            "net_bytes": metrics.net_bytes,
            "cpu_seconds": metrics.cpu_seconds,
        },
    )

    total = sum(dur for _, dur, _a in phases)
    scale = elapsed / total if total > elapsed > 0.0 else 1.0
    cursor = start
    for name, dur, args in phases:
        scaled = dur * scale
        tracer.span(
            name, cat=CAT_PHASE, start=cursor, dur=scaled,
            superstep=step, args={**args, "modeled_seconds": dur},
        )
        cursor += scaled

    for wid in sorted(metrics.worker_seconds):
        seconds = metrics.worker_seconds[wid]
        tracer.span(
            "worker", cat=CAT_WORKER, start=start, dur=seconds,
            superstep=step, worker=wid, args={"seconds": seconds},
        )
        tracer.span(
            "barrier", cat=CAT_WORKER, start=start + seconds,
            dur=max(elapsed - seconds, 0.0), superstep=step, worker=wid,
            args={"slowest": seconds >= elapsed},
        )
        delta = (disk_deltas or {}).get(wid)
        if delta is not None:
            tracer.instant(
                "disk", cat=CAT_DISK, ts=start, superstep=step,
                worker=wid,
                args={
                    "random_read": delta.random_read,
                    "random_write": delta.random_write,
                    "seq_read": delta.seq_read,
                    "seq_write": delta.seq_write,
                    "io_seconds": rt.config.cluster.disk.io_seconds(delta),
                },
            )

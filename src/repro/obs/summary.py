"""Roll a flat event stream up into a per-superstep breakdown.

``summarize(events)`` groups the trace by superstep and produces, for
each one, the mode, elapsed time, a phase → seconds breakdown, a
worker → (busy, barrier) breakdown, and the counts of disk/net/switch
side events.  :meth:`TraceSummary.table` renders the result with the
same ASCII-table helper the CLI ``--trace`` report uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.events import (
    CAT_ENGINE,
    CAT_PHASE,
    CAT_WORKER,
    PHASE_NAMES,
    TraceEvent,
)

__all__ = ["SuperstepSummary", "TraceSummary", "summarize"]


@dataclass
class SuperstepSummary:
    """One superstep's roll-up (durations in modeled seconds)."""

    superstep: int
    mode: str = ""
    elapsed_seconds: float = 0.0
    #: phase name -> scaled span seconds (tiles ``elapsed_seconds``).
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: worker id -> (busy seconds, barrier-wait seconds).
    worker_seconds: Dict[int, Tuple[float, float]] = field(
        default_factory=dict
    )
    instants: Dict[str, int] = field(default_factory=dict)
    switch_decision: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "superstep": self.superstep,
            "mode": self.mode,
            "elapsed_seconds": self.elapsed_seconds,
            "phase_seconds": dict(self.phase_seconds),
            "worker_seconds": {
                str(w): list(pair) for w, pair in self.worker_seconds.items()
            },
            "instants": dict(self.instants),
            "switch_decision": self.switch_decision,
        }


@dataclass
class TraceSummary:
    """Whole-trace roll-up: loading plus one row per superstep."""

    load_seconds: float = 0.0
    supersteps: List[SuperstepSummary] = field(default_factory=list)
    #: engine-level instants not tied to an executed superstep row
    #: (faults, restarts, restores, resumes), as (name, superstep) pairs.
    incidents: List[Tuple[str, Optional[int]]] = field(default_factory=list)
    #: MTTR-style recovery roll-up, present when the run restarted:
    #: ``{"restarts", "faults", "downtime_seconds", "rework_seconds",
    #: "mttr_seconds"}`` — mean time to repair = (downtime + rework) /
    #: restarts, all in modeled seconds.
    recovery: Optional[Dict[str, Any]] = None

    def rows(self) -> List[List[Any]]:
        def fmt(x: float) -> str:
            return f"{x:.3f}"

        rows: List[List[Any]] = []
        for s in self.supersteps:
            busy = sum(b for b, _w in s.worker_seconds.values())
            wait = sum(w for _b, w in s.worker_seconds.values())
            rows.append(
                [s.superstep, s.mode, fmt(s.elapsed_seconds)]
                + [fmt(s.phase_seconds.get(name, 0.0))
                   for name in PHASE_NAMES]
                + [fmt(busy), fmt(wait)]
            )
        return rows

    def table(self) -> str:
        from repro.analysis.reporting import format_table

        headers = (
            ["step", "mode", "elapsed"]
            + list(PHASE_NAMES)
            + ["busy", "barrier"]
        )
        title = f"trace summary (load {self.load_seconds:.3f}s)"
        if self.incidents:
            names = ", ".join(
                name if step is None else f"{name}@{step}"
                for name, step in self.incidents
            )
            title += f" — incidents: {names}"
        if self.recovery is not None:
            title += (
                f" — {self.recovery['restarts']} restarts, "
                f"MTTR {self.recovery['mttr_seconds']:.3f}s"
            )
        return format_table(headers, self.rows(), title=title)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "load_seconds": self.load_seconds,
            "supersteps": [s.to_dict() for s in self.supersteps],
            "incidents": [list(pair) for pair in self.incidents],
            "recovery": (
                dict(self.recovery) if self.recovery is not None else None
            ),
        }


def summarize(events: Iterable[TraceEvent]) -> TraceSummary:
    """Build a :class:`TraceSummary` from a flat event stream.

    A recovered run re-executes supersteps, so the same superstep number
    can appear twice; later rows overwrite earlier ones (the summary
    reflects the attempts that stuck), while the discarded attempts stay
    visible in the raw trace and in :attr:`TraceSummary.incidents`.
    """
    out = TraceSummary()
    by_step: Dict[int, SuperstepSummary] = {}
    # net instants are flushed by the network *before* the executor
    # emits the superstep span, so instants that cannot yet be matched
    # to the current attempt wait here until the span opens the row.
    pending: Dict[int, Dict[str, int]] = {}
    # after a fault every existing row belongs to a discarded attempt:
    # further instants for it buffer in ``pending`` until re-execution.
    closed: set = set()

    faults = 0
    restarts = 0
    downtime = 0.0
    rework = 0.0
    for event in events:
        if event.name == "load_graph":
            out.load_seconds = event.dur
            continue
        if event.name in ("fault", "restart", "restore", "resume"):
            out.incidents.append((event.name, event.superstep))
            closed.update(by_step)
            if event.name == "fault":
                faults += 1
            elif event.name == "restart":
                restarts += 1
                downtime += event.args.get("downtime_seconds", 0.0)
                rework += event.args.get("rework_seconds", 0.0)
            continue
        step = event.superstep
        if step is None:
            continue
        if event.name == "superstep" and event.cat == CAT_ENGINE:
            # (re-)executed superstep: a fresh row per attempt, seeded
            # with the instants that arrived ahead of the span.
            by_step[step] = SuperstepSummary(
                superstep=step,
                mode=event.args.get("mode", ""),
                elapsed_seconds=event.dur,
                instants=pending.pop(step, {}),
            )
            closed.discard(step)
            continue
        s = by_step.get(step)
        open_row = s is not None and s.mode != "" and step not in closed
        if event.cat == CAT_PHASE and open_row:
            s.phase_seconds[event.name] = (
                s.phase_seconds.get(event.name, 0.0) + event.dur
            )
        elif event.cat == CAT_WORKER and event.worker is not None and open_row:
            busy, wait = s.worker_seconds.get(event.worker, (0.0, 0.0))
            if event.name == "worker":
                busy = event.dur
            elif event.name == "barrier":
                wait = event.dur
            s.worker_seconds[event.worker] = (busy, wait)
        elif event.name == "switch_decision" and open_row:
            s.switch_decision = dict(event.args)
        elif event.kind == "instant":
            if open_row:
                s.instants[event.name] = s.instants.get(event.name, 0) + 1
            else:
                bucket = pending.setdefault(step, {})
                bucket[event.name] = bucket.get(event.name, 0) + 1

    out.supersteps = [by_step[k] for k in sorted(by_step)]
    if restarts:
        out.recovery = {
            "restarts": restarts,
            "faults": faults,
            "downtime_seconds": downtime,
            "rework_seconds": rework,
            "mttr_seconds": (downtime + rework) / restarts,
        }
    return out

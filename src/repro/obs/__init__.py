"""Structured tracing for the simulator (``repro.obs``).

Spans and instants on the *modeled* clock, fanned out to pluggable
sinks (ring buffer, JSONL, Chrome-trace).  Enable per job with
``JobConfig(trace=True)`` (or a :class:`TraceConfig` / output path) and
read the result from ``JobResult.trace``; disabled jobs share the
no-op :data:`NULL_TRACER` and pay only an attribute lookup per
instrumentation site.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.chrome import (
    chrome_trace_json,
    export_chrome_trace,
    to_chrome_events,
)
from repro.obs.events import (
    CAT_DISK,
    CAT_ENGINE,
    CAT_NET,
    CAT_PHASE,
    CAT_SWITCH,
    CAT_WORKER,
    INSTANT,
    PHASE_NAMES,
    SPAN,
    TraceEvent,
)
from repro.obs.instrument import (
    derive_phases,
    derive_pull_phases,
    emit_superstep_events,
)
from repro.obs.sinks import ChromeTraceSink, JsonlSink, RingBufferSink, Sink
from repro.obs.summary import SuperstepSummary, TraceSummary, summarize
from repro.obs.tracer import NULL_TRACER, TraceConfig, Tracer, resolve_tracer

__all__ = [
    "TraceEvent",
    "SPAN",
    "INSTANT",
    "CAT_ENGINE",
    "CAT_PHASE",
    "CAT_WORKER",
    "CAT_DISK",
    "CAT_NET",
    "CAT_SWITCH",
    "PHASE_NAMES",
    "Sink",
    "RingBufferSink",
    "JsonlSink",
    "ChromeTraceSink",
    "Tracer",
    "NULL_TRACER",
    "TraceConfig",
    "resolve_tracer",
    "to_chrome_events",
    "chrome_trace_json",
    "export_chrome_trace",
    "derive_phases",
    "derive_pull_phases",
    "emit_superstep_events",
    "SuperstepSummary",
    "TraceSummary",
    "summarize",
]

"""Deterministic synthetic graph generators.

The paper evaluates on six real graphs (Table 4) that we cannot ship;
these generators produce scaled stand-ins that preserve the properties
the experiments actually depend on:

* **social graphs** (livej, orkut, twi, fri) — skewed power-law degree
  distributions via preferential attachment; the skew knob matters
  because a high-out-degree vertex touches many Vblocks and therefore
  owns many fragments (Theorem 1), which is what erodes b-pull's edge on
  the twi-like graph (Section 6.1);
* **web graphs** (wiki, uk) — strong id-locality plus a long effective
  diameter, giving SSSP its drawn-out convergence tail over wiki.

Everything is seeded and wall-clock-free: the same call always returns
the same graph.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.core.graph import Graph

__all__ = ["social_graph", "web_graph", "random_graph", "ring_graph"]


def _edge_weight(rng: random.Random) -> float:
    """Heavy-tailed edge weights in [1, 101).

    The cube keeps most edges cheap with a fat expensive tail, so SSSP
    keeps discovering shorter multi-hop detours for many supersteps —
    the long convergence stage the paper's SSSP traces exhibit (284
    supersteps over wiki; Fig. 14's ~30 over twi).
    """
    return 1.0 + 100.0 * rng.random() ** 3


def social_graph(
    num_vertices: int,
    avg_degree: float,
    seed: int = 7,
    skew: float = 2.2,
    tail_fraction: float = 0.2,
    tail_chain: int = 25,
    locality: float = 0.5,
    name: str = "social",
) -> Graph:
    """Power-law social network via degree sampling + preferential targets.

    Out-degrees of the core are Pareto-distributed with shape *skew*
    (smaller = more skewed), rescaled so the whole graph hits
    *avg_degree*; destinations are drawn from an endpoint pool so
    in-degrees are power-law too.  A *tail_fraction* of the vertices form
    peripheral whisker chains of length *tail_chain* hanging off the
    core — real social graphs have such low-degree peripheries, and they
    are what gives Traversal-Style algorithms their multi-dozen-superstep
    tails (Fig. 14 runs SSSP over twi for ~30 supersteps).

    *locality* is the fraction of edges that land near the source's id
    (crawl-ordered real graphs exhibit strong id-locality).  It controls
    how many distinct Vblocks a vertex's out-edges hit, i.e. its fragment
    count (Theorem 1): the low-locality, highly skewed twi stand-in gets
    fragment counts close to its edge count, which is exactly what erodes
    b-pull there (Section 6.1).
    """
    if not 0.0 <= locality <= 1.0:
        raise ValueError("locality must be in [0, 1]")
    if num_vertices <= 1:
        raise ValueError("need at least 2 vertices")
    if not 0.0 <= tail_fraction < 1.0:
        raise ValueError("tail_fraction must be in [0, 1)")
    rng = random.Random(seed)
    num_tail = int(num_vertices * tail_fraction)
    core_n = num_vertices - num_tail
    core_edges = max(core_n, round(num_vertices * avg_degree) - 2 * num_tail)
    raw = [rng.paretovariate(skew) for _ in range(core_n)]
    scale = core_edges / sum(raw)
    cap = max(2, core_n // 4)
    degrees = [min(cap, max(1, round(d * scale))) for d in raw]

    graph = Graph(num_vertices, name=name)
    window = max(2, core_n // 50)
    # endpoint pool: every core vertex once, then grows with chosen targets
    pool: List[int] = list(range(core_n))
    for src in range(core_n):
        seen = set()
        for _ in range(degrees[src]):
            if rng.random() < locality:
                dst = (src + rng.randint(-window, window)) % core_n
            else:
                dst = pool[rng.randrange(len(pool))]
            if dst == src or dst in seen:
                dst = rng.randrange(core_n)
                if dst == src or dst in seen:
                    continue
            seen.add(dst)
            graph.add_edge(src, dst, _edge_weight(rng))
            pool.append(dst)
    # peripheral whisker chains: core -> head -> ... -> tail end, with a
    # cheap back-edge so the periphery also feeds messages inward.
    vid = core_n
    while vid < num_vertices:
        length = min(tail_chain, num_vertices - vid)
        anchor = rng.randrange(core_n)
        graph.add_edge(anchor, vid, 1.0 + rng.random())
        for offset in range(length - 1):
            graph.add_edge(
                vid + offset, vid + offset + 1, 1.0 + rng.random()
            )
            graph.add_edge(
                vid + offset + 1, vid + offset, 1.0 + rng.random()
            )
        vid += length
    return graph


def web_graph(
    num_vertices: int,
    avg_degree: float,
    seed: int = 11,
    locality_window: Optional[int] = None,
    local_fraction: float = 0.95,
    name: str = "web",
) -> Graph:
    """Web-like graph: id-local links with a sprinkle of long jumps.

    Local links are cheap and long jumps expensive (think: following
    links within a site vs. across the web), so weighted shortest paths
    prefer long chains of local hops — reproducing the very long SSSP
    convergence stage the paper observes over wiki (284 supersteps) —
    while id-locality keeps Eblocks well clustered.
    """
    if num_vertices <= 1:
        raise ValueError("need at least 2 vertices")
    rng = random.Random(seed)
    window = locality_window or max(2, num_vertices // 150)
    graph = Graph(num_vertices, name=name)
    jump_weight = 40.0 * window  # dearer than hopping the span locally
    for src in range(num_vertices):
        degree = max(1, round(rng.gauss(avg_degree, avg_degree / 3)))
        seen = set()
        attempts = 0
        while len(seen) < degree and attempts < 4 * degree:
            attempts += 1
            if rng.random() < local_fraction:
                offset = rng.randint(1, window)
                dst = (src + offset) % num_vertices
                if rng.random() < 0.3:
                    dst = (src - offset) % num_vertices
                weight = 1.0 + 4.0 * rng.random()
            else:
                dst = rng.randrange(num_vertices)
                weight = jump_weight * (1.0 + rng.random())
            if dst == src or dst in seen:
                continue
            seen.add(dst)
            graph.add_edge(src, dst, weight)
    return graph


def random_graph(
    num_vertices: int,
    avg_degree: float,
    seed: int = 3,
    name: str = "random",
) -> Graph:
    """Erdős–Rényi-style graph; used mostly by tests."""
    rng = random.Random(seed)
    graph = Graph(num_vertices, name=name)
    num_edges = int(num_vertices * avg_degree)
    for _ in range(num_edges):
        src = rng.randrange(num_vertices)
        dst = rng.randrange(num_vertices)
        if src != dst:
            graph.add_edge(src, dst, _edge_weight(rng))
    return graph


def ring_graph(num_vertices: int, name: str = "ring") -> Graph:
    """Directed cycle — maximal diameter, handy for convergence tests."""
    graph = Graph(num_vertices, name=name)
    for src in range(num_vertices):
        graph.add_edge(src, (src + 1) % num_vertices, 1.0)
    return graph

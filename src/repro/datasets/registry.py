"""Synthetic stand-ins for the paper's six real graphs (Table 4).

Each spec mirrors its original's *structure* (average degree, degree
skew, web vs social topology) at a reduced scale, and carries the
experiment defaults the paper used with it: worker count (5 for the
small graphs, 30 for the large ones) and the limited-memory message
buffer ``B_i`` (0.5M / 1M / 2M messages, scaled like the graph).

=====  ==========  ===========  ======  =========================
name   |V| (paper) |E| (paper)  degree  stand-in
=====  ==========  ===========  ======  =========================
livej  4.8M        68M          14.2    social, scale 1/1000
wiki   5.7M        130M         22.8    web,    scale 1/1000
orkut  3.1M        234M         75.5    social, scale 1/1000
twi    41.7M       1470M        35.3    social (highly skewed), 1/10000
fri    65.6M       1810M        27.5    social, scale 1/10000
uk     105.9M      3740M        35.6    web,    scale 1/10000
=====  ==========  ===========  ======  =========================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.graph import Graph
from repro.datasets.generators import social_graph, web_graph

__all__ = ["DatasetSpec", "DATASETS", "SMALL_DATASETS", "LARGE_DATASETS",
           "get_dataset", "dataset_names"]


@dataclass(frozen=True)
class DatasetSpec:
    """One synthetic dataset plus its paper-default experiment knobs."""

    name: str
    kind: str  # "social" | "web"
    num_vertices: int
    avg_degree: float
    scale: str
    workers: int
    #: limited-memory message buffer per worker (B_i), scaled like |E|.
    buffer_per_worker: int
    skew: float = 2.2
    locality: float = 0.5
    seed: int = 7
    #: override for V_i.  Eq. 5's ``(2 + T) n_i / B_i`` is scale-free in
    #: n/B but NOT in absolute block size: at 1/10000 scale it yields
    #: ~6-vertex blocks, far below the graphs' id-locality window, which
    #: would destroy fragment clustering that the full-size graphs do
    #: have.  Where set, the override keeps the paper's block-size to
    #: locality-window ratio instead.
    vblocks_per_worker: Optional[int] = None
    paper_vertices: str = ""
    paper_edges: str = ""

    def job_config(self, mode: str, **overrides) -> "JobConfig":
        """The paper-default limited-memory config for this dataset."""
        from repro.core.config import JobConfig  # local: avoid cycles

        params = dict(
            mode=mode,
            num_workers=self.workers,
            message_buffer_per_worker=self.buffer_per_worker,
            vblocks_per_worker=self.vblocks_per_worker,
        )
        params.update(overrides)
        return JobConfig(**params)

    def build(self) -> Graph:
        if self.kind == "social":
            return social_graph(
                self.num_vertices,
                self.avg_degree,
                seed=self.seed,
                skew=self.skew,
                locality=self.locality,
                name=self.name,
            )
        return web_graph(
            self.num_vertices,
            self.avg_degree,
            seed=self.seed,
            name=self.name,
        )


_SPECS: List[DatasetSpec] = [
    DatasetSpec(
        name="livej", kind="social", num_vertices=4_800, avg_degree=14.2,
        scale="1/1000", workers=5, buffer_per_worker=500, skew=2.2,
        locality=0.75, vblocks_per_worker=8, seed=7,
        paper_vertices="4.8M", paper_edges="68M",
    ),
    DatasetSpec(
        name="wiki", kind="web", num_vertices=5_700, avg_degree=22.8,
        scale="1/1000", workers=5, buffer_per_worker=500, seed=11,
        paper_vertices="5.7M", paper_edges="130M",
    ),
    DatasetSpec(
        name="orkut", kind="social", num_vertices=3_100, avg_degree=75.5,
        scale="1/1000", workers=5, buffer_per_worker=500, skew=2.6,
        locality=0.75, vblocks_per_worker=8, seed=13,
        paper_vertices="3.1M", paper_edges="234M",
    ),
    DatasetSpec(
        name="twi", kind="social", num_vertices=4_170, avg_degree=35.3,
        scale="1/10000", workers=30, buffer_per_worker=100, skew=1.7,
        locality=0.1, seed=17,
        paper_vertices="41.7M", paper_edges="1470M",
    ),
    DatasetSpec(
        name="fri", kind="social", num_vertices=6_560, avg_degree=27.5,
        scale="1/10000", workers=30, buffer_per_worker=200, skew=2.3,
        locality=0.75, vblocks_per_worker=3, seed=19,
        paper_vertices="65.6M", paper_edges="1810M",
    ),
    DatasetSpec(
        name="uk", kind="web", num_vertices=10_590, avg_degree=35.6,
        scale="1/10000", workers=30, buffer_per_worker=200,
        vblocks_per_worker=3, seed=23,
        paper_vertices="105.9M", paper_edges="3740M",
    ),
]

DATASETS: Dict[str, DatasetSpec] = {spec.name: spec for spec in _SPECS}
SMALL_DATASETS = ("livej", "wiki", "orkut")
LARGE_DATASETS = ("twi", "fri", "uk")

_graph_cache: Dict[str, Graph] = {}


def get_dataset(name: str) -> Graph:
    """Build (and memoise) the stand-in graph for *name*."""
    if name not in DATASETS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        )
    if name not in _graph_cache:
        _graph_cache[name] = DATASETS[name].build()
    return _graph_cache[name]


def dataset_names() -> List[str]:
    return [spec.name for spec in _SPECS]

"""Edge-list file round-trip.

Real deployments feed HybridGraph from a distributed file system; here a
plain text edge-list format (``src dst [weight]`` per line, ``#``
comments allowed) lets users bring their own graphs to the library.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.core.graph import Graph

__all__ = ["write_edge_list", "read_edge_list"]


def write_edge_list(graph: Graph, path: Union[str, Path]) -> None:
    """Write *graph* as a text edge list with a header comment."""
    path = Path(path)
    with path.open("w", encoding="ascii") as handle:
        handle.write(f"# {graph.name} {graph.num_vertices} vertices\n")
        for src, dst, weight in graph.edges():
            if weight == 1.0:
                handle.write(f"{src} {dst}\n")
            else:
                handle.write(f"{src} {dst} {weight!r}\n")


def read_edge_list(
    path: Union[str, Path], num_vertices: int = 0, name: str = ""
) -> Graph:
    """Read a text edge list.

    ``num_vertices`` may be omitted, in which case it is inferred as
    ``max id + 1``.
    """
    path = Path(path)
    edges = []
    max_id = -1
    with path.open("r", encoding="ascii") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            src, dst = int(parts[0]), int(parts[1])
            weight = float(parts[2]) if len(parts) > 2 else 1.0
            edges.append((src, dst, weight))
            max_id = max(max_id, src, dst)
    n = num_vertices or (max_id + 1)
    return Graph(n, edges, name=name or path.stem)

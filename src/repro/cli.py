"""Command-line interface: run a job and print its report.

Examples::

    python -m repro --dataset wiki --algorithm pagerank --mode hybrid
    python -m repro --edge-list my.txt --algorithm sssp --source 3 \\
        --mode bpull --workers 8 --buffer 1000
    python -m repro --dataset twi --algorithm sssp --mode hybrid --trace
    python -m repro --dataset wiki --mode hybrid \\
        --trace-out trace.json --trace-format chrome
"""

from __future__ import annotations

import argparse
import re
from typing import Optional

from repro.algorithms.lpa import LPA
from repro.algorithms.pagerank import PageRank
from repro.algorithms.phased_bfs import PhasedBFS
from repro.algorithms.sa import SA
from repro.algorithms.sssp import SSSP
from repro.algorithms.wcc import WCC
from repro.analysis.reporting import fmt_bytes, fmt_seconds, print_table
from repro.core.config import (
    AMAZON_CLUSTER,
    FaultPlan,
    FaultSchedule,
    JobConfig,
    LOCAL_CLUSTER,
    MODES,
)
from repro.core.engine import run_job
from repro.datasets.io import read_edge_list
from repro.datasets.registry import DATASETS, dataset_names, get_dataset

__all__ = ["main", "build_parser", "parse_fault_plan"]

ALGORITHMS = ("pagerank", "sssp", "lpa", "sa", "wcc", "phased-bfs")

#: CLI aliases for the fault kinds (``--fault-plan``).
_FAULT_KIND_ALIASES = {
    "crash": "crash",
    "kill": "kill",
    "straggler": "straggler",
    "ckpt-write": "checkpoint_write",
    "ckpt-corrupt": "checkpoint_corrupt",
}

_FAULT_SPEC = re.compile(
    r"^(?P<kind>[a-z-]+)@(?P<superstep>\d+)"
    r"(?::w(?P<worker>\d+))?"
    r"(?:x(?P<factor>\d+(?:\.\d+)?))?"
    r"(?:\*(?P<repeat>\d+))?$"
)


def parse_fault_plan(spec: str) -> tuple:
    """Parse ``--fault-plan``: comma-separated ``kind@superstep`` entries.

    Each entry is ``kind@superstep[:wWORKER][xFACTOR][*REPEAT]`` with
    kind one of ``crash``, ``kill``, ``straggler``, ``ckpt-write``,
    ``ckpt-corrupt``; e.g. ``crash@3:w1,straggler@2:w0x4,kill@5*2``.
    Worker defaults to 0, factor to 4.0 (stragglers), repeat to 1.
    """
    plans = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        match = _FAULT_SPEC.match(entry)
        if match is None:
            raise argparse.ArgumentTypeError(
                f"bad fault spec {entry!r}; expected "
                f"kind@superstep[:wWORKER][xFACTOR][*REPEAT]"
            )
        kind = _FAULT_KIND_ALIASES.get(match.group("kind"))
        if kind is None:
            raise argparse.ArgumentTypeError(
                f"unknown fault kind {match.group('kind')!r}; expected "
                f"one of {sorted(_FAULT_KIND_ALIASES)}"
            )
        try:
            plans.append(FaultPlan(
                worker=int(match.group("worker") or 0),
                superstep=int(match.group("superstep")),
                kind=kind,
                factor=float(match.group("factor") or 4.0),
                repeat=int(match.group("repeat") or 1),
            ))
        except ValueError as exc:
            raise argparse.ArgumentTypeError(str(exc))
    if not plans:
        raise argparse.ArgumentTypeError("empty fault plan")
    return tuple(plans)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "HybridGraph reproduction: run an iterative graph algorithm "
            "under one of the five message transports."
        ),
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--dataset", choices=dataset_names(),
                        help="synthetic stand-in from the Table 4 registry")
    source.add_argument("--edge-list", metavar="PATH",
                        help="text edge list: 'src dst [weight]' per line")
    parser.add_argument("--algorithm", choices=ALGORITHMS,
                        default="pagerank")
    parser.add_argument("--mode", choices=MODES, default="hybrid")
    parser.add_argument("--workers", type=int, default=None,
                        help="computational nodes (dataset default: 5/30)")
    parser.add_argument("--buffer", type=int, default=None, metavar="B_I",
                        help="per-worker message buffer; omit = unlimited")
    parser.add_argument("--supersteps", type=int, default=None,
                        help="override the superstep budget")
    parser.add_argument("--source", type=int, default=0,
                        help="source vertex for sssp")
    parser.add_argument("--cluster", choices=("local", "amazon"),
                        default="local",
                        help="hardware profile (Table 3): HDD or SSD")
    parser.add_argument("--executor",
                        choices=("batched", "reference", "vectorized"),
                        default="batched",
                        help="superstep executor tier (all byte-identical)")
    parser.add_argument("--parallelism", type=int, default=1, metavar="N",
                        help="OS processes running each superstep's "
                             "per-worker phases (default 1 = in-process)")
    parser.add_argument("--in-memory", action="store_true",
                        help="sufficient-memory scenario (no disk charges)")
    parser.add_argument("--trace", action="store_true",
                        help="print the per-superstep trace")
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="record structured trace events to PATH "
                             "(see --trace-format)")
    parser.add_argument("--trace-format", choices=("jsonl", "chrome"),
                        default="jsonl",
                        help="--trace-out format: one JSON event per "
                             "line, or a Chrome-trace/Perfetto document")
    parser.add_argument("--stats", action="store_true",
                        help="print graph statistics and exit (no job)")
    resilience = parser.add_argument_group(
        "resilience (docs/RESILIENCE.md)"
    )
    resilience.add_argument(
        "--fault-plan", type=parse_fault_plan, default=None,
        metavar="SPEC",
        help="inject planned faults: comma-separated "
             "kind@superstep[:wWORKER][xFACTOR][*REPEAT]; kinds: "
             "crash, kill, straggler, ckpt-write, ckpt-corrupt "
             "(e.g. 'crash@3:w1,straggler@2:w0x4')")
    resilience.add_argument(
        "--chaos-probability", type=float, default=0.0, metavar="P",
        help="seeded chaos mode: per-superstep fault probability")
    resilience.add_argument(
        "--chaos-seed", type=int, default=0,
        help="RNG seed for chaos mode (deterministic per seed)")
    resilience.add_argument(
        "--checkpoint-interval", type=int, default=None, metavar="N",
        help="snapshot the iteration state every N supersteps")
    resilience.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="persist snapshots durably under DIR "
             "(versioned, checksummed, atomic)")
    resilience.add_argument(
        "--resume-from", metavar="DIR", default=None,
        help="resume a killed job from the newest valid snapshot in DIR")
    resilience.add_argument(
        "--max-restarts", type=int, default=3,
        help="restarts attempted before giving up (default 3)")
    resilience.add_argument(
        "--restart-backoff", type=float, default=0.0, metavar="S",
        help="modeled exponential-backoff base seconds per restart")
    return parser


def _make_program(args: argparse.Namespace):
    if args.algorithm == "pagerank":
        return PageRank(supersteps=args.supersteps or 10)
    if args.algorithm == "sssp":
        return SSSP(source=args.source)
    if args.algorithm == "lpa":
        return LPA(supersteps=args.supersteps or 5)
    if args.algorithm == "sa":
        return SA()
    if args.algorithm == "phased-bfs":
        return PhasedBFS(sources=(args.source, args.source + 1))
    return WCC()


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.dataset:
        graph = get_dataset(args.dataset)
        spec = DATASETS[args.dataset]
        workers = args.workers or spec.workers
        buffer = args.buffer if args.buffer is not None else (
            None if args.in_memory else spec.buffer_per_worker
        )
        vblocks = spec.vblocks_per_worker
    else:
        graph = read_edge_list(args.edge_list)
        workers = args.workers or 5
        buffer = args.buffer
        vblocks = None

    if args.stats:
        from repro.analysis.graphstats import compute_stats

        print(compute_stats(graph).summary())
        return 0

    trace = None
    if args.trace_out:
        from repro.obs import TraceConfig

        trace = TraceConfig(out=args.trace_out, format=args.trace_format)
    fault = None
    if args.fault_plan or args.chaos_probability > 0.0:
        fault = FaultSchedule(
            faults=args.fault_plan or (),
            chaos_probability=args.chaos_probability,
            chaos_seed=args.chaos_seed,
        )
    config = JobConfig(
        mode=args.mode,
        num_workers=workers,
        message_buffer_per_worker=buffer,
        graph_on_disk=not args.in_memory,
        vblocks_per_worker=vblocks,
        cluster=AMAZON_CLUSTER if args.cluster == "amazon" else LOCAL_CLUSTER,
        max_supersteps=args.supersteps,
        executor=args.executor,
        parallelism=args.parallelism,
        trace=trace,
        fault=fault,
        checkpoint_interval=args.checkpoint_interval,
        checkpoint_dir=args.checkpoint_dir,
        resume_from=args.resume_from,
        max_restarts=args.max_restarts,
        restart_backoff_seconds=args.restart_backoff,
    )
    program = _make_program(args)
    result = run_job(graph, program, config)
    metrics = result.metrics

    print(f"graph      : {graph.name} |V|={graph.num_vertices:,} "
          f"|E|={graph.num_edges:,}")
    print(f"program    : {program.name}   mode: {metrics.mode}   "
          f"workers: {workers}   cluster: {config.cluster.name}")
    rt = result.runtime
    if config.executor != "batched" or config.parallelism > 1:
        print(f"executor   : {rt.active_executor}   "
              f"parallelism: {rt.active_parallelism}")
    if metrics.fallback is not None:
        fb = metrics.fallback
        print(f"fallback   : requested {fb['requested_executor']}"
              f"/p={fb['requested_parallelism']}, running "
              f"{fb['active_executor']}/p={fb['active_parallelism']} "
              f"({fb['reason']})")
    print(f"supersteps : {metrics.num_supersteps}")
    print(f"runtime    : {fmt_seconds(metrics.runtime_seconds)} "
          f"(load {fmt_seconds(metrics.load.elapsed_seconds)})")
    print(f"disk I/O   : {fmt_bytes(metrics.compute_io_bytes)}   "
          f"network: {fmt_bytes(metrics.total_net_bytes)}   "
          f"messages: {metrics.total_messages:,}")
    if metrics.resumed_from is not None:
        print(f"resumed    : after superstep {metrics.resumed_from} "
              f"({args.resume_from})")
    if metrics.faults:
        fired = ", ".join(
            f"{f['kind']}@{f['superstep']}/w{f['worker']}"
            for f in metrics.faults
        )
        print(f"faults     : {fired}")
    if metrics.recoveries:
        total = sum(
            r["rework_seconds"] + r["downtime_seconds"]
            for r in metrics.recoveries
        )
        mttr = total / len(metrics.recoveries)
        policies = ", ".join(
            f"{r['policy']}@{r['superstep']}"
            for r in metrics.recoveries
        )
        print(f"recovery   : {metrics.restarts} restarts "
              f"(MTTR {fmt_seconds(mttr)} modeled; {policies})")
    if metrics.checkpoints:
        print(f"checkpoints: {len(metrics.checkpoints)} taken "
              f"({fmt_seconds(metrics.checkpoint_seconds)}; "
              f"{len(metrics.checkpoint_failures)} failed)")
    if args.mode == "hybrid":
        switches = [m for m in metrics.mode_trace if "->" in m]
        print(f"mode trace : {switches or 'no switches'}")
    if args.trace:
        rows = [
            [s.superstep, s.mode, s.updated_vertices, s.raw_messages,
             fmt_bytes(s.io.total), fmt_seconds(s.elapsed_seconds)]
            for s in metrics.supersteps
        ]
        print_table(
            ["t", "mode", "updated", "messages", "disk", "elapsed"],
            rows,
        )
    if args.trace_out:
        print(f"trace      : {args.trace_out} ({args.trace_format})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

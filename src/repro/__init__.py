"""HybridGraph reproduction — I/O-efficient hybrid push/pull graph engine.

A faithful, simulator-backed reimplementation of *Hybrid Pulling/Pushing
for I/O-Efficient Distributed and Iterative Graph Computing* (Wang, Gu,
Bao, Yu & Yu, SIGMOD 2016).

Quickstart::

    from repro import Graph, JobConfig, PageRank, run_job

    graph = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
    result = run_job(graph, PageRank(), JobConfig(mode="hybrid",
                                                  num_workers=2))
    print(result.values)

See :mod:`repro.core.config` for the execution modes (push / pushm /
pull / bpull / hybrid) and memory knobs, :mod:`repro.datasets.registry`
for the synthetic stand-ins of the paper's datasets, and ``benchmarks/``
for the per-figure experiment harness.
"""

from repro.analysis.graphstats import GraphStats, compute_stats
from repro.core.api import ProgramContext, UpdateResult, VertexProgram
from repro.core.config import (
    AMAZON_CLUSTER,
    ClusterProfile,
    CpuModel,
    FAULT_KINDS,
    FaultPlan,
    FaultSchedule,
    JobConfig,
    LOCAL_CLUSTER,
    MODES,
)
from repro.core.engine import JobResult, run_job
from repro.core.graph import Graph, hash_partition, range_partition
from repro.core.metrics import JobMetrics, SuperstepMetrics
from repro.core.switching import b_lower_bound, initial_mode, q_metric
from repro.obs import (
    NULL_TRACER,
    TraceConfig,
    TraceEvent,
    Tracer,
    summarize,
)
from repro.algorithms.lpa import LPA
from repro.algorithms.pagerank import PageRank
from repro.algorithms.phased_bfs import PhasedBFS
from repro.algorithms.sa import SA
from repro.algorithms.sssp import SSSP
from repro.algorithms.wcc import WCC
from repro.datasets.generators import (
    random_graph,
    ring_graph,
    social_graph,
    web_graph,
)
from repro.datasets.io import read_edge_list, write_edge_list
from repro.datasets.registry import DATASETS, get_dataset
from repro.storage.disk import DiskProfile, HDD_PROFILE, SSD_PROFILE
from repro.storage.records import DEFAULT_SIZES, RecordSizes

__version__ = "1.0.0"

__all__ = [
    "AMAZON_CLUSTER",
    "ClusterProfile",
    "CpuModel",
    "DATASETS",
    "DEFAULT_SIZES",
    "DiskProfile",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSchedule",
    "GraphStats",
    "Graph",
    "HDD_PROFILE",
    "JobConfig",
    "JobMetrics",
    "JobResult",
    "LOCAL_CLUSTER",
    "LPA",
    "MODES",
    "NULL_TRACER",
    "PageRank",
    "PhasedBFS",
    "ProgramContext",
    "RecordSizes",
    "SA",
    "SSD_PROFILE",
    "SSSP",
    "SuperstepMetrics",
    "TraceConfig",
    "TraceEvent",
    "Tracer",
    "UpdateResult",
    "VertexProgram",
    "WCC",
    "b_lower_bound",
    "compute_stats",
    "get_dataset",
    "hash_partition",
    "initial_mode",
    "q_metric",
    "random_graph",
    "range_partition",
    "read_edge_list",
    "ring_graph",
    "run_job",
    "social_graph",
    "summarize",
    "web_graph",
    "write_edge_list",
]

"""Weakly connected components via min-label propagation (extension).

Not in the paper's evaluated set, but a standard Traversal-Style
workload; it exercises the same code paths as SSSP with a different
activity profile (everybody starts active, activity decays).

Note this propagates along *out*-edges only, so on a directed graph it
computes components of the reachability closure per label direction; run
it on symmetrised graphs for true WCC.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.api import (
    ProgramContext,
    UpdateResult,
    VectorizedRules,
    VertexProgram,
)

__all__ = ["WCC"]


class _WCCRules(VectorizedRules):
    """Dense kernels mirroring :class:`WCC` bit-for-bit (int64 labels)."""

    combine = "min"

    def update_dense(self, ctx, targets, values, acc, has_message, xp):
        best = xp.where(has_message, acc, values)
        if ctx.superstep == 1:
            return xp.minimum(best, values), True
        improved = best < values
        return xp.where(improved, best, values), improved

    def source_payloads(self, ctx, values, out_degrees, xp):
        return values, None


class WCC(VertexProgram):
    """Minimum-label propagation; labels are min-combinable."""

    name = "wcc"
    combinable = True
    uniform_messages = True
    all_active = False
    default_max_supersteps = 0
    async_safe = True

    def initial_value(self, vid: int, ctx: ProgramContext) -> int:
        return vid

    def update(
        self,
        vid: int,
        value: int,
        messages: Sequence[int],
        ctx: ProgramContext,
    ) -> UpdateResult:
        if ctx.superstep == 1:
            # everybody broadcasts its label; under asynchronous delivery
            # messages can already arrive here, so fold them in too.
            best = min(messages) if messages else value
            return UpdateResult(value=min(best, value), respond=True)
        best = min(messages) if messages else value
        if best < value:
            return UpdateResult(value=best, respond=True)
        return UpdateResult(value=value, respond=False)

    def message_value(
        self,
        vid: int,
        value: int,
        dst: int,
        weight: float,
        ctx: ProgramContext,
    ) -> Optional[int]:
        return value

    def combine(self, a: int, b: int) -> int:
        return a if a <= b else b

    def vectorized(self) -> _WCCRules:
        return _WCCRules()

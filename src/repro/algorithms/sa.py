"""SA — simulating advertisements on social networks (from Mizan [15]).

Selected source vertices inject advertisements; every recipient either
forwards an ad to its out-neighbors or ignores it, according to a
deterministic per-(vertex, ad) interest function.  Messages (ad lists)
are not commutative, so no Combiner — and the active-vertex volume jumps
around during the middle supersteps, which is what degrades the
persistence predictor's accuracy in Figs. 11-13.

The vertex value is ``(accepted, fresh)``: all ads ever accepted plus
the ones accepted this superstep.  ``message_value`` forwards only the
fresh ads, keeping it a pure function of the stored value (the
pullRes/pushRes contract).
"""

from __future__ import annotations

import hashlib
from typing import Optional, Sequence, Tuple

from repro.core.api import ProgramContext, UpdateResult, VertexProgram

__all__ = ["SA"]

Value = Tuple[Tuple[int, ...], Tuple[int, ...]]


def _interested(vid: int, ad: int, percent: int) -> bool:
    """Deterministic pseudo-random interest in one advertisement."""
    digest = hashlib.blake2b(
        f"{vid}:{ad}".encode(), digest_size=4
    ).digest()
    return int.from_bytes(digest, "big") % 100 < percent


class SA(VertexProgram):
    """Advertisement spread with deterministic interests.

    Parameters
    ----------
    num_sources:
        The first ``num_sources`` vertex ids inject their own ad.
    interest_percent:
        Probability (in percent) that a vertex is interested in an ad.
    """

    name = "sa"
    combinable = False
    all_active = False
    default_max_supersteps = 0  # run to convergence

    def __init__(self, num_sources: int = 3, interest_percent: int = 55):
        if not 0 <= interest_percent <= 100:
            raise ValueError("interest_percent must be within [0, 100]")
        self.num_sources = num_sources
        self.interest_percent = interest_percent

    def initial_value(self, vid: int, ctx: ProgramContext) -> Value:
        return ((), ())

    def initially_active(self, vid: int, ctx: ProgramContext) -> bool:
        return vid < self.num_sources

    def update(
        self,
        vid: int,
        value: Value,
        messages: Sequence[Tuple[int, ...]],
        ctx: ProgramContext,
    ) -> UpdateResult:
        accepted = set(value[0])
        if ctx.superstep == 1 and vid < self.num_sources:
            fresh = {vid}  # the source's own advertisement
        else:
            incoming = {ad for ads in messages for ad in ads}
            fresh = {
                ad
                for ad in incoming
                if ad not in accepted
                and _interested(vid, ad, self.interest_percent)
            }
        if not fresh:
            return UpdateResult(
                value=(tuple(sorted(accepted)), ()), respond=False
            )
        accepted |= fresh
        return UpdateResult(
            value=(tuple(sorted(accepted)), tuple(sorted(fresh))),
            respond=True,
        )

    def message_value(
        self,
        vid: int,
        value: Value,
        dst: int,
        weight: float,
        ctx: ProgramContext,
    ) -> Optional[Tuple[int, ...]]:
        fresh = value[1]
        return fresh if fresh else None

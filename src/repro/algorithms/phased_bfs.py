"""Phased multi-source reachability — a Multi-Phase-Style workload.

Appendix G classifies algorithms by active-vertex behaviour and states
that hybrid is *not* suitable for Multi-Phase-Style ones: the active
volume grows and collapses once per phase, the sign of Q_t flips at
every phase boundary, and the delayed (Δt = 2) switch never accumulates
gain.  The paper's example is minimum spanning tree; this module
provides a compact equivalent: BFS waves run from a list of sources
**one source at a time**, with a Pregel-style aggregator detecting the
end of each wave and the next phase starting only then.

Mechanics: every vertex keeps ``(phase, reached, fresh)``.  The
``frontier`` aggregator counts freshly reached vertices; when a
superstep ends with ``frontier == 0`` every vertex advances its phase
counter (they all observe the same total), the next source injects its
wave, and :meth:`converged` keeps the master from halting during the
one quiet superstep at each boundary.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.core.api import ProgramContext, UpdateResult, VertexProgram

__all__ = ["PhasedBFS"]

Value = Tuple[int, Tuple[bool, ...], bool]


class PhasedBFS(VertexProgram):
    """Reachability from each source, one phase per source.

    The final value of a vertex is ``(phase, reached, fresh)`` where
    ``reached[p]`` says whether source ``p`` reaches it.
    """

    name = "phased-bfs"
    combinable = False
    all_active = True
    default_max_supersteps = 10_000

    def __init__(self, sources: Sequence[int]) -> None:
        if not sources:
            raise ValueError("need at least one source")
        self.sources = tuple(sources)

    # ------------------------------------------------------------------
    def initial_value(self, vid: int, ctx: ProgramContext) -> Value:
        return (0, (False,) * len(self.sources), False)

    def update(
        self,
        vid: int,
        value: Value,
        messages: Sequence[int],
        ctx: ProgramContext,
    ) -> UpdateResult:
        phase, reached, _fresh = value
        if ctx.superstep > 1 and ctx.aggregates.get("frontier", 0.0) == 0.0:
            phase = min(phase + 1, len(self.sources))
        fresh = False
        if phase < len(self.sources) and not reached[phase]:
            # a source is freshly reached when its phase opens; any other
            # vertex when a wave message of the current phase arrives.
            if vid == self.sources[phase] or any(
                m == phase for m in messages
            ):
                marks = list(reached)
                marks[phase] = True
                reached = tuple(marks)
                fresh = True
        return UpdateResult(value=(phase, reached, fresh), respond=fresh)

    def message_value(
        self,
        vid: int,
        value: Value,
        dst: int,
        weight: float,
        ctx: ProgramContext,
    ) -> Optional[int]:
        phase, _reached, fresh = value
        return phase if fresh else None

    # ------------------------------------------------------------------
    def aggregate(
        self, vid: int, old_value: Value, new_value: Value,
        ctx: ProgramContext,
    ) -> Dict[str, float]:
        _phase, _reached, fresh = new_value
        return {
            "frontier": 1.0 if fresh else 0.0,
            "phase_total": float(new_value[0]),
        }

    def converged(self, ctx: ProgramContext) -> Optional[bool]:
        totals = ctx.aggregates
        if not totals:
            return None
        all_phases_done = totals.get("phase_total", 0.0) >= (
            len(self.sources) * ctx.num_vertices
        )
        return all_phases_done and totals.get("frontier", 0.0) == 0.0

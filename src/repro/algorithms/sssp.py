"""Single-source shortest paths (Traversal-Style).

Only the source is active in superstep 1; a vertex responds exactly when
its distance improved, so the responding set grows and then shrinks as
the frontier sweeps the graph — the behaviour that gives hybrid its
switching opportunities (Fig. 14).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.core.api import (
    ProgramContext,
    UpdateResult,
    VectorizedRules,
    VertexProgram,
)

__all__ = ["SSSP"]


class _SSSPRules(VectorizedRules):
    """Dense kernels mirroring :class:`SSSP` bit-for-bit.

    ``min`` is exactly associative/commutative over floats without NaN,
    so the executor's ``minimum.at`` fold equals any scalar fold order.
    """

    combine = "min"

    def __init__(self, program: "SSSP") -> None:
        self.program = program

    def initially_active_mask(self, ctx, xp):
        mask = xp.zeros(ctx.num_vertices, dtype=bool)
        mask[self.program.source] = True
        return mask

    def update_dense(self, ctx, targets, values, acc, has_message, xp):
        improved = acc < values
        new = xp.where(improved, acc, values)
        respond = improved
        if ctx.superstep == 1:
            is_source = targets == self.program.source
            new = xp.where(is_source, 0.0, new)
            respond = respond | is_source
        return new, respond

    def edge_payloads(self, ctx, values, sources, weights, xp):
        svalues = values[sources]
        return svalues + weights, xp.isfinite(svalues)


class SSSP(VertexProgram):
    """Pregel SSSP with min-combinable distance messages."""

    name = "sssp"
    combinable = True
    all_active = False
    default_max_supersteps = 0  # run to convergence
    async_safe = True

    def __init__(self, source: int = 0) -> None:
        self.source = source

    def initial_value(self, vid: int, ctx: ProgramContext) -> float:
        return math.inf

    def initially_active(self, vid: int, ctx: ProgramContext) -> bool:
        return vid == self.source

    def update(
        self,
        vid: int,
        value: float,
        messages: Sequence[float],
        ctx: ProgramContext,
    ) -> UpdateResult:
        if ctx.superstep == 1 and vid == self.source:
            return UpdateResult(value=0.0, respond=True)
        best = min(messages) if messages else math.inf
        if best < value:
            return UpdateResult(value=best, respond=True)
        return UpdateResult(value=value, respond=False)

    def message_value(
        self,
        vid: int,
        value: float,
        dst: int,
        weight: float,
        ctx: ProgramContext,
    ) -> Optional[float]:
        if math.isinf(value):
            return None
        return value + weight

    def combine(self, a: float, b: float) -> float:
        return a if a <= b else b

    def vectorized(self) -> _SSSPRules:
        return _SSSPRules(self)

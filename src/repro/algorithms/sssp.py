"""Single-source shortest paths (Traversal-Style).

Only the source is active in superstep 1; a vertex responds exactly when
its distance improved, so the responding set grows and then shrinks as
the frontier sweeps the graph — the behaviour that gives hybrid its
switching opportunities (Fig. 14).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.core.api import ProgramContext, UpdateResult, VertexProgram

__all__ = ["SSSP"]


class SSSP(VertexProgram):
    """Pregel SSSP with min-combinable distance messages."""

    name = "sssp"
    combinable = True
    all_active = False
    default_max_supersteps = 0  # run to convergence
    async_safe = True

    def __init__(self, source: int = 0) -> None:
        self.source = source

    def initial_value(self, vid: int, ctx: ProgramContext) -> float:
        return math.inf

    def initially_active(self, vid: int, ctx: ProgramContext) -> bool:
        return vid == self.source

    def update(
        self,
        vid: int,
        value: float,
        messages: Sequence[float],
        ctx: ProgramContext,
    ) -> UpdateResult:
        if ctx.superstep == 1 and vid == self.source:
            return UpdateResult(value=0.0, respond=True)
        best = min(messages) if messages else math.inf
        if best < value:
            return UpdateResult(value=best, respond=True)
        return UpdateResult(value=value, respond=False)

    def message_value(
        self,
        vid: int,
        value: float,
        dst: int,
        weight: float,
        ctx: ProgramContext,
    ) -> Optional[float]:
        if math.isinf(value):
            return None
        return value + weight

    def combine(self, a: float, b: float) -> float:
        return a if a <= b else b

"""PageRank (Fig. 3's running example).

Always-Active-Style: every vertex updates and broadcasts in every
superstep, for a fixed number of supersteps.  Messages are the sender's
rank divided by its out-degree and are commutative/associative, so the
Combiner applies.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.api import (
    ProgramContext,
    UpdateResult,
    VectorizedRules,
    VertexProgram,
)

__all__ = ["PageRank"]


class _PageRankRules(VectorizedRules):
    """Dense kernels mirroring :class:`PageRank` bit-for-bit.

    The update is written as ``base + damping * acc`` — the exact
    operation order of the scalar path, where Python's ``sum`` left fold
    is reproduced by the executor's sequential ``bincount`` fold.
    """

    combine = "sum"

    def __init__(self, program: "PageRank") -> None:
        self.program = program

    def update_dense(self, ctx, targets, values, acc, has_message, xp):
        program = self.program
        if ctx.superstep == 1:
            new = xp.full(len(targets), 1.0 / ctx.num_vertices)
        else:
            base = (1.0 - program.damping) / ctx.num_vertices
            new = base + program.damping * acc
        respond = True
        if program.tolerance is not None and ctx.superstep > 2:
            respond = ctx.aggregates.get("delta", float("inf")) >= (
                program.tolerance
            )
        return new, respond

    def aggregate_dense(self, ctx, targets, old_values, new_values, xp):
        if self.program.tolerance is None:
            return None
        return {"delta": xp.abs(new_values - old_values)}

    def source_payloads(self, ctx, values, out_degrees, xp):
        valid = out_degrees > 0
        payloads = xp.divide(
            values, out_degrees, out=xp.zeros_like(values), where=valid
        )
        return payloads, valid


class PageRank(VertexProgram):
    """Classic Pregel PageRank with damping factor ``d``.

    Runs a fixed number of supersteps by default.  With ``tolerance``
    set, a Pregel-style aggregator sums the absolute rank change per
    superstep and every vertex stops responding once the total drops
    below the tolerance — convergence-based termination.
    """

    name = "pagerank"
    combinable = True
    uniform_messages = True
    all_active = True
    default_max_supersteps = 10

    def __init__(
        self,
        damping: float = 0.85,
        supersteps: int = 10,
        tolerance: Optional[float] = None,
    ) -> None:
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must be in (0, 1)")
        if tolerance is not None and tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        self.damping = damping
        self.tolerance = tolerance
        self.default_max_supersteps = (
            supersteps if tolerance is None else max(supersteps, 200)
        )

    def update(
        self,
        vid: int,
        value: float,
        messages: Sequence[float],
        ctx: ProgramContext,
    ) -> UpdateResult:
        if ctx.superstep == 1:
            rank = 1.0 / ctx.num_vertices
        else:
            rank = (
                (1.0 - self.damping) / ctx.num_vertices
                + self.damping * sum(messages)
            )
        respond = True
        if self.tolerance is not None and ctx.superstep > 2:
            respond = ctx.aggregates.get("delta", float("inf")) >= (
                self.tolerance
            )
        return UpdateResult(value=rank, respond=respond)

    def initial_value(self, vid: int, ctx: ProgramContext) -> float:
        return 0.0

    def aggregate(self, vid, old_value, new_value, ctx):
        if self.tolerance is None:
            return None
        return {"delta": abs(new_value - old_value)}

    def message_value(
        self,
        vid: int,
        value: float,
        dst: int,
        weight: float,
        ctx: ProgramContext,
    ) -> Optional[float]:
        degree = ctx.out_degree(vid)
        if degree == 0:
            return None
        return value / degree

    def combine(self, a: float, b: float) -> float:
        return a + b

    def vectorized(self) -> _PageRankRules:
        return _PageRankRules(self)

"""Label propagation community detection (LPA, Raghavan et al.).

Always-Active-Style but with *non-commutative* messages: a vertex needs
the full multiset of neighbor labels to take the majority, so neither
the Combiner nor MOCgraph's online computing applies (the paper omits
pushM from the LPA experiments for exactly this reason).  b-pull still
concatenates label messages sharing a destination.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional, Sequence

from repro.core.api import ProgramContext, UpdateResult, VertexProgram

__all__ = ["LPA"]


class LPA(VertexProgram):
    """Synchronous majority label propagation; ties pick the smaller label."""

    name = "lpa"
    combinable = False
    uniform_messages = True
    all_active = True
    default_max_supersteps = 5

    def __init__(self, supersteps: int = 5) -> None:
        self.default_max_supersteps = supersteps

    def initial_value(self, vid: int, ctx: ProgramContext) -> int:
        return vid

    def update(
        self,
        vid: int,
        value: int,
        messages: Sequence[int],
        ctx: ProgramContext,
    ) -> UpdateResult:
        if messages:
            counts = Counter(messages)
            best = max(counts.items(), key=lambda kv: (kv[1], -kv[0]))[0]
            value = best
        return UpdateResult(value=value, respond=True)

    def message_value(
        self,
        vid: int,
        value: int,
        dst: int,
        weight: float,
        ctx: ProgramContext,
    ) -> Optional[int]:
        return value

    def vectorized(self) -> None:
        # The majority vote needs the full multiset of neighbor labels
        # per vertex — not expressible as a sum/min dense combine — so
        # LPA always runs on the batched executor (the same property
        # that excludes it from pushM in the paper).
        return None

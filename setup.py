"""Legacy shim: lets ``pip install -e . --no-use-pep517`` work offline

(the sandbox has no ``wheel`` package, which PEP 660 editable installs
require). All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
